#!/usr/bin/env bash
# Lint + format gate, the same commands CI runs (.github/workflows/ci.yml).
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK"
