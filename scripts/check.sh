#!/usr/bin/env bash
# Lint + format + fault-matrix gate, the same commands CI runs
# (.github/workflows/ci.yml).
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The CI fault matrix, condensed: degraded runs must complete cleanly
# at every point of (--faults × --threads).
echo "==> fault matrix (--faults none|heavy x --threads 1|4)"
for faults in none heavy; do
  for threads in 1 4; do
    echo "    exp table1 --faults $faults --threads $threads"
    cargo run --release -q -p iotmap-bench --bin exp -- \
      table1 --preset small --seed 42 \
      --faults "$faults" --threads "$threads" >/dev/null
  done
done

echo "OK"
