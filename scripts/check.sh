#!/usr/bin/env bash
# Lint + format + fault-matrix gate, the same commands CI runs
# (.github/workflows/ci.yml).
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets (allocation lints promoted)"
cargo clippy --workspace --all-targets -- -D warnings \
  -W clippy::redundant_clone -W clippy::inefficient_to_string

# The CI fault matrix, condensed: degraded runs must complete cleanly
# at every point of (--faults × --threads).
echo "==> fault matrix (--faults none|heavy x --threads 1|4)"
for faults in none heavy; do
  for threads in 1 4; do
    echo "    exp table1 --faults $faults --threads $threads"
    cargo run --release -q -p iotmap-bench --bin exp -- \
      table1 --preset small --seed 42 \
      --faults "$faults" --threads "$threads" >/dev/null
  done
done

# The CI crash-recovery gate, condensed: kill the run after every stage
# boundary, resume from checkpoints, and demand byte-identical artifacts
# (plus a chaos pass with contained stage/shard panics). The full
# in-process matrix is tests/recovery.rs and crates/bench/tests/exit_codes.rs.
echo "==> crash recovery (exp crash-recovery --preset small)"
cargo run --release -q -p iotmap-bench --bin exp -- \
  crash-recovery --preset small --seed 42 >/dev/null

# The CI bench-smoke gate, condensed: the single-pass matching engine
# must hold its speedup over the fan-out reference (≥75% of the
# committed small-preset baseline; ratios, so machine-independent).
# --gate also exercises the perf-history regression path against a
# scratch history file. Run twice against one cache directory — the
# first run is cold and populates it, the second exercises the warm
# memoized-prepare path (both append history; the cache tag separates
# them).
echo "==> bench smoke (exp bench --preset small, cold + warm cache)"
tmp_bench="$(mktemp -d)"
cargo run --release -q -p iotmap-bench --bin exp -- \
  bench --preset small --seed 42 --threads 1 --cache "$tmp_bench/cache" \
  --out "$tmp_bench" --baseline scripts/bench-baseline-small.json --gate >/dev/null
cargo run --release -q -p iotmap-bench --bin exp -- \
  bench --preset small --seed 42 --threads 1 --cache "$tmp_bench/cache" \
  --out "$tmp_bench" --baseline scripts/bench-baseline-small.json --gate >/dev/null

# The CI scale-smoke gate, condensed: the --scale phases must spool the
# replicated corpus out of core and stream the replicated ISP pass —
# the binary itself enforces the documented peak-RSS ceiling and the
# history gate; the grep re-asserts that a real (non-zero) RSS reading
# landed in the report.
echo "==> scale smoke (exp bench --preset small --scale 4 --gate)"
cargo run --release -q -p iotmap-bench --bin exp -- \
  bench --preset small --seed 42 --threads 1 --scale 4 \
  --out "$tmp_bench" --history "$tmp_bench/scale_history.jsonl" --gate >/dev/null
grep -q '"peak_rss_bytes": [1-9]' "$tmp_bench/BENCH_pipeline.json" \
  || { echo "peak_rss_bytes missing from BENCH_pipeline.json"; exit 1; }

# The profiler's smoke path: the full prepare pipeline instrumented, the
# trace exported as Chrome Trace Event JSON, and the report printed —
# the trace path runs on every check, not just when someone profiles.
echo "==> profile smoke (exp profile --smoke --trace-out)"
cargo run --release -q -p iotmap-bench --bin exp -- \
  profile --smoke --preset small --seed 42 --threads 4 \
  --trace-out "$tmp_bench/trace.json" >/dev/null
test -s "$tmp_bench/trace.json" || { echo "trace.json missing or empty"; exit 1; }

# The CI longitudinal-smoke gate, condensed: roll a prepared world three
# days forward; every day is verified byte-identical against a full
# from-scratch run before its timings count. No --gate — the 25% cost
# floor is calibrated for realistic worlds, and fixed per-day overheads
# dominate on the small preset. The full day/thread/fault matrix is
# tests/incremental_equivalence.rs.
echo "==> longitudinal smoke (exp longitudinal --preset small --days 3)"
cargo run --release -q -p iotmap-bench --bin exp -- \
  longitudinal --preset small --seed 42 --threads 1 --days 3 \
  --out "$tmp_bench" >/dev/null
test -s "$tmp_bench/BENCH_longitudinal.json" || { echo "BENCH_longitudinal.json missing or empty"; exit 1; }

# The CI scenario-smoke gate, condensed: a declarative chaos scenario
# must run deterministically (exp scenario re-executes and compares
# canonical dumps) with the per-event resilience deltas written to
# BENCH_scenarios.json. The byte-identity and graceful-degradation pins
# are tests/scenario_engine.rs.
echo "==> scenario smoke (exp scenario --file scenarios/cert_storm.scn)"
cargo run --release -q -p iotmap-bench --bin exp -- \
  scenario --preset small --seed 42 --threads 1 \
  --file scenarios/cert_storm.scn --out "$tmp_bench" >/dev/null
test -s "$tmp_bench/BENCH_scenarios.json" || { echo "BENCH_scenarios.json missing or empty"; exit 1; }
rm -rf "$tmp_bench"

echo "OK"
