//! The incremental engine's correctness oracle (the longitudinal
//! tentpole's contract): rolling `RunArtifacts` forward day by day via
//! `PreparedWorld::advance` must be **byte-identical** — by
//! `canonical_dump()` — to a from-scratch run over the merged corpus, at
//! every day, thread count, and fault plan.
//!
//! Matrix: faults {none, heavy} × rolled-run threads {1, 4} × 7 days.
//! The from-scratch oracle dump for a given (faults, day) is computed
//! once, from the single-threaded prepared world — from-scratch runs are
//! already pinned byte-identical across thread counts by
//! `tests/determinism.rs`, so re-deriving the oracle per thread count
//! would only re-prove that.

use iotmap::faults::FaultPlan;
use iotmap::prelude::*;

const DAYS: usize = 7;

fn prepared(faults: &FaultPlan, threads: usize) -> PreparedWorld {
    Pipeline::new(WorldConfig::small(42))
        .faults(faults.clone())
        .threads(threads)
        .prepare()
        .expect("prepare")
}

fn roll_against_oracle(faults: FaultPlan) {
    let mut rolled_1 = prepared(&faults, 1);
    let mut rolled_4 = prepared(&faults, 4);
    for day in 1..=DAYS {
        // Both prepared worlds hold byte-identical corpora, so one delta
        // (generated off the first) extends both.
        let delta = rolled_1.next_delta();
        let dump_1 = rolled_1
            .advance(&delta)
            .expect("advance threads=1")
            .canonical_dump();
        let dump_4 = rolled_4
            .advance(&delta)
            .expect("advance threads=4")
            .canonical_dump();
        // From-scratch over the merged corpus: `advance` extends the
        // pristine prepared corpus in lockstep, so a plain execute IS the
        // oracle run.
        let oracle = rolled_1
            .execute()
            .expect("from-scratch oracle")
            .canonical_dump();
        assert_eq!(
            oracle, dump_1,
            "day {day}: rolled artifacts (threads=1) diverge from from-scratch"
        );
        assert_eq!(
            oracle, dump_4,
            "day {day}: rolled artifacts (threads=4) diverge from from-scratch"
        );
    }
}

#[test]
fn rolled_equals_from_scratch_no_faults() {
    roll_against_oracle(FaultPlan::none());
}

#[test]
fn rolled_equals_from_scratch_heavy_faults() {
    roll_against_oracle(FaultPlan::heavy());
}
