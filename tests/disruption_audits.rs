//! Integration tests for §6.2: routing-incident and blocklist audits over
//! the discovered backend map.

use iotmap::core::disruptions::{BlocklistAudit, IncidentAudit, IncidentKind, RouteIncident};
use iotmap::core::{DataSources, DiscoveryPipeline, PatternRegistry};
use iotmap::world::{BgpStreamEventKind, World, WorldConfig};
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::OnceLock;

struct Fixture {
    world: World,
    scans: iotmap::world::CollectedScans,
    discovery: iotmap::core::DiscoveryResult,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(&WorldConfig::small(42));
        let period = world.config.study_period;
        let scans = world.collect_scan_data(period);
        let discovery = {
            let sources = DataSources {
                censys: &scans.censys,
                zgrab_v6: &scans.zgrab_v6,
                passive_dns: &world.passive_dns,
                zones: &world.zones,
                routeviews: &world.bgp,
                latency: None,
            };
            DiscoveryPipeline::new(PatternRegistry::paper_defaults()).run(&sources, period)
        };
        Fixture {
            world,
            scans,
            discovery,
        }
    })
}

fn sources(f: &'static Fixture) -> DataSources<'static> {
    DataSources {
        censys: &f.scans.censys,
        zgrab_v6: &f.scans.zgrab_v6,
        passive_dns: &f.world.passive_dns,
        zones: &f.world.zones,
        routeviews: &f.world.bgp,
        latency: None,
    }
}

fn incidents(f: &Fixture) -> Vec<RouteIncident> {
    f.world
        .events
        .bgpstream
        .iter()
        .map(|e| RouteIncident {
            kind: match e.kind {
                BgpStreamEventKind::Leak => IncidentKind::Leak,
                BgpStreamEventKind::PossibleHijack => IncidentKind::PossibleHijack,
                BgpStreamEventKind::AsOutage => IncidentKind::AsOutage,
            },
            prefix: e.prefix,
            asn: e.asn,
        })
        .collect()
}

#[test]
fn bgpstream_events_miss_all_backends() {
    // §6.2: "None of these affected any of the identified IoT backend
    // server IPs nor the ASes they are hosted in."
    let f = fixture();
    let evs = incidents(f);
    assert_eq!(evs.len(), 216, "10 leaks + 40 hijacks + 166 outages");
    let audit = IncidentAudit::run(&evs, &f.discovery, &sources(f));
    assert!(audit.all_clear(), "{audit:?}");
}

#[test]
fn synthetic_hijack_of_backend_space_is_detected() {
    // The audit must not be blind: a planted incident on real backend
    // space must register.
    let f = fixture();
    let some_backend = *f
        .discovery
        .all_v4()
        .iter()
        .next()
        .expect("discovered backends exist");
    let IpAddr::V4(v4) = some_backend else {
        panic!()
    };
    let planted = vec![RouteIncident {
        kind: IncidentKind::PossibleHijack,
        prefix: Some(iotmap::nettypes::Ipv4Prefix::new(v4, 24)),
        asn: iotmap::nettypes::Asn(666),
    }];
    let audit = IncidentAudit::run(&planted, &f.discovery, &sources(f));
    assert_eq!(audit.prefix_hits, 1);
}

#[test]
fn blocklist_audit_recovers_planted_backend_ips() {
    // §6.2: 16-19 backend IPs across exactly the six providers the paper
    // names.
    let f = fixture();
    let firehol = &f.world.events.firehol;
    let categories: BTreeMap<IpAddr, Vec<String>> = firehol
        .planted
        .iter()
        .map(|h| (h.ip, h.categories.iter().map(|c| c.to_string()).collect()))
        .collect();
    let audit = BlocklistAudit::run(&f.discovery, &firehol.set, &categories);
    // Discovery may miss a couple of planted IPs (they are ordinary
    // backends), but most must surface, and only from the six providers.
    assert!(
        (10..=19).contains(&audit.findings.len()),
        "findings {}",
        audit.findings.len()
    );
    let allowed: std::collections::HashSet<&str> =
        ["alibaba", "amazon", "baidu", "google", "microsoft", "sap"]
            .into_iter()
            .collect();
    for finding in &audit.findings {
        assert!(
            allowed.contains(finding.provider.as_str()),
            "unexpected provider {}",
            finding.provider
        );
        assert!(!finding.categories.is_empty());
    }
    // Baidu carries the most listings, as in the paper.
    let per = audit.per_provider();
    let baidu = per.get("baidu").copied().unwrap_or(0);
    assert!(baidu >= 3, "baidu listings {baidu}");
}

#[test]
fn firehol_aggregate_is_internet_scale() {
    let f = fixture();
    let set = &f.world.events.firehol.set;
    assert!(set.len() > 600_000_000);
    // …and still answers membership queries instantly (interval set, not
    // enumeration). Spot-check a boundary.
    assert!(!set.contains_v4("8.8.8.8".parse().unwrap()));
}

#[test]
fn cascade_shows_cloud_dependencies() {
    // §7's what-if: the six PR providers depend on clouds; the DI
    // providers do not.
    let f = fixture();
    let deps = iotmap::traffic::cascade_impact(
        &f.discovery,
        &sources(f),
        &[
            "Amazon Web Services",
            "Microsoft Azure",
            "Alibaba Cloud",
            "Akamai Technologies",
        ],
    );
    let dep = |n: &str, org: &str| {
        deps.iter()
            .find(|d| d.provider == n)
            .map(|d| d.loss_if_down(org))
            .unwrap_or(0.0)
    };
    assert!(dep("bosch", "Amazon Web Services") > 0.95);
    assert!(dep("sierra", "Amazon Web Services") > 0.95);
    assert!(dep("ptc", "Amazon Web Services") > 0.3);
    assert!(dep("ptc", "Microsoft Azure") > 0.1);
    assert!(dep("sap", "Alibaba Cloud") > 0.01);
    assert!(dep("oracle", "Akamai Technologies") > 0.05);
    // DI platforms are cloud-independent (Amazon *is* its own cloud).
    assert_eq!(dep("microsoft", "Amazon Web Services"), 0.0);
    assert_eq!(dep("google", "Amazon Web Services"), 0.0);
    assert_eq!(dep("tencent", "Microsoft Azure"), 0.0);
}
