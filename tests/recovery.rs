//! Checkpoint/resume correctness, end to end: a run killed after any
//! stage boundary and then resumed from its checkpoints must produce
//! artifacts byte-identical to an uninterrupted run — at any thread
//! count, with or without data faults. Corrupted checkpoints must be
//! detected, discarded, and recomputed, never silently trusted.

use iotmap::faults::FaultPlan;
use iotmap::prelude::*;
use std::path::PathBuf;
use std::rc::Rc;

/// The supervised stage boundaries, in pipeline order.
const STAGES: [&str; 5] = ["world", "scans", "discovery", "footprints", "shared-ip"];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotmap-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kill the pipeline after each stage in turn, resume, and pin the
/// resumed artifacts byte-for-byte against an uninterrupted baseline.
fn kill_resume_matrix(faults_name: &str, faults: fn() -> FaultPlan) {
    let config = WorldConfig::small(42);
    let baseline = Pipeline::new(config.clone())
        .threads(1)
        .faults(faults())
        .run()
        .unwrap()
        .canonical_dump();
    for threads in [1usize, 4] {
        for stage in STAGES {
            let dir = scratch(&format!("{faults_name}-{threads}-{stage}"));
            let mut kill = faults();
            kill.crash.kill_after_stage = Some(stage.to_string());
            let killed = Pipeline::new(config.clone())
                .threads(threads)
                .faults(kill)
                .checkpoints(&dir)
                .run();
            assert!(
                killed.is_err(),
                "{faults_name}/{threads}/{stage}: the kill switch must abort the run"
            );
            let resumed = Pipeline::new(config.clone())
                .threads(threads)
                .faults(faults())
                .resume(&dir)
                .run()
                .unwrap_or_else(|e| panic!("{faults_name}/{threads}/{stage}: resume failed: {e}"));
            assert_eq!(
                resumed.canonical_dump(),
                baseline,
                "{faults_name}/{threads}/{stage}: resumed artifacts diverge"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn killed_runs_resume_byte_identically_without_faults() {
    kill_resume_matrix("none", FaultPlan::none);
}

#[test]
fn killed_runs_resume_byte_identically_under_heavy_faults() {
    kill_resume_matrix("heavy", FaultPlan::heavy);
}

/// A complete checkpointed run, then resume with one checkpoint truncated
/// and another bit-flipped: both must be detected as corrupt, recomputed,
/// and the artifacts must still match — with the corruption visible in
/// the run's counters.
#[test]
fn corrupted_checkpoints_are_detected_and_recomputed() {
    let config = WorldConfig::small(42);
    let dir = scratch("corrupt");
    let baseline = Pipeline::new(config.clone())
        .threads(1)
        .checkpoints(&dir)
        .run()
        .unwrap()
        .canonical_dump();

    // Truncate the discovery checkpoint mid-payload.
    let disc = dir.join("02-discovery.ckpt");
    let bytes = std::fs::read(&disc).unwrap();
    std::fs::write(&disc, &bytes[..bytes.len() / 2]).unwrap();
    // Flip one payload bit in the footprints checkpoint (past the header,
    // so the checksum — not the magic — catches it).
    let fp = dir.join("03-footprints.ckpt");
    let mut bytes = std::fs::read(&fp).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&fp, &bytes).unwrap();

    let registry = Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let resumed = Pipeline::new(config.clone())
        .threads(1)
        .resume(&dir)
        .run()
        .unwrap();
    iotmap_obs::uninstall();

    assert_eq!(resumed.canonical_dump(), baseline);
    let report = registry.report();
    assert_eq!(
        report.counters.get("super.checkpoints.corrupt"),
        Some(&2),
        "both damaged checkpoints must be reported: {:?}",
        report.counters
    );
    // The undamaged shared-ip checkpoint must still have been trusted.
    assert_eq!(
        report.counters.get("super.stage.shared-ip.restored"),
        Some(&1)
    );
    // The recomputed stages overwrite the damaged checkpoints, so a
    // second resume restores everything again.
    let again = Pipeline::new(config).threads(1).resume(&dir).run().unwrap();
    assert_eq!(again.canonical_dump(), baseline);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Resuming with a different configuration must not trust the store:
/// every fingerprint-mismatched checkpoint is discarded and the run
/// recomputes from scratch, matching a fresh run of the new config.
#[test]
fn fingerprint_mismatches_invalidate_the_store() {
    let dir = scratch("fingerprint");
    let old = WorldConfig::small(42);
    Pipeline::new(old)
        .threads(1)
        .checkpoints(&dir)
        .run()
        .unwrap();

    let new = WorldConfig::small(43);
    let fresh = Pipeline::new(new.clone())
        .threads(1)
        .run()
        .unwrap()
        .canonical_dump();
    let registry = Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let resumed = Pipeline::new(new).threads(1).resume(&dir).run().unwrap();
    iotmap_obs::uninstall();
    assert_eq!(resumed.canonical_dump(), fresh);
    let report = registry.report();
    assert!(
        report
            .counters
            .get("super.checkpoints.mismatched")
            .copied()
            .unwrap_or(0)
            > 0,
        "mismatched checkpoints must be counted: {:?}",
        report.counters
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
