//! The memoized world cache, end to end: a warm run must be
//! byte-identical to the cold run that populated the cache — at any
//! thread count, with or without data faults. Entries are keyed by input
//! fingerprints, so a config change must never reuse them; corrupted
//! entries must be detected, counted, and silently regenerated.

use iotmap::faults::FaultPlan;
use iotmap::prelude::*;
use std::path::{Path, PathBuf};
use std::rc::Rc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotmap-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Locate a cache entry by its slot/stage prefix (the file name's tail is
/// the input fingerprint, which tests should not hard-code).
fn find_entry(dir: &Path, prefix: &str) -> PathBuf {
    std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cache dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".ckpt"))
        })
        .unwrap_or_else(|| panic!("no {prefix}*.ckpt entry in {}", dir.display()))
}

/// Cold run populates the cache, warm run must reproduce the exact same
/// artifacts — and actually hit the cache while doing so.
fn cold_warm_matrix(name: &str, faults: fn() -> FaultPlan) {
    let config = WorldConfig::small(42);
    let plain = Pipeline::new(config.clone())
        .threads(1)
        .faults(faults())
        .run()
        .unwrap()
        .canonical_dump();
    for threads in [1usize, 4] {
        let dir = scratch(&format!("{name}-{threads}"));
        let cold = Pipeline::new(config.clone())
            .threads(threads)
            .faults(faults())
            .cache(&dir)
            .run()
            .unwrap()
            .canonical_dump();
        assert_eq!(cold, plain, "{name}/{threads}: cold cached run diverges");

        let registry = Rc::new(iotmap_obs::Registry::new());
        iotmap_obs::install(registry.clone());
        let warm = Pipeline::new(config.clone())
            .threads(threads)
            .faults(faults())
            .cache(&dir)
            .run()
            .unwrap()
            .canonical_dump();
        iotmap_obs::uninstall();
        assert_eq!(warm, plain, "{name}/{threads}: warm cached run diverges");
        let report = registry.report();
        assert_eq!(
            report.counters.get("cache.hit"),
            Some(&5),
            "{name}/{threads}: all five artifacts must come from the cache: {:?}",
            report.counters
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn warm_runs_are_byte_identical_without_faults() {
    cold_warm_matrix("none", FaultPlan::none);
}

#[test]
fn warm_runs_are_byte_identical_under_heavy_faults() {
    cold_warm_matrix("heavy", FaultPlan::heavy);
}

/// The acceptance matrix: one serial cold run fills the cache, and warm
/// runs at every thread count must reproduce its bytes exactly.
#[test]
fn warm_runs_match_across_thread_counts() {
    let config = WorldConfig::small(42);
    let dir = scratch("threads");
    let cold = Pipeline::new(config.clone())
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap()
        .canonical_dump();
    for threads in [1usize, 2, 4, 8] {
        let warm = Pipeline::new(config.clone())
            .threads(threads)
            .cache(&dir)
            .run()
            .unwrap()
            .canonical_dump();
        assert_eq!(warm, cold, "warm run at {threads} threads diverges");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A different configuration must never see the old config's entries:
/// its fingerprints select different file names, so the run is simply
/// cold (missing entries, no hits) and matches a cache-less run.
#[test]
fn config_change_invalidates_the_cache() {
    let dir = scratch("config");
    Pipeline::new(WorldConfig::small(42))
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap();

    let new = WorldConfig::small(43);
    let fresh = Pipeline::new(new.clone())
        .threads(1)
        .run()
        .unwrap()
        .canonical_dump();
    let registry = Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let cached = Pipeline::new(new)
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap()
        .canonical_dump();
    iotmap_obs::uninstall();
    assert_eq!(cached, fresh);
    let report = registry.report();
    assert_eq!(
        report.counters.get("cache.hit"),
        None,
        "no entry of the old config may be reused: {:?}",
        report.counters
    );
    assert_eq!(report.counters.get("cache.miss"), Some(&5));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Damaged entries — one truncated mid-payload, one with a payload bit
/// flipped — must be detected, counted as invalidated, regenerated, and
/// the run's artifacts must still match the baseline exactly.
#[test]
fn corrupted_entries_are_detected_and_regenerated() {
    let config = WorldConfig::small(42);
    let dir = scratch("corrupt");
    let baseline = Pipeline::new(config.clone())
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap()
        .canonical_dump();

    // Truncate the scans entry mid-payload.
    let scans = find_entry(&dir, "01-scans-");
    let bytes = std::fs::read(&scans).unwrap();
    std::fs::write(&scans, &bytes[..bytes.len() / 2]).unwrap();
    // Flip one payload bit in the discovery entry (past the header, so
    // the checksum — not the magic — catches it).
    let disc = find_entry(&dir, "02-discovery-");
    let mut bytes = std::fs::read(&disc).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&disc, &bytes).unwrap();

    let registry = Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let rerun = Pipeline::new(config.clone())
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap()
        .canonical_dump();
    iotmap_obs::uninstall();
    assert_eq!(rerun, baseline, "regenerated artifacts diverge");
    let report = registry.report();
    assert_eq!(
        report.counters.get("cache.invalidated"),
        Some(&2),
        "both damaged entries must be reported: {:?}",
        report.counters
    );
    // The three undamaged entries were still served from the cache …
    assert_eq!(report.counters.get("cache.hit"), Some(&3));
    // … and the regenerated results written back, so a third run is warm
    // again.
    let again = Pipeline::new(config)
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap()
        .canonical_dump();
    assert_eq!(again, baseline);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A warm cache combined with the incremental engine: rolling a prepared
/// world forward must never let a later run see day-N entries under
/// day-N+1 fingerprints. Every cache key embeds the configuration —
/// including the study period — so the extended-period run is simply
/// cold, matches the rolled artifacts byte-for-byte, and both periods'
/// entries coexist warm side by side afterwards.
#[test]
fn warm_cache_plus_advance_never_serves_stale_day_entries() {
    let config = WorldConfig::small(42);
    let dir = scratch("advance");
    // The day-N cold run fills the cache.
    let day_n = Pipeline::new(config.clone())
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap()
        .canonical_dump();

    // Roll one day forward off the same cache directory (the bootstrap
    // may legitimately hit day-N entries — same period).
    let mut prepared = Pipeline::new(config.clone())
        .threads(1)
        .cache(&dir)
        .prepare()
        .unwrap();
    let delta = prepared.next_delta();
    let rolled = prepared.advance(&delta).unwrap().canonical_dump();
    assert_ne!(rolled, day_n, "a day must change the artifacts");

    // A from-scratch run over the extended period against the same cache:
    // day-N+1 fingerprints select different entries, so nothing stale may
    // be served — the run is fully cold and lands on the rolled bytes.
    let mut extended = config.clone();
    extended.study_period = StudyPeriod::new(config.study_period.start, delta.to_end);
    let registry = Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let from_scratch = Pipeline::new(extended.clone())
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap()
        .canonical_dump();
    iotmap_obs::uninstall();
    assert_eq!(
        from_scratch, rolled,
        "rolled artifacts must match a from-scratch day-N+1 run"
    );
    let report = registry.report();
    assert_eq!(
        report.counters.get("cache.hit"),
        None,
        "day-N entries were served for day-N+1 fingerprints: {:?}",
        report.counters
    );
    assert_eq!(report.counters.get("cache.miss"), Some(&5));

    // Both periods' entries now coexist: day N+1 is warm …
    let registry = Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let warm = Pipeline::new(extended)
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap()
        .canonical_dump();
    iotmap_obs::uninstall();
    assert_eq!(warm, rolled);
    assert_eq!(
        registry.report().counters.get("cache.hit"),
        Some(&5),
        "day-N+1 entries must be warm on the second run"
    );
    // … and the day-N entries were not clobbered.
    let registry = Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let day_n_again = Pipeline::new(config)
        .threads(1)
        .cache(&dir)
        .run()
        .unwrap()
        .canonical_dump();
    iotmap_obs::uninstall();
    assert_eq!(day_n_again, day_n);
    assert_eq!(registry.report().counters.get("cache.hit"), Some(&5));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The two-phase API: one `prepare` amortizes across repeated `execute`
/// calls, composes to exactly what `run` produces, and `execute_with`
/// really applies a different engine-side fault plan.
#[test]
fn prepared_world_reuses_across_executions() {
    let config = WorldConfig::small(42);
    let baseline = Pipeline::new(config.clone())
        .threads(1)
        .run()
        .unwrap()
        .canonical_dump();
    let prepared = Pipeline::new(config).threads(1).prepare().unwrap();
    let first = prepared.execute().unwrap().canonical_dump();
    let second = prepared.execute().unwrap().canonical_dump();
    assert_eq!(first, baseline, "prepare + execute must compose to run()");
    assert_eq!(second, baseline, "a prepared world must be reusable");
    // Heavy faults degrade passive DNS on the engine side, so the same
    // prepared world must yield different artifacts.
    let faulted = prepared
        .execute_with(&FaultPlan::heavy())
        .unwrap()
        .canonical_dump();
    assert_ne!(faulted, baseline);
    // And the override must not have touched the prepared world.
    assert_eq!(prepared.execute().unwrap().canonical_dump(), baseline);
}
