//! Integration tests for the §5 traffic analyses: the *shapes* the paper
//! reports must emerge from the synthetic world + methodology, end to end.

use iotmap::core::{
    DataSources, DiscoveryPipeline, FootprintInference, PatternRegistry, SharedIpClassifier,
};
use iotmap::netflow::LineId;
use iotmap::nettypes::PortProto;
use iotmap::traffic::{
    source_ablation, visibility_per_provider, AnalysisReport, AnalysisSink, ContactSink, IpIndex,
    ScannerAnalysis,
};
use iotmap::world::{TrafficSimulator, World, WorldConfig};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;
use std::sync::OnceLock;

struct Fixture {
    world: World,
    discovery: iotmap::core::DiscoveryResult,
    index: IpIndex,
    contacts_per_line: HashMap<LineId, HashSet<IpAddr>>,
    excluded: HashSet<LineId>,
    report: AnalysisReport,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(&WorldConfig::small(42));
        let period = world.config.study_period;
        let scans = world.collect_scan_data(period);
        let sources = DataSources {
            censys: &scans.censys,
            zgrab_v6: &scans.zgrab_v6,
            passive_dns: &world.passive_dns,
            zones: &world.zones,
            routeviews: &world.bgp,
            latency: None,
        };
        let registry = PatternRegistry::paper_defaults();
        let discovery =
            DiscoveryPipeline::new(PatternRegistry::paper_defaults()).run(&sources, period);
        let classifier = SharedIpClassifier::new(&registry);
        let mut footprints = HashMap::new();
        let mut shared = HashSet::new();
        for (name, disc) in discovery.per_provider() {
            footprints.insert(name.to_string(), FootprintInference::infer(disc, &sources));
            let (_, s) = classifier.split_provider(disc, &world.passive_dns, period);
            shared.extend(s.keys().copied());
        }
        let index = IpIndex::build(&discovery, &footprints, &shared);

        let sim = TrafficSimulator::new(&world);
        let mut contacts = ContactSink::new(&index);
        sim.run(period, &mut contacts);
        let excluded = ScannerAnalysis::new(&index, &contacts).flagged_lines(100);
        let mut sink = AnalysisSink::new(&index, &excluded, period);
        sim.run(period, &mut sink);
        let report = sink.into_report();
        let contacts_per_line = contacts.per_line.clone();
        Fixture {
            world,
            discovery,
            index,
            contacts_per_line,
            excluded,
            report,
        }
    })
}

/// Rebuild a ContactSink-shaped view for the analyses that need it.
fn contacts(f: &'static Fixture) -> ContactSink<'static> {
    let mut sink = ContactSink::new(&f.index);
    sink.per_line = f.contacts_per_line.clone();
    sink
}

#[test]
fn most_lines_exchange_under_10mb_daily() {
    // Fig. 12a: ">99% of the subscriber lines … less than 10 MB per day".
    let f = fixture();
    for downstream in [true, false] {
        let e = f.report.fig12a_ecdf(downstream);
        assert!(e.len() > 500, "need data, got {}", e.len());
        let frac = e.fraction_at_or_below(1e7);
        assert!(
            frac > 0.93,
            "P(<=10MB) = {frac} ({})",
            if downstream { "dn" } else { "up" }
        );
    }
}

#[test]
fn down_up_ratios_span_the_paper_range() {
    // Fig. 10: "ratios range from less than 0.33 to more than 3".
    let f = fixture();
    let ratios: Vec<(String, f64)> = f
        .report
        .providers()
        .iter()
        .filter_map(|p| f.report.fig10_ratio(p).map(|r| (p.clone(), r)))
        .collect();
    assert!(
        ratios.iter().any(|(_, r)| *r > 2.0),
        "no download-heavy platform"
    );
    assert!(
        ratios.iter().any(|(_, r)| *r < 0.7),
        "no upload-heavy platform"
    );
    let bosch = ratios
        .iter()
        .find(|(p, _)| p == "bosch")
        .expect("bosch active");
    assert!(bosch.1 > 1.8, "bosch should be download-heavy: {}", bosch.1);
    let sierra = ratios
        .iter()
        .find(|(p, _)| p == "sierra")
        .expect("sierra active");
    assert!(
        sierra.1 < 0.8,
        "sierra telemetry is upload-heavy: {}",
        sierra.1
    );
}

#[test]
fn port_mixes_match_documented_protocols() {
    // Fig. 11: port usage differs per provider; non-standard ports are real.
    let f = fixture();
    let ports = |p: &str| -> Vec<u16> {
        f.report
            .fig11_port_mix(p)
            .into_iter()
            .filter(|(_, frac)| *frac > 0.03)
            .map(|(pp, _)| pp.port)
            .collect()
    };
    // Alibaba runs plaintext MQTT 1883, never 8883.
    let ali = ports("alibaba");
    assert!(ali.contains(&1883), "{ali:?}");
    assert!(!ali.contains(&8883), "{ali:?}");
    // Siemens moves real volume over ActiveMQ's 61616.
    let siemens = f.report.fig11_port_mix("siemens");
    let amq = siemens
        .iter()
        .find(|(pp, _)| pp.port == 61616)
        .map(|(_, frac)| *frac)
        .unwrap_or(0.0);
    assert!(amq > 0.15, "siemens 61616 share {amq}");
    // Cisco Kinetic's custom 9123/9124.
    let cisco = ports("cisco");
    assert!(cisco.contains(&9123) && cisco.contains(&9124), "{cisco:?}");
}

#[test]
fn amqp_heavy_class_exists_on_5671_only() {
    // Fig. 12c: only TCP/5671 shows a 100MB–1GB band, at one provider.
    let f = fixture();
    let amqp = f.report.fig12c_ecdf(PortProto::tcp(5671));
    assert!(!amqp.is_empty());
    let heavy_band = amqp.fraction_in(1e8, 1e9);
    assert!(heavy_band > 0.05, "AMQP heavy band {heavy_band}");
    for port in [443u16, 8883, 1883] {
        let e = f.report.fig12c_ecdf(PortProto::tcp(port));
        if e.is_empty() {
            continue;
        }
        assert!(
            e.fraction_in(1e8, 1e9) < heavy_band / 2.0,
            "port {port} should not carry the heavy band"
        );
    }
}

#[test]
fn diurnal_patterns_differ_by_provider_type() {
    // Fig. 8: consumer platforms peak in the evening; telemetry is flat.
    let f = fixture();
    let amazon = f.report.fig8_lines("amazon").unwrap();
    let google = f.report.fig8_lines("google").unwrap();
    assert!(
        amazon.diurnality() > google.diurnality() + 0.5,
        "amazon {} vs google {}",
        amazon.diurnality(),
        google.diurnality()
    );
    // Evening platforms peak between 17:00 and 22:00 on most days.
    let peaks = amazon.daily_peak_hours();
    let evening = peaks.iter().filter(|&&h| (17..=22).contains(&h)).count();
    assert!(evening >= peaks.len() - 1, "{peaks:?}");
}

#[test]
fn region_crossing_shapes() {
    // Figs. 13/14.
    let f = fixture();
    let (eu_only, us_any, _mix, other_only) = f.report.fig13_line_buckets();
    assert!(eu_only > 0.25, "EU-only lines {eu_only}");
    assert!((0.2..0.8).contains(&us_any), "US-touching lines {us_any}");
    assert!(other_only < 0.15, "elsewhere-only {other_only}");
    let traffic = f.report.fig14_traffic_buckets();
    assert!(traffic[0] > 0.45, "EU traffic share {}", traffic[0]);
    assert!(traffic[1] > 0.10, "US traffic share {}", traffic[1]);
    assert!(traffic[0] > traffic[1], "EU must dominate");
    assert!(traffic[2] < 0.15, "Asia share {}", traffic[2]);
}

#[test]
fn daily_active_line_fraction_matches_scale() {
    // §5.2: 2.32M of 15M lines (≈15%) show IoT activity per day; v6 is an
    // order of magnitude rarer.
    let f = fixture();
    let (v4, v6) = f.report.daily_active_lines();
    let frac = v4 / f.world.isp.lines.len() as f64;
    assert!(
        (0.08..0.30).contains(&frac),
        "daily v4 active fraction {frac}"
    );
    assert!(v6 > 0.0 && v6 < v4 / 3.0, "v6 {v6} vs v4 {v4}");
}

#[test]
fn scanner_curve_shape() {
    // Fig. 5: flagged lines fall steeply with the threshold; visibility
    // rises only slowly.
    let f = fixture();
    let c = contacts(f);
    let analysis = ScannerAnalysis::new(&f.index, &c);
    let curve = analysis.curve(&[10, 100, 1000]);
    assert!(curve[0].lines_excluded >= curve[1].lines_excluded);
    assert!(curve[1].lines_excluded >= curve[2].lines_excluded);
    let vis_gain = curve[2].v4_visibility - curve[0].v4_visibility;
    assert!(
        vis_gain < 0.25,
        "visibility should not depend much on the threshold: {vis_gain}"
    );
    assert!((0.1..0.7).contains(&curve[1].v4_visibility));
}

#[test]
fn china_only_platforms_invisible_from_europe() {
    // Fig. 6: O3/O5 (Huawei, Baidu) have essentially no EU activity.
    let f = fixture();
    let c = contacts(f);
    let vis = visibility_per_provider(&f.index, &c, &f.excluded);
    for name in ["baidu", "huawei"] {
        let v = vis.iter().find(|v| v.provider == name).unwrap();
        // At small scale the Chinese platforms have a handful of backends;
        // one stray expat household can touch a couple of them, so bound
        // the *lines*, and the visibility only loosely.
        assert!(v.lines <= 5, "{name} lines {}", v.lines);
        assert!(v.v4 < 0.5, "{name} visibility {}", v.v4);
    }
    // Google in contrast is highly visible.
    let google = vis.iter().find(|v| v.provider == "google").unwrap();
    assert!(google.v4 > 0.45, "google visibility {}", google.v4);
}

#[test]
fn tls_only_discovery_loses_sni_providers_lines() {
    // Fig. 7: with certificate-only discovery, SNI-gated platforms lose
    // almost all their lines; cert-friendly ones lose almost none.
    let f = fixture();
    let c = contacts(f);
    let mut restricted: HashMap<String, HashSet<IpAddr>> = HashMap::new();
    for (name, disc) in f.discovery.per_provider() {
        restricted.insert(
            name.to_string(),
            disc.ips_from_sources(&[iotmap::core::Source::Certificate]),
        );
    }
    let ablation = source_ablation(&f.index, &c, &f.excluded, &restricted);
    let loss = |n: &str| ablation.iter().find(|(p, _)| p == n).unwrap().1;
    assert!(loss("google") > 0.85, "google loss {}", loss("google"));
    assert!(loss("sierra") > 0.85, "sierra loss {}", loss("sierra"));
    assert!(
        loss("microsoft") < 0.15,
        "microsoft loss {}",
        loss("microsoft")
    );
    assert!(loss("sap") < 0.15, "sap loss {}", loss("sap"));
}

#[test]
fn shared_infrastructure_is_excluded_from_the_index() {
    let f = fixture();
    // Google's discovered set is larger than its indexed set (the shared
    // HTTPS front is pruned, §3.4).
    let g = f.index.provider_index("google").unwrap();
    let indexed = f.index.ips_of(g).len();
    let discovered = f.discovery.get("google").unwrap().ips.len();
    assert!(
        indexed < discovered,
        "indexed {indexed} vs discovered {discovered}"
    );
}
