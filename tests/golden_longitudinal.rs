//! Golden snapshot of a 7-day longitudinal roll: the footprint-growth
//! table — per day, per provider, how many IPs the inferred footprint
//! covers and how many distinct locations they span — is pinned
//! byte-for-byte under a light fault plan.
//!
//! The rolled artifacts are byte-identical to from-scratch runs at every
//! day (`tests/incremental_equivalence.rs`) and thread count
//! (`tests/determinism.rs`), so this snapshot holds under the CI thread
//! matrix. To regenerate after an intentional change to the world, the
//! fault layer, or footprint inference:
//!
//! ```text
//! IOTMAP_BLESS=1 cargo test -q --test golden_longitudinal
//! ```

use iotmap::faults::FaultPlan;
use iotmap::prelude::*;
use std::fmt::Write as _;

const DAYS: usize = 7;

fn emit_day(out: &mut String, day: usize, artifacts: &RunArtifacts) {
    let period = artifacts.world.config.study_period;
    writeln!(
        out,
        "day {day} end={} discovered={} shared={}",
        period.end,
        artifacts.discovery.all_ips().len(),
        artifacts.shared_ips.len()
    )
    .unwrap();
    let mut names: Vec<&String> = artifacts.footprints.keys().collect();
    names.sort();
    for name in names {
        let fp = &artifacts.footprints[name];
        writeln!(
            out,
            "  {name} ips={} unlocated={} locations={}",
            fp.per_ip.len(),
            fp.unlocated,
            fp.location_count()
        )
        .unwrap();
    }
}

#[test]
fn seven_day_longitudinal_footprint_growth_matches_golden() {
    // The medium preset is the smallest world whose daily churn actually
    // reveals new infrastructure — on `small` every revealed row lands on
    // an already-discovered IP and the table would pin a flat line.
    let mut prepared = Pipeline::new(WorldConfig::medium(42))
        .faults(FaultPlan::light())
        .threads(1)
        .prepare()
        .expect("prepare");

    let mut got = String::from(
        "# 7-day longitudinal footprint growth (seed 42, preset medium, faults light)\n",
    );
    emit_day(&mut got, 0, prepared.rolled().expect("bootstrap"));
    for day in 1..=DAYS {
        let delta = prepared.next_delta();
        let artifacts = prepared.advance(&delta).expect("advance");
        emit_day(&mut got, day, artifacts);
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/longitudinal_growth.txt");
    if std::env::var_os("IOTMAP_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("read golden snapshot");
    assert_eq!(
        got,
        want,
        "footprint-growth table diverged from {} — if the change is intentional, \
         regenerate with IOTMAP_BLESS=1 cargo test -q --test golden_longitudinal",
        path.display()
    );

    // Growth sanity independent of the snapshot: a widening window never
    // shrinks the discovered set.
    let lines: Vec<&str> = want.lines().filter(|l| l.starts_with("day ")).collect();
    assert_eq!(lines.len(), DAYS + 1);
    let discovered: Vec<u64> = lines
        .iter()
        .map(|l| {
            l.split(' ')
                .find_map(|f| f.strip_prefix("discovered="))
                .expect("discovered= field")
                .parse()
                .expect("count")
        })
        .collect();
    assert!(
        discovered.windows(2).all(|w| w[0] <= w[1]),
        "discovered IPs must grow monotonically: {discovered:?}"
    );
}
