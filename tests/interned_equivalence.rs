//! The 100×-scale tentpole's correctness contract: the interned-ID +
//! streaming-fold pipeline must stay **byte-identical** — by
//! `canonical_dump()` — across thread counts and fault plans, and the
//! traffic passes rebuilt on `FlowFold` must equal the serial sink runs
//! they replaced.
//!
//! Matrix: small preset × threads {1, 4} × faults {none, heavy}, plus a
//! `#[ignore]`d paper-preset variant at threads {1, 2, 4, 8} for the
//! full acceptance sweep.

use iotmap::faults::FaultPlan;
use iotmap::prelude::*;
use iotmap::traffic::{AnalysisSink, ContactSink};
use iotmap::world::TrafficSimulator;

fn dump(config: &WorldConfig, faults: &FaultPlan, threads: usize) -> Vec<u8> {
    Pipeline::new(config.clone())
        .faults(faults.clone())
        .threads(threads)
        .run()
        .expect("pipeline")
        .canonical_dump()
}

#[test]
fn small_dump_is_thread_invariant_under_faults() {
    let config = WorldConfig::small(42);
    for faults in [FaultPlan::none(), FaultPlan::heavy()] {
        let serial = dump(&config, &faults, 1);
        let parallel = dump(&config, &faults, 4);
        assert_eq!(
            serial, parallel,
            "interned/streaming pipeline diverges at threads=4 (faults {faults:?})"
        );
    }
}

#[test]
fn traffic_folds_match_the_serial_sinks() {
    let artifacts = Pipeline::new(WorldConfig::small(42))
        .run()
        .expect("pipeline");
    let period = artifacts.world.config.study_period;
    let sim = TrafficSimulator::with_faults(
        &artifacts.world,
        artifacts.faults.seed,
        artifacts.faults.netflow.clone(),
    );

    // Contact pass: the fold-backed facade pass against a plain serial
    // sink run over the same simulator.
    let folded = artifacts.contact_pass(period);
    let mut serial = ContactSink::new(&artifacts.index);
    sim.run(period, &mut serial);
    assert_eq!(
        folded.per_line, serial.per_line,
        "fold-backed contact pass diverges from the serial sink"
    );

    // Analysis pass: report equality (AnalysisReport: PartialEq).
    let excluded = artifacts.excluded_lines(&folded);
    let folded_report = artifacts.analysis_pass(period, &excluded);
    let mut sink = AnalysisSink::new(&artifacts.index, &excluded, period);
    sim.run(period, &mut sink);
    assert_eq!(
        folded_report,
        sink.into_report(),
        "fold-backed analysis pass diverges from the serial sink"
    );
}

#[test]
fn scaled_analysis_at_one_replica_matches_the_plain_pass() {
    let artifacts = Pipeline::new(WorldConfig::small(42))
        .run()
        .expect("pipeline");
    let period = artifacts.world.config.study_period;
    let contacts = artifacts.contact_pass(period);
    let excluded = artifacts.excluded_lines(&contacts);
    assert_eq!(
        artifacts.scaled_analysis_pass(period, 1, &excluded),
        artifacts.analysis_pass(period, &excluded),
        "replicas=1 must be byte-identical to the unreplicated pass"
    );
}

/// The full acceptance sweep: paper preset, threads 1/2/4/8. Run with
/// `cargo test --release -- --ignored interned_paper` (minutes).
#[test]
#[ignore = "paper preset: minutes of wall clock; run explicitly"]
fn interned_paper_dump_is_thread_invariant() {
    let config = WorldConfig::paper(42);
    let faults = FaultPlan::none();
    let serial = dump(&config, &faults, 1);
    for threads in [2, 4, 8] {
        assert_eq!(
            serial,
            dump(&config, &faults, threads),
            "paper preset diverges at threads={threads}"
        );
    }
}
