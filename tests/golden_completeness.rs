//! The golden completeness report: a heavy-fault paper-preset run must
//! degrade *predictably* — the per-source completeness accounting is
//! pinned to a checked-in snapshot, and every Table 1 provider must
//! still be discovered (degraded, never dropped).
//!
//! Fault decisions are pure seeded hashes, so this report is identical
//! at any thread count (see `tests/determinism.rs`); the snapshot holds
//! under the CI thread matrix. To regenerate after an intentional
//! change to the fault layer or the synthetic world:
//!
//! ```text
//! IOTMAP_BLESS=1 cargo test -q --test golden_completeness
//! ```

use iotmap::faults::FaultPlan;
use iotmap::prelude::*;
use std::fmt::Write as _;
use std::rc::Rc;

/// The 16 Table 1 providers, by registry key.
const TABLE1_PROVIDERS: [&str; 16] = [
    "alibaba",
    "amazon",
    "baidu",
    "bosch",
    "cisco",
    "fujitsu",
    "google",
    "huawei",
    "ibm",
    "microsoft",
    "oracle",
    "ptc",
    "sap",
    "siemens",
    "sierra",
    "tencent",
];

#[test]
fn heavy_fault_paper_run_matches_golden_completeness_report() {
    let registry = Rc::new(Registry::new());
    iotmap_obs::install(registry.clone());
    let artifacts = Pipeline::new(WorldConfig::paper(42))
        .faults(FaultPlan::heavy())
        .run()
        .expect("a heavy-fault run must complete, not panic");
    // One traffic pass so the NetFlow export faults fire too — the
    // completeness report must name *every* wrapped source.
    let _contacts = artifacts.contact_pass(artifacts.world.config.study_period);
    iotmap_obs::uninstall();
    let report = registry.report();

    // Graceful degradation: every Table 1 provider is still present.
    for provider in TABLE1_PROVIDERS {
        let disc = artifacts
            .discovery
            .get(provider)
            .unwrap_or_else(|| panic!("provider {provider} missing from discovery"));
        assert!(
            !disc.ips.is_empty(),
            "heavy faults dropped provider {provider} entirely (must degrade, not drop)"
        );
    }

    // The completeness accounting itself, pinned byte-for-byte.
    let mut got = String::from("# exp (seed 42, preset paper, faults heavy)\n");
    for row in report.fault_completeness() {
        writeln!(
            got,
            "{} dropped={} retried={} recovered={}",
            row.source, row.dropped, row.retried, row.recovered
        )
        .unwrap();
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/completeness_heavy_paper.txt");
    if std::env::var_os("IOTMAP_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("read golden snapshot");
    assert_eq!(
        got,
        want,
        "completeness report diverged from {} — if the change is intentional, \
         regenerate with IOTMAP_BLESS=1 cargo test -q --test golden_completeness",
        path.display()
    );

    // Every wrapped source must actually have degraded under the heavy
    // plan — an empty row set would mean the fault layer silently
    // disconnected.
    let sources: Vec<_> = report
        .fault_completeness()
        .into_iter()
        .map(|r| r.source)
        .collect();
    assert_eq!(
        sources,
        ["active_dns", "censys", "netflow", "passive_dns", "zgrab"],
        "expected every wrapped source to report completeness"
    );
}
