//! Integration test of §6.1: the December 2021 AWS us-east-1 outage as
//! seen from the ISP — Fig. 15's volume crater vs Fig. 16's sticky
//! subscriber-line counts.

use iotmap::core::{
    DataSources, DiscoveryPipeline, FootprintInference, PatternRegistry, SharedIpClassifier,
};
use iotmap::nettypes::StudyPeriod;
use iotmap::traffic::{
    AnalysisReport, AnalysisSink, ContactSink, IpIndex, RegionGroup, ScannerAnalysis,
};
use iotmap::world::{TrafficSimulator, World, WorldConfig};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

fn report() -> &'static (World, AnalysisReport) {
    static FIXTURE: OnceLock<(World, AnalysisReport)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(&WorldConfig::small(42).with_outage_week());
        let period = world.config.study_period;
        let scans = world.collect_scan_data(period);
        let sources = DataSources {
            censys: &scans.censys,
            zgrab_v6: &scans.zgrab_v6,
            passive_dns: &world.passive_dns,
            zones: &world.zones,
            routeviews: &world.bgp,
            latency: None,
        };
        let registry = PatternRegistry::paper_defaults();
        let discovery =
            DiscoveryPipeline::new(PatternRegistry::paper_defaults()).run(&sources, period);
        let classifier = SharedIpClassifier::new(&registry);
        let mut footprints = HashMap::new();
        let mut shared = HashSet::new();
        for (name, disc) in discovery.per_provider() {
            footprints.insert(name.to_string(), FootprintInference::infer(disc, &sources));
            let (_, s) = classifier.split_provider(disc, &world.passive_dns, period);
            shared.extend(s.keys().copied());
        }
        let index = IpIndex::build(&discovery, &footprints, &shared);
        let sim = TrafficSimulator::new(&world);
        let mut contacts = ContactSink::new(&index);
        sim.run(period, &mut contacts);
        let excluded = ScannerAnalysis::new(&index, &contacts).flagged_lines(100);
        let mut sink = AnalysisSink::new(&index, &excluded, period);
        sim.run(period, &mut sink);
        let report = sink.into_report();
        (world, report)
    })
}

/// Day totals for one T1 region series.
fn day_totals(report: &AnalysisReport, group: RegionGroup, lines: bool) -> Vec<f64> {
    let series = report
        .region_series("amazon", group, lines)
        .expect("series");
    let mut out = vec![0.0; 7];
    for h in 0..series.len() {
        out[(h / 24).min(6)] += series.get(h);
    }
    out
}

/// Index of December 7 within the outage week.
fn outage_day_index() -> usize {
    let week = StudyPeriod::outage_week();
    ((StudyPeriod::aws_outage_window().start.epoch_days() - week.start.epoch_days()) as usize)
        .min(6)
}

fn delta_vs_other_days(totals: &[f64], day: usize) -> f64 {
    let others: f64 = totals
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != day)
        .map(|(_, v)| *v)
        .sum::<f64>()
        / (totals.len() - 1) as f64;
    totals[day] / others.max(1e-9) - 1.0
}

#[test]
fn us_east_downstream_craters_on_the_outage_day() {
    // Fig. 15: a drop well beyond the paper's ">14.5%", and below every
    // other day of the week.
    let (_, report) = report();
    let day = outage_day_index();
    let totals = day_totals(report, RegionGroup::UsEast1, false);
    let delta = delta_vs_other_days(&totals, day);
    assert!(delta < -0.15, "US-East outage-day delta {delta}");
    let min_other = totals
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != day)
        .map(|(_, v)| *v)
        .fold(f64::INFINITY, f64::min);
    assert!(
        totals[day] < min_other,
        "outage day {} must be the weekly minimum ({min_other})",
        totals[day]
    );
}

#[test]
fn eu_region_barely_moves_and_dominates() {
    let (_, report) = report();
    let day = outage_day_index();
    let eu = day_totals(report, RegionGroup::Europe, false);
    let us = day_totals(report, RegionGroup::UsEast1, false);
    let delta = delta_vs_other_days(&eu, day);
    assert!(delta.abs() < 0.25, "EU outage-day delta {delta}");
    // §6.1: the EU region serves a multiple of the US-East volume.
    let eu_total: f64 = eu.iter().sum();
    let us_total: f64 = us.iter().sum();
    assert!(
        eu_total > 1.5 * us_total,
        "EU {eu_total} vs US-East {us_total}"
    );
}

#[test]
fn subscriber_lines_stay_put_while_volume_drops() {
    // Fig. 16: devices keep retrying, so line counts dip far less than
    // bytes do.
    let (_, report) = report();
    let day = outage_day_index();
    let vol_delta = delta_vs_other_days(&day_totals(report, RegionGroup::UsEast1, false), day);
    let line_delta = delta_vs_other_days(&day_totals(report, RegionGroup::UsEast1, true), day);
    assert!(line_delta > -0.25, "line delta {line_delta}");
    assert!(
        line_delta > vol_delta + 0.10,
        "lines ({line_delta}) must dip far less than volume ({vol_delta})"
    );
}

#[test]
fn outage_week_has_its_own_calendar() {
    let (world, _) = report();
    assert_eq!(world.config.study_period, StudyPeriod::outage_week());
    assert!(StudyPeriod::outage_week().contains(StudyPeriod::aws_outage_window().start));
}
