//! Engine-vs-fanout differential tests.
//!
//! PR 4 replaced the per-provider fan-out in `DiscoveryPipeline::run`
//! with a single-pass matching engine (literal-suffix indexes + one
//! combined Pike VM). The old path survives as
//! [`DiscoveryPipeline::run_fanout`] precisely so this suite can pin
//! the new path to it: over the same prepared world, the two must
//! produce **byte-identical** discovery output — at every thread count
//! and under every fault plan. Counters may differ (the engine scans
//! each record once, not once per provider); facts may not.

use iotmap::faults::FaultPlan;
use iotmap::prelude::*;
use std::fmt::Write as _;

/// Canonical text dump of a [`DiscoveryResult`]: providers in registry
/// order, domains in set order, IPs sorted, evidence debug-formatted.
/// Two dumps are byte-identical iff the discovery facts agree exactly.
fn canonical_discovery(d: &DiscoveryResult) -> String {
    let mut out = String::new();
    for (name, disc) in d.per_provider() {
        writeln!(out, "provider {name}").unwrap();
        for domain in &disc.domains {
            writeln!(out, "  domain {domain}").unwrap();
        }
        let mut ips: Vec<_> = disc.ips.iter().collect();
        ips.sort_by_key(|(ip, _)| **ip);
        for (ip, evidence) in ips {
            writeln!(out, "  ip {ip} {evidence:?}").unwrap();
        }
    }
    out
}

/// Run both paths over one prepared world and assert byte-identity
/// across thread counts. The fan-out reference is taken single-threaded;
/// everything else (engine at 1/2/4/8 threads, fan-out re-run at 4) must
/// reproduce it exactly.
fn assert_engine_matches_fanout_on(config: WorldConfig, plan: FaultPlan) {
    let artifacts = Pipeline::new(config)
        .threads(1)
        .faults(plan.clone())
        .run()
        .expect("pipeline");
    let period = artifacts.world.config.study_period;
    let sources = artifacts.sources();
    let pipeline = DiscoveryPipeline::new(PatternRegistry::paper_defaults())
        .faults(plan.seed, plan.active_dns);

    let reference = with_threads(1, || pipeline.run_fanout(&sources, period));
    let reference_dump = canonical_discovery(&reference);
    assert!(
        !reference_dump.is_empty(),
        "fan-out reference discovered nothing; differential test would be vacuous"
    );

    for threads in [1, 2, 4, 8] {
        let engine = with_threads(threads, || pipeline.run(&sources, period));
        assert_eq!(
            canonical_discovery(&engine),
            reference_dump,
            "engine diverged from fan-out at {threads} thread(s)"
        );
    }
    let fanout4 = with_threads(4, || pipeline.run_fanout(&sources, period));
    assert_eq!(
        canonical_discovery(&fanout4),
        reference_dump,
        "fan-out reference itself is not thread-invariant"
    );
}

#[test]
fn engine_matches_fanout_without_faults() {
    assert_engine_matches_fanout_on(WorldConfig::small(42), FaultPlan::none());
}

#[test]
fn engine_matches_fanout_under_light_faults() {
    assert_engine_matches_fanout_on(WorldConfig::small(42), FaultPlan::light());
}

#[test]
fn engine_matches_fanout_under_heavy_faults() {
    assert_engine_matches_fanout_on(WorldConfig::small(42), FaultPlan::heavy());
}

/// The acceptance bar verbatim: byte-identity on the *paper* preset at
/// 1/2/4/8 threads under every fault plan. Several minutes of work, so
/// ignored by default — run explicitly with
/// `cargo test --release --test engine_equivalence -- --ignored`.
#[test]
#[ignore = "paper preset takes minutes; run with -- --ignored"]
fn engine_matches_fanout_paper_preset() {
    for plan in [FaultPlan::none(), FaultPlan::light(), FaultPlan::heavy()] {
        assert_engine_matches_fanout_on(WorldConfig::paper(42), plan);
    }
}
