//! Golden snapshot of the scenario resilience report: the paper preset
//! under a two-event chaos scenario (a Bosch region migration plus a
//! Microsoft certificate-rotation storm), measured against the
//! event-free baseline. Pinned byte-for-byte: per-event per-provider
//! precision/recall deltas and footprint stability in permille, plus the
//! discovery counts of both runs.
//!
//! Scenario artifacts are byte-identical at every thread count and
//! fault plan (`tests/scenario_engine.rs`), so this snapshot holds under
//! the CI thread matrix. To regenerate after an intentional change to
//! the world, the event transforms, or the resilience arithmetic:
//!
//! ```text
//! IOTMAP_BLESS=1 cargo test -q --test golden_scenario
//! ```

use iotmap::prelude::*;
use iotmap::scenario::measure_resilience;
use std::fmt::Write as _;

const SCENARIO: &str = "\
[scenario]
name = golden-chaos
seed = 5

[migration]
provider = bosch
day = 2
fraction = 0.4
to_cloud = aws
to_region = ap-southeast-1

[cert_storm]
provider = microsoft
day = 1
reissue = 0.3
expiry = 0.1
";

fn run(config: &WorldConfig, scenario: Option<&Scenario>) -> RunArtifacts {
    let mut pipeline = Pipeline::new(config.clone()).threads(1);
    if let Some(sc) = scenario {
        pipeline = pipeline.scenario(sc.clone());
    }
    pipeline.run().expect("pipeline")
}

#[test]
fn chaos_scenario_resilience_report_matches_golden() {
    let scenario = Scenario::parse(SCENARIO).expect("parse scenario");
    let config = WorldConfig::paper(42);
    let baseline = run(&config, None);
    let chaos = run(&config, Some(&scenario));

    let resilience = measure_resilience(
        &scenario,
        &chaos.world,
        &baseline.discovery,
        &baseline.footprints,
        &chaos.discovery,
        &chaos.footprints,
    );

    let mut got = String::from(
        "# scenario resilience report (seed 42, preset paper, scenario golden-chaos)\n",
    );
    writeln!(
        got,
        "baseline providers={} ips={}",
        baseline
            .discovery
            .per_provider()
            .filter(|(_, d)| !d.ips.is_empty())
            .count(),
        baseline.discovery.all_ips().len()
    )
    .unwrap();
    writeln!(
        got,
        "scenario providers={} ips={} timeline_skipped={}",
        chaos
            .discovery
            .per_provider()
            .filter(|(_, d)| !d.ips.is_empty())
            .count(),
        chaos.discovery.all_ips().len(),
        chaos.world.timeline.skipped
    )
    .unwrap();
    for event in &resilience {
        writeln!(got, "event {}", event.label).unwrap();
        for p in &event.providers {
            writeln!(
                got,
                "  {} precision_delta_pm={} recall_delta_pm={} footprint_stability_pm={} discovered={}",
                p.provider,
                p.precision_delta_pm,
                p.recall_delta_pm,
                p.footprint_stability_pm,
                p.discovered
            )
            .unwrap();
        }
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/scenario_resilience.txt");
    if std::env::var_os("IOTMAP_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("read golden snapshot");
    assert_eq!(
        got,
        want,
        "scenario resilience report diverged from {} — if the change is intentional, \
         regenerate with IOTMAP_BLESS=1 cargo test -q --test golden_scenario",
        path.display()
    );
}
