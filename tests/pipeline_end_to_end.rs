//! End-to-end test of the discovery methodology (§3) against the
//! synthetic Internet: the pipeline must recover most of the ground-truth
//! gateway IPs, attribute them to the right providers, and show the
//! per-source behaviours the paper reports.

use iotmap::prelude::*;
use std::collections::HashSet;
use std::net::IpAddr;
use std::sync::OnceLock;

struct Fixture {
    artifacts: RunArtifacts,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let artifacts = Pipeline::new(WorldConfig::small(42))
            .run()
            .expect("pipeline");
        Fixture { artifacts }
    })
}

fn sources(f: &Fixture) -> DataSources<'_> {
    f.artifacts.sources()
}

fn run_discovery(f: &'static Fixture) -> &'static DiscoveryResult {
    &f.artifacts.discovery
}

#[test]
fn pipeline_attributes_ips_to_correct_providers() {
    let f = fixture();
    let result = run_discovery(f);
    for (name, discovery) in result.per_provider() {
        let pidx = f.artifacts.world.provider_index(name);
        let truth = f.artifacts.world.true_ips(pidx);
        // Zero false attribution: every discovered IP belongs to the
        // provider in ground truth.
        for ip in discovery.ips.keys() {
            assert!(
                truth.contains(ip),
                "{name}: discovered {ip} not in ground truth"
            );
        }
    }
}

#[test]
fn pipeline_recovers_most_documented_ipv4_space() {
    let f = fixture();
    let result = run_discovery(f);
    let mut total_truth = 0usize;
    let mut total_found = 0usize;
    for (name, discovery) in result.per_provider() {
        let pidx = f.artifacts.world.provider_index(name);
        let documented = f.artifacts.world.documented_v4(pidx);
        let found: HashSet<IpAddr> = discovery.v4_ips().collect();
        let recall =
            found.intersection(&documented).count() as f64 / documented.len().max(1) as f64;
        total_truth += documented.len();
        total_found += found.intersection(&documented).count();
        assert!(
            recall > 0.35,
            "{name}: recall of documented space only {recall:.2} ({} of {})",
            found.len(),
            documented.len()
        );
    }
    let overall = total_found as f64 / total_truth as f64;
    assert!(overall > 0.6, "overall recall {overall:.2}");
}

#[test]
fn microsoft_sap_tencent_fully_visible_to_certificates_alone() {
    // Fig. 3: "when using only Censys data, we detect all IPs of the IoT
    // backends for Microsoft, SAP, and Tencent."
    let f = fixture();
    let result = run_discovery(f);
    let week = f.artifacts.world.config.study_period;
    let days: Vec<i64> = week.days().map(|d| d.epoch_days()).collect();
    for name in ["microsoft", "sap", "tencent"] {
        let discovery = result.get(name).unwrap();
        let pidx = f.artifacts.world.provider_index(name);
        // Denominator: documented gateways actually alive (scannable) on
        // at least one study day — churned-out cloud instances cannot
        // appear in any snapshot.
        let documented: HashSet<IpAddr> = f
            .artifacts
            .world
            .servers
            .iter()
            .filter(|s| {
                s.provider == pidx
                    && s.documented
                    && s.ip.is_ipv4()
                    && days.iter().any(|&d| s.alive_on(d))
            })
            .map(|s| s.ip)
            .collect();
        let via_cert = discovery.ips_from_sources(&[Source::Certificate]);
        let cert_v4: HashSet<IpAddr> = via_cert.into_iter().filter(|ip| ip.is_ipv4()).collect();
        let frac = cert_v4.intersection(&documented).count() as f64 / documented.len() as f64;
        assert!(
            frac > 0.9,
            "{name}: certificates alone should find ~all documented IPs, got {frac:.2}"
        );
    }
}

#[test]
fn google_nearly_invisible_to_certificates() {
    // Fig. 3 / §3.5: "we identify less than 2% of the Google IPs" via
    // certificate scans, because of SNI.
    let f = fixture();
    let result = run_discovery(f);
    let discovery = result.get("google").unwrap();
    let total = discovery.v4_ips().count().max(1);
    let via_cert = discovery
        .ips_from_sources(&[Source::Certificate])
        .into_iter()
        .filter(|ip| ip.is_ipv4())
        .count();
    let frac = via_cert as f64 / total as f64;
    assert!(
        frac < 0.10,
        "google cert-only fraction {frac:.3} (want <0.10; paper <0.02)"
    );
    // Passive DNS carries the majority.
    let via_pdns = discovery
        .ips_from_sources(&[Source::PassiveDns, Source::ActiveDns])
        .len();
    assert!(via_pdns as f64 / total as f64 > 0.7);
}

#[test]
fn ipv6_discovered_for_v6_providers_only() {
    let f = fixture();
    let result = run_discovery(f);
    let v6_providers: HashSet<&str> = [
        "alibaba", "amazon", "baidu", "google", "siemens", "sierra", "tencent",
    ]
    .into_iter()
    .collect();
    for (name, discovery) in result.per_provider() {
        let v6 = discovery.v6_ips().count();
        if v6_providers.contains(name) {
            assert!(v6 > 0, "{name} should have IPv6 discoveries");
        } else {
            assert_eq!(v6, 0, "{name} should have no IPv6");
        }
    }
}

#[test]
fn undocumented_microsoft_gateways_are_missed() {
    // §3.4's ground-truth gap: gateways with no DNS/cert presence cannot
    // be discovered by the methodology.
    let f = fixture();
    let result = run_discovery(f);
    let discovery = result.get("microsoft").unwrap();
    let pidx = f.artifacts.world.provider_index("microsoft");
    let hidden: Vec<IpAddr> = f
        .artifacts
        .world
        .servers
        .iter()
        .filter(|s| s.provider == pidx && !s.documented)
        .map(|s| s.ip)
        .collect();
    assert!(!hidden.is_empty());
    for ip in &hidden {
        assert!(
            !discovery.ips.contains_key(ip),
            "undocumented gateway {ip} should be invisible to the pipeline"
        );
    }
}

#[test]
fn discovery_is_deterministic() {
    let f = fixture();
    let pipeline = DiscoveryPipeline::new(PatternRegistry::paper_defaults());
    let a = pipeline.run(&sources(f), f.artifacts.world.config.study_period);
    let b = run_discovery(f);
    for ((na, da), (nb, db)) in a.per_provider().zip(b.per_provider()) {
        assert_eq!(na, nb);
        assert_eq!(da.ips.len(), db.ips.len());
    }
}

#[test]
fn multi_vantage_campaign_increases_coverage() {
    // §3.3: three vantage points vs one ≈ +17% IP coverage. The synthetic
    // world's geo-DNS reproduces a gain; assert it is visible (5%–40%).
    use iotmap::dns::{ActiveCampaign, VantagePoint};
    let f = fixture();
    let period = f.artifacts.world.config.study_period;

    let single = DiscoveryPipeline::with_campaign(
        PatternRegistry::paper_defaults(),
        ActiveCampaign::new(vec![VantagePoint::paper_defaults().remove(0)]),
    );
    let multi = DiscoveryPipeline::new(PatternRegistry::paper_defaults());

    let src = sources(f);
    let single_result = single.run_channels(&src, period, &[Source::ActiveDns]);
    let multi_result = multi.run_channels(&src, period, &[Source::ActiveDns]);
    let s = single_result.all_ips().len();
    let m = multi_result.all_ips().len();
    assert!(m >= s, "multi {m} >= single {s}");
    let gain = m as f64 / s.max(1) as f64 - 1.0;
    assert!(
        (0.02..0.6).contains(&gain),
        "multi-vantage gain {gain:.3} (paper: ~0.17)"
    );
}
