//! The scenario engine's acceptance contracts:
//!
//! 1. the December 2021 AWS outage expressed as a scenario *file* is
//!    byte-identical (canonical dump) to the built-in
//!    `OutageEvent::aws_dec_2021()` the world ships with;
//! 2. a certificate-rotation storm degrades the run — the instruments
//!    observe different data — but never loses a provider: all 16
//!    Table-1 backends stay discovered;
//! 3. scenario runs are byte-deterministic per `(seed, scenario,
//!    threads)`: any thread count and any fault plan produce the same
//!    artifacts as the serial run under the same plan.

use iotmap::faults::FaultPlan;
use iotmap::prelude::*;

fn read_scenario(name: &str) -> Scenario {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn run(config: &WorldConfig, scenario: Option<&Scenario>, threads: usize) -> RunArtifacts {
    run_with(config, scenario, threads, FaultPlan::none())
}

fn run_with(
    config: &WorldConfig,
    scenario: Option<&Scenario>,
    threads: usize,
    faults: FaultPlan,
) -> RunArtifacts {
    let mut pipeline = Pipeline::new(config.clone())
        .threads(threads)
        .faults(faults);
    if let Some(sc) = scenario {
        pipeline = pipeline.scenario(sc.clone());
    }
    pipeline.run().expect("pipeline")
}

#[test]
fn aws_outage_scenario_file_is_byte_identical_to_builtin() {
    // The world ships with the AWS outage built in; a scenario file
    // declaring the same cloud/region/window/residuals replaces it with
    // an equal event, so the whole run must be byte-identical to the
    // event-free baseline carrying the built-in.
    let sc = read_scenario("aws_outage.scn");
    let config = WorldConfig::small(42);
    let baseline = run(&config, None, 1);
    let scenario_run = run(&config, Some(&sc), 1);
    assert_eq!(
        scenario_run.world.events.outage,
        iotmap::world::OutageEvent::aws_dec_2021()
    );
    assert_eq!(
        baseline.canonical_dump(),
        scenario_run.canonical_dump(),
        "an outage-only scenario matching the built-in event must not move a byte"
    );
}

#[test]
fn cert_storm_degrades_gracefully_without_losing_providers() {
    let sc = read_scenario("cert_storm.scn");
    let config = WorldConfig::small(42);
    let baseline = run(&config, None, 1);
    let stormed = run(&config, Some(&sc), 1);

    // The storm must actually bite: reissued and expired certificates
    // change what the Censys sweeps collect.
    assert!(
        !stormed.world.timeline.is_empty(),
        "the storm timeline must compile to at least one swapped certificate"
    );
    assert_eq!(stormed.world.timeline.skipped, 0);
    assert_ne!(
        baseline.scans, stormed.scans,
        "a cert storm must change the collected scan data"
    );

    // …and the methodology must degrade, not fail: every Table-1
    // provider stays discovered (passive DNS and the surviving
    // certificates carry the coverage).
    let discovered = stormed
        .discovery
        .per_provider()
        .filter(|(_, d)| !d.ips.is_empty())
        .count();
    assert_eq!(discovered, 16, "all 16 providers must survive the storm");
}

#[test]
fn migration_shifts_ground_truth_and_discovery_follows() {
    let sc = read_scenario("migration.scn");
    let config = WorldConfig::small(42);
    let artifacts = run(&config, Some(&sc), 1);
    let world = &artifacts.world;
    assert!(
        !world.timeline.migrations.is_empty(),
        "a 40% migration of bosch must move at least one server"
    );
    // Every migration target is discovered through the scans (the certs
    // move with the servers), even though passive DNS still points at
    // the old block.
    let bosch = artifacts.discovery.get("bosch").expect("bosch discovery");
    let mut targets_discovered = 0usize;
    for m in world.timeline.migrations.values() {
        if bosch.ips.contains_key(&std::net::IpAddr::V4(m.new_ip)) {
            targets_discovered += 1;
        }
    }
    assert!(
        targets_discovered > 0,
        "scans must discover migrated addresses via their certificates"
    );
}

#[test]
fn scenario_runs_are_deterministic_across_threads_and_faults() {
    let sc = read_scenario("chaos_week.scn");
    let config = WorldConfig::small(42);
    for faults in [FaultPlan::none(), FaultPlan::heavy()] {
        let serial = run_with(&config, Some(&sc), 1, faults.clone());
        let parallel = run_with(&config, Some(&sc), 4, faults.clone());
        assert_eq!(
            serial.canonical_dump(),
            parallel.canonical_dump(),
            "threads 1 vs 4 diverged under faults {faults:?}"
        );
    }
}

#[test]
fn scenario_composes_with_longitudinal_advance() {
    // Day-advance reads the same dated world views the scenario
    // transforms hook into, so a rolled scenario run must stay
    // byte-identical to the from-scratch oracle over the merged corpus.
    let sc = read_scenario("migration.scn");
    let mut prepared = Pipeline::new(WorldConfig::small(42))
        .threads(1)
        .scenario(sc)
        .prepare()
        .expect("prepare");
    for day in 1..=2 {
        let delta = prepared.next_delta();
        let rolled_dump = prepared.advance(&delta).expect("advance").canonical_dump();
        let oracle = prepared.execute().expect("oracle");
        assert_eq!(
            oracle.canonical_dump(),
            rolled_dump,
            "day {day}: rolled scenario run diverged from the from-scratch oracle"
        );
    }
}
