//! The parallel engine's determinism contract, end to end: running the
//! full pipeline on 2/4/8 worker threads must produce artifacts — and an
//! instrumented run report — identical to the serial run, down to metric
//! values and span-tree structure. Only wall-clock timings may differ.

use iotmap::faults::FaultPlan;
use iotmap::prelude::*;
use iotmap_obs::{RunReport, SpanNode};
use std::fmt::Write as _;
use std::rc::Rc;

/// A canonical text dump of everything a run produced. Hash-map contents
/// are sorted, so two dumps are byte-identical iff the runs discovered
/// the same facts.
fn canonical_artifacts(a: &RunArtifacts) -> String {
    let mut out = String::new();
    for (name, disc) in a.discovery.per_provider() {
        writeln!(out, "provider {name}").unwrap();
        for d in &disc.domains {
            writeln!(out, "  domain {d}").unwrap();
        }
        let mut ips: Vec<_> = disc.ips.iter().collect();
        ips.sort_by_key(|(ip, _)| **ip);
        for (ip, evidence) in ips {
            writeln!(out, "  ip {ip} {evidence:?}").unwrap();
        }
    }
    let mut footprints: Vec<_> = a.footprints.iter().collect();
    footprints.sort_by_key(|(name, _)| name.as_str());
    for (name, fp) in footprints {
        writeln!(out, "footprint {name} {fp:?}").unwrap();
    }
    let mut shared: Vec<_> = a.shared_ips.iter().collect();
    shared.sort();
    writeln!(out, "shared {shared:?}").unwrap();
    writeln!(out, "index len {}", a.index.len()).unwrap();
    out
}

/// The timing-free shape of a run report: the span tree (names and
/// structure, not durations) plus every counter, gauge, and histogram
/// occupancy.
fn canonical_report(r: &RunReport) -> String {
    let mut out = String::new();
    fn walk(node: &SpanNode, path: &str, out: &mut String) {
        let path = if path.is_empty() {
            node.name.clone()
        } else {
            format!("{path}/{}", node.name)
        };
        writeln!(out, "span {path}").unwrap();
        for child in &node.children {
            walk(child, &path, out);
        }
    }
    for root in &r.spans {
        walk(root, "", &mut out);
    }
    for (name, value) in &r.counters {
        writeln!(out, "counter {name} = {value}").unwrap();
    }
    for (name, value) in &r.gauges {
        writeln!(out, "gauge {name} = {value}").unwrap();
    }
    for (name, h) in &r.histograms {
        writeln!(
            out,
            "histogram {name} count {} buckets {:?}",
            h.count, h.counts
        )
        .unwrap();
    }
    out
}

/// One fully instrumented pipeline run at a given thread budget.
fn run(threads: usize) -> (String, String, String) {
    run_faulted(threads, FaultPlan::none())
}

/// Same, under a fault plan: fault decisions are pure seeded hashes, so
/// the determinism contract must hold for degraded runs too.
fn run_faulted(threads: usize, plan: FaultPlan) -> (String, String, String) {
    let registry = Rc::new(Registry::new());
    iotmap_obs::install(registry.clone());
    let artifacts = Pipeline::new(WorldConfig::small(42))
        .threads(threads)
        .faults(plan)
        .run()
        .expect("pipeline");
    iotmap_obs::uninstall();
    let report = registry.report();
    // The JSON-lines export, with the (timing-dependent) nanos fields
    // stripped, must match byte-for-byte too.
    let jsonl: String = report
        .to_jsonl()
        .lines()
        .map(|l| match l.split_once(",\"nanos\":") {
            Some((head, _)) => format!("{head}}}\n"),
            None => format!("{l}\n"),
        })
        .collect();
    (
        canonical_artifacts(&artifacts),
        canonical_report(&report),
        jsonl,
    )
}

#[test]
fn parallel_runs_match_serial_exactly() {
    let (serial_artifacts, serial_report, serial_jsonl) = run(1);
    assert!(serial_report.contains("span experiment.prepare"));
    assert!(serial_artifacts.contains("provider microsoft"));
    for threads in [2, 4, 8] {
        let (artifacts, report, jsonl) = run(threads);
        assert_eq!(
            artifacts, serial_artifacts,
            "artifacts diverge at {threads} threads"
        );
        assert_eq!(
            report, serial_report,
            "run report diverges at {threads} threads"
        );
        assert_eq!(
            jsonl, serial_jsonl,
            "jsonl export diverges at {threads} threads"
        );
    }
}

#[test]
fn faulted_runs_are_thread_count_invariant() {
    for plan in [FaultPlan::light(), FaultPlan::heavy()] {
        let (serial_artifacts, serial_report, serial_jsonl) = run_faulted(1, plan.clone());
        // The degraded-source accounting itself must be deterministic.
        assert!(serial_report.contains("counter faults."));
        for threads in [2, 4, 8] {
            let (artifacts, report, jsonl) = run_faulted(threads, plan.clone());
            assert_eq!(
                artifacts, serial_artifacts,
                "faulted artifacts diverge at {threads} threads"
            );
            assert_eq!(
                report, serial_report,
                "faulted run report diverges at {threads} threads"
            );
            assert_eq!(
                jsonl, serial_jsonl,
                "faulted jsonl export diverges at {threads} threads"
            );
        }
    }
}

#[test]
fn uninstrumented_parallel_run_matches_serial() {
    // Without a recorder installed the workers skip child registries
    // entirely — output must still be identical.
    let serial = canonical_artifacts(
        &Pipeline::new(WorldConfig::small(7))
            .threads(1)
            .run()
            .expect("pipeline"),
    );
    let parallel = canonical_artifacts(
        &Pipeline::new(WorldConfig::small(7))
            .threads(4)
            .run()
            .expect("pipeline"),
    );
    assert_eq!(parallel, serial);
}
