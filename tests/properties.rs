//! Property-based tests over the core data structures and invariants,
//! spanning crates through the facade.
//!
//! Two tiers live here:
//!
//! * **Seeded fault-layer properties** (always on, std-only): the
//!   fault-injection contract — a zero-fault plan is byte-identical to
//!   not having the fault layer at all, and heavier plans only ever
//!   *remove* observations (discovered IPs, exported traffic), never
//!   add them.
//! * **Randomized structure properties** (`heavy-tests` feature): the
//!   `proptest` dev-dependency cannot be fetched in the offline tier-1
//!   environment, so these stay gated off by default.

use iotmap::faults::FaultPlan;
use iotmap::netflow::{FlowRecord, FlowSink};
use iotmap::prelude::*;
use iotmap::world::TrafficSimulator;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::net::IpAddr;

/// A canonical text dump of a run's discovered facts (maps sorted, so
/// two dumps are byte-identical iff the runs agree).
fn canonical_artifacts(a: &RunArtifacts) -> String {
    let mut out = String::new();
    for (name, disc) in a.discovery.per_provider() {
        writeln!(out, "provider {name}").unwrap();
        for d in &disc.domains {
            writeln!(out, "  domain {d}").unwrap();
        }
        let mut ips: Vec<_> = disc.ips.iter().collect();
        ips.sort_by_key(|(ip, _)| **ip);
        for (ip, evidence) in ips {
            writeln!(out, "  ip {ip} {evidence:?}").unwrap();
        }
    }
    let mut footprints: Vec<_> = a.footprints.iter().collect();
    footprints.sort_by_key(|(name, _)| name.as_str());
    for (name, fp) in footprints {
        writeln!(out, "footprint {name} {fp:?}").unwrap();
    }
    let mut shared: Vec<_> = a.shared_ips.iter().collect();
    shared.sort();
    writeln!(out, "shared {shared:?}").unwrap();
    writeln!(out, "index len {}", a.index.len()).unwrap();
    out
}

fn run_with_plan(plan: FaultPlan) -> RunArtifacts {
    Pipeline::new(WorldConfig::small(42))
        .threads(1)
        .faults(plan)
        .run()
        .expect("pipeline")
}

fn all_ips(a: &RunArtifacts) -> BTreeSet<IpAddr> {
    a.discovery.all_ips().into_iter().collect()
}

/// An explicit [`FaultPlan::none`] must be byte-identical to never
/// touching the fault API at all — the layer's "zero-cost when unused"
/// contract, down to every discovered fact.
#[test]
fn zero_fault_plan_is_byte_identical_to_no_fault_layer() {
    let bare = Pipeline::new(WorldConfig::small(42))
        .threads(1)
        .run()
        .expect("pipeline");
    let zeroed = run_with_plan(FaultPlan::none());
    assert_eq!(canonical_artifacts(&bare), canonical_artifacts(&zeroed));
}

/// A heavier fault plan never *adds* observations: the discovered IP
/// sets nest (heavy ⊆ light ⊆ none), because every fault decision is a
/// pure seeded hash compared against the rate — raising the rate only
/// grows the drop set.
#[test]
fn fault_monotonicity_discovered_ips_nest() {
    assert!(FaultPlan::heavy().dominates(&FaultPlan::light()));
    assert!(FaultPlan::light().dominates(&FaultPlan::none()));

    let none = all_ips(&run_with_plan(FaultPlan::none()));
    let light = all_ips(&run_with_plan(FaultPlan::light()));
    let heavy = all_ips(&run_with_plan(FaultPlan::heavy()));
    assert!(!heavy.is_empty(), "heavy faults must degrade, not destroy");
    assert!(
        light.is_subset(&none),
        "light plan discovered IPs outside the fault-free set"
    );
    assert!(
        heavy.is_subset(&light),
        "heavy plan discovered IPs outside the light set"
    );
}

struct CountingSink {
    records: u64,
    bytes: u64,
}

impl FlowSink for CountingSink {
    fn accept(&mut self, record: &FlowRecord) {
        self.records += 1;
        self.bytes += record.bytes;
    }
}

/// NetFlow export loss is monotone in the plan: the same world simulated
/// under none/light/heavy fault plans exports a non-increasing record
/// count and byte volume.
#[test]
fn fault_monotonicity_traffic_volume_never_increases() {
    let artifacts = run_with_plan(FaultPlan::none());
    let period = artifacts.world.config.study_period;
    let volume = |plan: FaultPlan| {
        let sim = TrafficSimulator::with_faults(&artifacts.world, plan.seed, plan.netflow);
        let mut sink = CountingSink {
            records: 0,
            bytes: 0,
        };
        sim.run(period, &mut sink);
        (sink.records, sink.bytes)
    };
    let none = volume(FaultPlan::none());
    let light = volume(FaultPlan::light());
    let heavy = volume(FaultPlan::heavy());
    assert!(none.0 > 0 && none.1 > 0);
    assert!(heavy.0 > 0, "heavy faults must degrade, not destroy");
    assert!(light.0 <= none.0 && light.1 <= none.1);
    assert!(heavy.0 <= light.0 && heavy.1 <= light.1);
}

/// Randomized hostnames for the matching-engine differential: a mix of
/// junk labels, genuine provider names, and adversarial lookalikes
/// (provider suffixes glued without a label boundary, or buried before
/// an extra tail), with random case flips to exercise case folding.
fn random_hostnames(seed: u64, registry: &PatternRegistry, count: usize) -> Vec<String> {
    let mut rng = SimRng::new(seed);
    let labels = [
        "device",
        "mqtt",
        "iot",
        "cloud",
        "a1b2",
        "eu-west-1",
        "x9",
        "edge",
    ];
    let known = [
        "a1b2.iot.eu-west-1.amazonaws.com",
        "thing.iot.us-east-1.amazonaws.com",
        "device.azure-devices.net",
        "mqtt.googleapis.com",
        "na.airvantage.net",
    ];
    let mut suffixes: Vec<String> = Vec::new();
    for p in registry.providers() {
        for re in [&p.owner_regex, &p.san_regex] {
            if let Some(s) = re.literal_suffix() {
                suffixes.push(s.trim_end_matches('.').to_string());
            }
        }
    }
    let mut names = Vec::with_capacity(count);
    for _ in 0..count {
        let mut name = match rng.gen_below(5) {
            0 => {
                let n = rng.gen_range(1, 5) as usize;
                (0..n)
                    .map(|_| *rng.choose(&labels))
                    .collect::<Vec<_>>()
                    .join(".")
            }
            1 => format!("{}{}", rng.choose(&labels), rng.choose(&suffixes)),
            2 => {
                let s = rng.choose(&suffixes);
                if rng.chance(0.5) {
                    format!("x{}", s.trim_start_matches('.'))
                } else {
                    format!("a{s}.evil.example")
                }
            }
            3 => (*rng.choose(&known)).to_string(),
            _ => format!("{}.{}", rng.choose(&labels), rng.choose(&known)),
        };
        if rng.chance(0.25) {
            name = name
                .chars()
                .map(|c| {
                    if rng.chance(0.3) {
                        c.to_ascii_uppercase()
                    } else {
                        c
                    }
                })
                .collect();
        }
        names.push(name);
    }
    names
}

/// The single-pass matching engine (literal-suffix index prefilter +
/// per-candidate Pike-VM verification, combined-set fallback) must agree
/// with a naive oracle — every provider's pattern run as a backtracking
/// regex over every name — on randomized hostnames. This pins both
/// halves of the engine: the suffix index may never *drop* a true match
/// (completeness) and verification may never *admit* a lookalike
/// (soundness). Std-only and always on, unlike the proptest tier below.
#[test]
fn match_engine_agrees_with_backtracking_oracle() {
    use iotmap::core::MatchEngine;
    use iotmap::dregex::backtrack::BacktrackRegex;
    use iotmap::nettypes::SuffixIndex;

    let registry = PatternRegistry::paper_defaults();
    let providers = registry.providers();
    let mut positives = 0usize;

    for seed in [1u64, 7, 42, 1337] {
        let names = random_hostnames(seed, &registry, 250);

        for owners in [false, true] {
            // Owner rows are FQDNs (trailing dot), SAN rows are bare —
            // mirroring how discovery feeds the engine.
            let rows: Vec<String> = names
                .iter()
                .map(|n| if owners { format!("{n}.") } else { n.clone() })
                .collect();
            let engine = if owners {
                MatchEngine::owners(&registry)
            } else {
                MatchEngine::sans(&registry)
            };
            let mut index = SuffixIndex::new();
            for (row, name) in rows.iter().enumerate() {
                index.insert(name, row as u32);
            }
            let table = engine.classify(
                &index,
                rows.len(),
                |pi, row| {
                    let re = if owners {
                        &providers[pi].owner_regex
                    } else {
                        &providers[pi].san_regex
                    };
                    re.is_match(&rows[row as usize])
                },
                |row, f| f(&rows[row as usize]),
            );

            // Oracle: backtracking engine, case-folded by hand (the
            // production regexes compile case-insensitive).
            for (pi, provider) in providers.iter().enumerate() {
                let pattern = if owners {
                    provider.owner_regex.pattern()
                } else {
                    provider.san_regex.pattern()
                };
                let oracle = BacktrackRegex::new(pattern).expect("paper pattern");
                for (row, name) in rows.iter().enumerate() {
                    let expected = oracle.is_match(&name.to_ascii_lowercase());
                    assert_eq!(
                        table.contains(row, pi),
                        expected,
                        "engine vs backtracking oracle disagree: \
                         name={name:?} provider={} owners={owners}",
                        provider.name
                    );
                    positives += expected as usize;
                }
            }
        }
    }
    assert!(
        positives > 0,
        "no generated name matched any provider; differential is vacuous"
    );
}

/// The delta algebra's inverse law: applying a day's [`WorldDelta`] to a
/// corpus and then unapplying it restores the corpus and the period
/// byte-for-byte — and both directions reject a misaligned or tampered
/// corpus instead of corrupting it. Std-only and always on.
#[test]
fn delta_apply_then_unapply_is_identity() {
    use iotmap::delta::DeltaError;

    let prepared = Pipeline::new(WorldConfig::small(42))
        .threads(1)
        .prepare()
        .expect("prepare");
    let period = prepared.world.config.study_period;
    let faults = FaultPlan::none();
    let delta = WorldDelta::next_day(&prepared.world, period, &faults);
    assert_eq!(delta.from_end, period.end);
    assert!(!delta.snapshots.is_empty());

    let mut scans = prepared.scans.clone();
    let extended = delta.apply(&mut scans, period).expect("apply");
    assert_eq!(extended.start, period.start);
    assert_eq!(extended.end, delta.to_end);
    assert_ne!(scans, prepared.scans, "apply must extend the corpus");

    // Re-applying to the already-extended corpus is misaligned.
    assert!(matches!(
        delta.apply(&mut scans.clone(), extended),
        Err(DeltaError::Misaligned { .. })
    ));
    // Unapplying a tampered tail must be refused, corpus untouched.
    let mut tampered = scans.clone();
    tampered
        .censys
        .last_mut()
        .expect("one appended snapshot")
        .records
        .clear();
    assert!(matches!(
        delta.unapply(&mut tampered, extended),
        Err(DeltaError::TailMismatch)
    ));

    let restored = delta.unapply(&mut scans, extended).expect("unapply");
    assert_eq!(restored.start, period.start);
    assert_eq!(restored.end, period.end);
    assert_eq!(scans, prepared.scans, "unapply must restore the corpus");
    // Unapplying again: the corpus no longer ends at `to_end`.
    assert!(matches!(
        delta.unapply(&mut scans, restored),
        Err(DeltaError::Misaligned { .. })
    ));
}

/// The delta algebra's composition law: chaining the per-day deltas of a
/// span equals the merged delta generated over that span in one shot —
/// under an active fault plan too, because sweep faults key on the
/// absolute date. Std-only and always on.
#[test]
fn composing_day_deltas_equals_the_merged_span() {
    use iotmap::delta::DeltaError;

    let prepared = Pipeline::new(WorldConfig::small(42))
        .threads(1)
        .prepare()
        .expect("prepare");
    let period = prepared.world.config.study_period;
    let faults = FaultPlan::light();

    let d1 = WorldDelta::next_day(&prepared.world, period, &faults);
    let p1 = StudyPeriod::new(period.start, d1.to_end);
    let d2 = WorldDelta::next_day(&prepared.world, p1, &faults);
    let p2 = StudyPeriod::new(period.start, d2.to_end);
    let d3 = WorldDelta::next_day(&prepared.world, p2, &faults);

    // Out-of-order composition is rejected.
    assert!(matches!(
        d2.clone().compose(d1.clone()),
        Err(DeltaError::Misaligned { .. })
    ));

    let composed = d1
        .compose(d2)
        .expect("adjacent compose")
        .compose(d3)
        .expect("adjacent compose");
    let merged = WorldDelta::span(&prepared.world, period, 3, &faults);
    assert_eq!(composed, merged);
    assert_eq!(merged.snapshots.len(), 3);
}

#[cfg(feature = "heavy-tests")]
mod proptests {
    use iotmap::dregex::{backtrack::BacktrackRegex, Regex};
    use iotmap::nettypes::interval::IntervalSet;
    use iotmap::nettypes::{Date, DomainName, Ipv4Prefix, PrefixMap, SimTime};
    use iotmap::stats::Ecdf;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use std::net::Ipv4Addr;

    proptest! {
        /// Prefix parse/display roundtrip and containment bounds.
        #[test]
        fn prefix_roundtrip_and_bounds(addr: u32, len in 0u8..=32) {
            let p = Ipv4Prefix::new(Ipv4Addr::from(addr), len);
            let reparsed: Ipv4Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, reparsed);
            prop_assert!(p.contains(p.first()));
            prop_assert!(p.contains(p.last()));
            prop_assert!(p.contains(Ipv4Addr::from(addr)));
            // One past the end is outside (when representable).
            if let Some(next) = u32::from(p.last()).checked_add(1) {
                prop_assert!(!p.contains(Ipv4Addr::from(next)));
            }
            prop_assert_eq!(u64::from(u32::from(p.last()) - u32::from(p.first())) + 1, p.size());
        }

        /// Longest-prefix match agrees with a brute-force scan.
        #[test]
        fn trie_matches_linear_scan(
            entries in prop::collection::vec((any::<u32>(), 8u8..=28), 1..20),
            probe: u32,
        ) {
            let mut map = PrefixMap::new();
            let mut list = Vec::new();
            for (i, (addr, len)) in entries.iter().enumerate() {
                let p = Ipv4Prefix::new(Ipv4Addr::from(*addr), *len);
                map.insert_v4(p, i);
                list.push((p, i));
            }
            let probe_addr = Ipv4Addr::from(probe);
            let expected = list
                .iter()
                .filter(|(p, _)| p.contains(probe_addr))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, _)| *p);
            let got = map.lookup_v4(probe_addr).map(|(p, _)| p);
            // Note: duplicate prefixes keep the last value but the same prefix.
            prop_assert_eq!(got, expected);
        }

        /// IntervalSet behaves like a set of integers.
        #[test]
        fn interval_set_models_btreeset(
            ranges in prop::collection::vec((0u64..500, 1u64..40), 0..20),
            probes in prop::collection::vec(0u64..600, 20),
        ) {
            let mut set = IntervalSet::new();
            let mut model = BTreeSet::new();
            for (start, width) in ranges {
                set.insert_range(start, start + width);
                model.extend(start..start + width);
            }
            prop_assert_eq!(set.len(), model.len() as u64);
            for p in probes {
                prop_assert_eq!(set.contains(p), model.contains(&p), "probe {}", p);
            }
            // Ranges are maximal (no two adjacent ranges).
            let rs: Vec<_> = set.ranges().collect();
            for w in rs.windows(2) {
                prop_assert!(w[0].1 < w[1].0);
            }
        }

        /// ECDF is monotone and bounded.
        #[test]
        fn ecdf_is_monotone(samples in prop::collection::vec(0.0f64..1e9, 1..200)) {
            let e = Ecdf::new(samples.clone());
            let mut last = 0.0;
            for x in [0.0, 1.0, 1e3, 1e6, 1e9, 2e9] {
                let f = e.fraction_at_or_below(x);
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(f + 1e-12 >= last);
                last = f;
            }
            prop_assert_eq!(e.fraction_at_or_below(2e9), 1.0);
            let med = e.median();
            prop_assert!(samples.iter().any(|s| (s - med).abs() < 1e-9));
        }

        /// The Pike VM and the naive backtracker agree on random inputs.
        #[test]
        fn regex_engines_agree(input in "[a-z0-9.-]{0,40}") {
            let patterns = [
                r"(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)(\.amazonaws\.com\.$)",
                r"(.+\.|^)(azure-devices\.net\.$)",
                r"^[a-z]+[0-9]*\.",
                r"(ab|ba)+c?",
                r"[^.]+\.[^.]+",
            ];
            for pat in patterns {
                let pike = Regex::new(pat).unwrap();
                let bt = BacktrackRegex::new(pat).unwrap();
                prop_assert_eq!(
                    pike.is_match(&input),
                    bt.is_match(&input),
                    "search disagreement on {} / {:?}", pat, &input
                );
                prop_assert_eq!(
                    pike.is_full_match(&input),
                    bt.is_full_match(&input),
                    "full-match disagreement on {} / {:?}", pat, &input
                );
            }
        }

        /// Domain parsing is idempotent and case-normalizing.
        #[test]
        fn domain_parse_idempotent(labels in prop::collection::vec("[A-Za-z0-9]{1,10}", 1..5)) {
            let raw = labels.join(".");
            let d1 = DomainName::parse(&raw).unwrap();
            let d2 = DomainName::parse(d1.as_str()).unwrap();
            prop_assert_eq!(&d1, &d2);
            prop_assert_eq!(d1.as_str(), raw.to_lowercase());
            prop_assert_eq!(d1.label_count(), labels.len());
            // FQDN form parses back to the same name.
            let d3 = DomainName::parse(&d1.fqdn()).unwrap();
            prop_assert_eq!(&d1, &d3);
        }

        /// Civil-date arithmetic roundtrips through SimTime.
        #[test]
        fn date_time_roundtrip(days in 0i64..40_000, secs in 0u64..86_400) {
            let date = Date::from_epoch_days(days);
            prop_assert_eq!(date.epoch_days(), days);
            let t = SimTime(days as u64 * 86_400 + secs);
            prop_assert_eq!(t.date(), date);
            prop_assert_eq!(t.epoch_days(), days);
            prop_assert_eq!(t.hour_of_day() as u64, secs / 3600);
            prop_assert_eq!(t.midnight().unix(), days as u64 * 86_400);
        }

        /// The deterministic RNG forks are stable and independent of call order.
        #[test]
        fn rng_forks_are_order_independent(seed: u64) {
            use iotmap::nettypes::SimRng;
            let root = SimRng::new(seed);
            let mut a1 = root.fork("alpha");
            let mut b1 = root.fork("beta");
            // Opposite acquisition order must not change the streams.
            let mut b2 = root.fork("beta");
            let mut a2 = root.fork("alpha");
            prop_assert_eq!(a1.next_u64(), a2.next_u64());
            prop_assert_eq!(b1.next_u64(), b2.next_u64());
        }
    }
}
