/root/repo/target/release/deps/determinism-1b28c9f45478a6c2.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-1b28c9f45478a6c2: tests/determinism.rs

tests/determinism.rs:
