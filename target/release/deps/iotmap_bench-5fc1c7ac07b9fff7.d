/root/repo/target/release/deps/iotmap_bench-5fc1c7ac07b9fff7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/iotmap_bench-5fc1c7ac07b9fff7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
