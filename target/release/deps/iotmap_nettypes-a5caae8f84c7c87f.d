/root/repo/target/release/deps/iotmap_nettypes-a5caae8f84c7c87f.d: crates/nettypes/src/lib.rs crates/nettypes/src/asn.rs crates/nettypes/src/bgp.rs crates/nettypes/src/dist.rs crates/nettypes/src/error.rs crates/nettypes/src/geo.rs crates/nettypes/src/interval.rs crates/nettypes/src/name.rs crates/nettypes/src/ports.rs crates/nettypes/src/prefix.rs crates/nettypes/src/rng.rs crates/nettypes/src/time.rs crates/nettypes/src/trie.rs

/root/repo/target/release/deps/iotmap_nettypes-a5caae8f84c7c87f: crates/nettypes/src/lib.rs crates/nettypes/src/asn.rs crates/nettypes/src/bgp.rs crates/nettypes/src/dist.rs crates/nettypes/src/error.rs crates/nettypes/src/geo.rs crates/nettypes/src/interval.rs crates/nettypes/src/name.rs crates/nettypes/src/ports.rs crates/nettypes/src/prefix.rs crates/nettypes/src/rng.rs crates/nettypes/src/time.rs crates/nettypes/src/trie.rs

crates/nettypes/src/lib.rs:
crates/nettypes/src/asn.rs:
crates/nettypes/src/bgp.rs:
crates/nettypes/src/dist.rs:
crates/nettypes/src/error.rs:
crates/nettypes/src/geo.rs:
crates/nettypes/src/interval.rs:
crates/nettypes/src/name.rs:
crates/nettypes/src/ports.rs:
crates/nettypes/src/prefix.rs:
crates/nettypes/src/rng.rs:
crates/nettypes/src/time.rs:
crates/nettypes/src/trie.rs:
