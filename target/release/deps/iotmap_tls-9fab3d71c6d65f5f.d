/root/repo/target/release/deps/iotmap_tls-9fab3d71c6d65f5f.d: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/release/deps/libiotmap_tls-9fab3d71c6d65f5f.rlib: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/release/deps/libiotmap_tls-9fab3d71c6d65f5f.rmeta: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

crates/tls/src/lib.rs:
crates/tls/src/cert.rs:
crates/tls/src/endpoint.rs:
crates/tls/src/handshake.rs:
