/root/repo/target/release/deps/traffic_shapes-35170a07e42df2c6.d: tests/traffic_shapes.rs

/root/repo/target/release/deps/traffic_shapes-35170a07e42df2c6: tests/traffic_shapes.rs

tests/traffic_shapes.rs:
