/root/repo/target/release/deps/iotmap_netflow-874b22d8999046e5.d: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

/root/repo/target/release/deps/libiotmap_netflow-874b22d8999046e5.rlib: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

/root/repo/target/release/deps/libiotmap_netflow-874b22d8999046e5.rmeta: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

crates/netflow/src/lib.rs:
crates/netflow/src/anonymize.rs:
crates/netflow/src/record.rs:
crates/netflow/src/router.rs:
crates/netflow/src/sampler.rs:
crates/netflow/src/sink.rs:
