/root/repo/target/release/deps/iotmap_dns-e7bfe9c55c50335f.d: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/release/deps/iotmap_dns-e7bfe9c55c50335f: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

crates/dns/src/lib.rs:
crates/dns/src/active.rs:
crates/dns/src/passive.rs:
crates/dns/src/rdns.rs:
crates/dns/src/record.rs:
crates/dns/src/resolver.rs:
crates/dns/src/zone.rs:
