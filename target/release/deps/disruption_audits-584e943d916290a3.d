/root/repo/target/release/deps/disruption_audits-584e943d916290a3.d: tests/disruption_audits.rs

/root/repo/target/release/deps/disruption_audits-584e943d916290a3: tests/disruption_audits.rs

tests/disruption_audits.rs:
