/root/repo/target/release/deps/iotmap_tls-bf5fc242844441c7.d: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/release/deps/libiotmap_tls-bf5fc242844441c7.rlib: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/release/deps/libiotmap_tls-bf5fc242844441c7.rmeta: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

crates/tls/src/lib.rs:
crates/tls/src/cert.rs:
crates/tls/src/endpoint.rs:
crates/tls/src/handshake.rs:
