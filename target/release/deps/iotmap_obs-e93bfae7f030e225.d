/root/repo/target/release/deps/iotmap_obs-e93bfae7f030e225.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libiotmap_obs-e93bfae7f030e225.rlib: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libiotmap_obs-e93bfae7f030e225.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
