/root/repo/target/release/deps/iotmap-c24e79c56c293c78.d: src/lib.rs

/root/repo/target/release/deps/libiotmap-c24e79c56c293c78.rlib: src/lib.rs

/root/repo/target/release/deps/libiotmap-c24e79c56c293c78.rmeta: src/lib.rs

src/lib.rs:
