/root/repo/target/release/deps/iotmap_scan-1c2219eb1f971207.d: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/release/deps/libiotmap_scan-1c2219eb1f971207.rlib: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/release/deps/libiotmap_scan-1c2219eb1f971207.rmeta: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

crates/scan/src/lib.rs:
crates/scan/src/censys.rs:
crates/scan/src/ethics.rs:
crates/scan/src/hitlist.rs:
crates/scan/src/lookingglass.rs:
crates/scan/src/target.rs:
crates/scan/src/zgrab.rs:
