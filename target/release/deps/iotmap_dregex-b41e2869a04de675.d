/root/repo/target/release/deps/iotmap_dregex-b41e2869a04de675.d: crates/dregex/src/lib.rs crates/dregex/src/ast.rs crates/dregex/src/backtrack.rs crates/dregex/src/classes.rs crates/dregex/src/compile.rs crates/dregex/src/parser.rs crates/dregex/src/prog.rs crates/dregex/src/query.rs crates/dregex/src/vm.rs

/root/repo/target/release/deps/iotmap_dregex-b41e2869a04de675: crates/dregex/src/lib.rs crates/dregex/src/ast.rs crates/dregex/src/backtrack.rs crates/dregex/src/classes.rs crates/dregex/src/compile.rs crates/dregex/src/parser.rs crates/dregex/src/prog.rs crates/dregex/src/query.rs crates/dregex/src/vm.rs

crates/dregex/src/lib.rs:
crates/dregex/src/ast.rs:
crates/dregex/src/backtrack.rs:
crates/dregex/src/classes.rs:
crates/dregex/src/compile.rs:
crates/dregex/src/parser.rs:
crates/dregex/src/prog.rs:
crates/dregex/src/query.rs:
crates/dregex/src/vm.rs:
