/root/repo/target/release/deps/iotmap-bb59de0c1f925372.d: src/lib.rs

/root/repo/target/release/deps/iotmap-bb59de0c1f925372: src/lib.rs

src/lib.rs:
