/root/repo/target/release/deps/iotmap-b625623002c8ee89.d: src/lib.rs

/root/repo/target/release/deps/libiotmap-b625623002c8ee89.rlib: src/lib.rs

/root/repo/target/release/deps/libiotmap-b625623002c8ee89.rmeta: src/lib.rs

src/lib.rs:
