/root/repo/target/release/deps/obs_overhead-b66a7279ff08a83f.d: crates/bench/tests/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-b66a7279ff08a83f: crates/bench/tests/obs_overhead.rs

crates/bench/tests/obs_overhead.rs:
