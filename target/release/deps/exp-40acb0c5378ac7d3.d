/root/repo/target/release/deps/exp-40acb0c5378ac7d3.d: crates/bench/src/bin/exp.rs

/root/repo/target/release/deps/exp-40acb0c5378ac7d3: crates/bench/src/bin/exp.rs

crates/bench/src/bin/exp.rs:
