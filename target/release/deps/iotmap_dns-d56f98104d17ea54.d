/root/repo/target/release/deps/iotmap_dns-d56f98104d17ea54.d: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/release/deps/libiotmap_dns-d56f98104d17ea54.rlib: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/release/deps/libiotmap_dns-d56f98104d17ea54.rmeta: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

crates/dns/src/lib.rs:
crates/dns/src/active.rs:
crates/dns/src/passive.rs:
crates/dns/src/rdns.rs:
crates/dns/src/record.rs:
crates/dns/src/resolver.rs:
crates/dns/src/zone.rs:
