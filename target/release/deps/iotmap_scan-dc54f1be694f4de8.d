/root/repo/target/release/deps/iotmap_scan-dc54f1be694f4de8.d: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/release/deps/libiotmap_scan-dc54f1be694f4de8.rlib: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/release/deps/libiotmap_scan-dc54f1be694f4de8.rmeta: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

crates/scan/src/lib.rs:
crates/scan/src/censys.rs:
crates/scan/src/ethics.rs:
crates/scan/src/hitlist.rs:
crates/scan/src/lookingglass.rs:
crates/scan/src/target.rs:
crates/scan/src/zgrab.rs:
