/root/repo/target/release/deps/exp-7c77e364f900eac4.d: crates/bench/src/bin/exp.rs

/root/repo/target/release/deps/exp-7c77e364f900eac4: crates/bench/src/bin/exp.rs

crates/bench/src/bin/exp.rs:
