/root/repo/target/release/deps/outage_replay-6b2f0e8d37942b14.d: tests/outage_replay.rs

/root/repo/target/release/deps/outage_replay-6b2f0e8d37942b14: tests/outage_replay.rs

tests/outage_replay.rs:
