/root/repo/target/release/deps/iotmap_tls-44ce87084a9ae113.d: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/release/deps/iotmap_tls-44ce87084a9ae113: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

crates/tls/src/lib.rs:
crates/tls/src/cert.rs:
crates/tls/src/endpoint.rs:
crates/tls/src/handshake.rs:
