/root/repo/target/release/deps/iotmap_traffic-6b5c49f363e3a7c3.d: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/release/deps/libiotmap_traffic-6b5c49f363e3a7c3.rlib: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/release/deps/libiotmap_traffic-6b5c49f363e3a7c3.rmeta: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

crates/traffic/src/lib.rs:
crates/traffic/src/analysis.rs:
crates/traffic/src/anonymize.rs:
crates/traffic/src/index.rs:
crates/traffic/src/scanners.rs:
crates/traffic/src/visibility.rs:
crates/traffic/src/whatif.rs:
