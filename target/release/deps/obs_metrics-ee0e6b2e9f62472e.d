/root/repo/target/release/deps/obs_metrics-ee0e6b2e9f62472e.d: crates/bench/tests/obs_metrics.rs crates/bench/tests/golden/metrics_keys.txt

/root/repo/target/release/deps/obs_metrics-ee0e6b2e9f62472e: crates/bench/tests/obs_metrics.rs crates/bench/tests/golden/metrics_keys.txt

crates/bench/tests/obs_metrics.rs:
crates/bench/tests/golden/metrics_keys.txt:

# env-dep:CARGO_BIN_EXE_exp=/root/repo/target/release/exp
