/root/repo/target/release/deps/iotmap-c17b4c3cb58f3379.d: src/lib.rs

/root/repo/target/release/deps/libiotmap-c17b4c3cb58f3379.rlib: src/lib.rs

/root/repo/target/release/deps/libiotmap-c17b4c3cb58f3379.rmeta: src/lib.rs

src/lib.rs:
