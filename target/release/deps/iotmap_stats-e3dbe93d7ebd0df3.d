/root/repo/target/release/deps/iotmap_stats-e3dbe93d7ebd0df3.d: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libiotmap_stats-e3dbe93d7ebd0df3.rlib: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libiotmap_stats-e3dbe93d7ebd0df3.rmeta: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/hist.rs:
crates/stats/src/series.rs:
crates/stats/src/summary.rs:
