/root/repo/target/release/deps/exp-2d52fb9aabeaaed7.d: crates/bench/src/bin/exp.rs

/root/repo/target/release/deps/exp-2d52fb9aabeaaed7: crates/bench/src/bin/exp.rs

crates/bench/src/bin/exp.rs:
