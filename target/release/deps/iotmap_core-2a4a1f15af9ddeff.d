/root/repo/target/release/deps/iotmap_core-2a4a1f15af9ddeff.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/discovery.rs crates/core/src/disruptions.rs crates/core/src/footprint.rs crates/core/src/monitor.rs crates/core/src/patterns.rs crates/core/src/ports.rs crates/core/src/report.rs crates/core/src/sources.rs crates/core/src/stability.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libiotmap_core-2a4a1f15af9ddeff.rlib: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/discovery.rs crates/core/src/disruptions.rs crates/core/src/footprint.rs crates/core/src/monitor.rs crates/core/src/patterns.rs crates/core/src/ports.rs crates/core/src/report.rs crates/core/src/sources.rs crates/core/src/stability.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libiotmap_core-2a4a1f15af9ddeff.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/discovery.rs crates/core/src/disruptions.rs crates/core/src/footprint.rs crates/core/src/monitor.rs crates/core/src/patterns.rs crates/core/src/ports.rs crates/core/src/report.rs crates/core/src/sources.rs crates/core/src/stability.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/discovery.rs:
crates/core/src/disruptions.rs:
crates/core/src/footprint.rs:
crates/core/src/monitor.rs:
crates/core/src/patterns.rs:
crates/core/src/ports.rs:
crates/core/src/report.rs:
crates/core/src/sources.rs:
crates/core/src/stability.rs:
crates/core/src/validate.rs:
