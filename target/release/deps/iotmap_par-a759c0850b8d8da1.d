/root/repo/target/release/deps/iotmap_par-a759c0850b8d8da1.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libiotmap_par-a759c0850b8d8da1.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libiotmap_par-a759c0850b8d8da1.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
