/root/repo/target/release/deps/iotmap_par-ce7a614383024ee6.d: crates/par/src/lib.rs

/root/repo/target/release/deps/iotmap_par-ce7a614383024ee6: crates/par/src/lib.rs

crates/par/src/lib.rs:
