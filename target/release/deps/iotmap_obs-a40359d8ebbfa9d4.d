/root/repo/target/release/deps/iotmap_obs-a40359d8ebbfa9d4.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/iotmap_obs-a40359d8ebbfa9d4: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
