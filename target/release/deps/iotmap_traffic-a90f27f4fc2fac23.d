/root/repo/target/release/deps/iotmap_traffic-a90f27f4fc2fac23.d: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/release/deps/libiotmap_traffic-a90f27f4fc2fac23.rlib: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/release/deps/libiotmap_traffic-a90f27f4fc2fac23.rmeta: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

crates/traffic/src/lib.rs:
crates/traffic/src/analysis.rs:
crates/traffic/src/anonymize.rs:
crates/traffic/src/index.rs:
crates/traffic/src/scanners.rs:
crates/traffic/src/visibility.rs:
crates/traffic/src/whatif.rs:
