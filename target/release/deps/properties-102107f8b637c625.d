/root/repo/target/release/deps/properties-102107f8b637c625.d: tests/properties.rs

/root/repo/target/release/deps/properties-102107f8b637c625: tests/properties.rs

tests/properties.rs:
