/root/repo/target/release/deps/iotmap_world-cea223682e84374e.d: crates/world/src/lib.rs crates/world/src/build.rs crates/world/src/clouds.rs crates/world/src/collect.rs crates/world/src/config.rs crates/world/src/events.rs crates/world/src/geodb.rs crates/world/src/isp.rs crates/world/src/providers.rs crates/world/src/server.rs crates/world/src/traffic.rs crates/world/src/view.rs

/root/repo/target/release/deps/libiotmap_world-cea223682e84374e.rlib: crates/world/src/lib.rs crates/world/src/build.rs crates/world/src/clouds.rs crates/world/src/collect.rs crates/world/src/config.rs crates/world/src/events.rs crates/world/src/geodb.rs crates/world/src/isp.rs crates/world/src/providers.rs crates/world/src/server.rs crates/world/src/traffic.rs crates/world/src/view.rs

/root/repo/target/release/deps/libiotmap_world-cea223682e84374e.rmeta: crates/world/src/lib.rs crates/world/src/build.rs crates/world/src/clouds.rs crates/world/src/collect.rs crates/world/src/config.rs crates/world/src/events.rs crates/world/src/geodb.rs crates/world/src/isp.rs crates/world/src/providers.rs crates/world/src/server.rs crates/world/src/traffic.rs crates/world/src/view.rs

crates/world/src/lib.rs:
crates/world/src/build.rs:
crates/world/src/clouds.rs:
crates/world/src/collect.rs:
crates/world/src/config.rs:
crates/world/src/events.rs:
crates/world/src/geodb.rs:
crates/world/src/isp.rs:
crates/world/src/providers.rs:
crates/world/src/server.rs:
crates/world/src/traffic.rs:
crates/world/src/view.rs:
