/root/repo/target/release/deps/iotmap_bench-d7921efbd140a853.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libiotmap_bench-d7921efbd140a853.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libiotmap_bench-d7921efbd140a853.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
