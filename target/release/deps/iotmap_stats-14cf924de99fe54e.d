/root/repo/target/release/deps/iotmap_stats-14cf924de99fe54e.d: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/iotmap_stats-14cf924de99fe54e: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/hist.rs:
crates/stats/src/series.rs:
crates/stats/src/summary.rs:
