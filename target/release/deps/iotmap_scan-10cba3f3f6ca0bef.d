/root/repo/target/release/deps/iotmap_scan-10cba3f3f6ca0bef.d: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/release/deps/libiotmap_scan-10cba3f3f6ca0bef.rlib: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/release/deps/libiotmap_scan-10cba3f3f6ca0bef.rmeta: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

crates/scan/src/lib.rs:
crates/scan/src/censys.rs:
crates/scan/src/ethics.rs:
crates/scan/src/hitlist.rs:
crates/scan/src/lookingglass.rs:
crates/scan/src/target.rs:
crates/scan/src/zgrab.rs:
