/root/repo/target/release/deps/iotmap_traffic-db2c565610e28ec2.d: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/release/deps/iotmap_traffic-db2c565610e28ec2: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

crates/traffic/src/lib.rs:
crates/traffic/src/analysis.rs:
crates/traffic/src/anonymize.rs:
crates/traffic/src/index.rs:
crates/traffic/src/scanners.rs:
crates/traffic/src/visibility.rs:
crates/traffic/src/whatif.rs:
