/root/repo/target/release/deps/iotmap_bench-60a43be4d648cf17.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libiotmap_bench-60a43be4d648cf17.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libiotmap_bench-60a43be4d648cf17.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
