/root/repo/target/release/deps/iotmap_dns-bec4a98ac27eea90.d: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/release/deps/libiotmap_dns-bec4a98ac27eea90.rlib: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/release/deps/libiotmap_dns-bec4a98ac27eea90.rmeta: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

crates/dns/src/lib.rs:
crates/dns/src/active.rs:
crates/dns/src/passive.rs:
crates/dns/src/rdns.rs:
crates/dns/src/record.rs:
crates/dns/src/resolver.rs:
crates/dns/src/zone.rs:
