/root/repo/target/release/deps/iotmap_netflow-6c8a03caf024351f.d: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

/root/repo/target/release/deps/iotmap_netflow-6c8a03caf024351f: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

crates/netflow/src/lib.rs:
crates/netflow/src/anonymize.rs:
crates/netflow/src/record.rs:
crates/netflow/src/router.rs:
crates/netflow/src/sampler.rs:
crates/netflow/src/sink.rs:
