/root/repo/target/release/deps/iotmap_netflow-903f0d4be9d871f4.d: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

/root/repo/target/release/deps/libiotmap_netflow-903f0d4be9d871f4.rlib: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

/root/repo/target/release/deps/libiotmap_netflow-903f0d4be9d871f4.rmeta: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

crates/netflow/src/lib.rs:
crates/netflow/src/anonymize.rs:
crates/netflow/src/record.rs:
crates/netflow/src/router.rs:
crates/netflow/src/sampler.rs:
crates/netflow/src/sink.rs:
