/root/repo/target/release/deps/pipeline_end_to_end-9db7f40c041dae63.d: tests/pipeline_end_to_end.rs

/root/repo/target/release/deps/pipeline_end_to_end-9db7f40c041dae63: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
