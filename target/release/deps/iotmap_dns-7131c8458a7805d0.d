/root/repo/target/release/deps/iotmap_dns-7131c8458a7805d0.d: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/release/deps/libiotmap_dns-7131c8458a7805d0.rlib: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/release/deps/libiotmap_dns-7131c8458a7805d0.rmeta: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

crates/dns/src/lib.rs:
crates/dns/src/active.rs:
crates/dns/src/passive.rs:
crates/dns/src/rdns.rs:
crates/dns/src/record.rs:
crates/dns/src/resolver.rs:
crates/dns/src/zone.rs:
