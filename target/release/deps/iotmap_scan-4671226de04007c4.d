/root/repo/target/release/deps/iotmap_scan-4671226de04007c4.d: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/release/deps/iotmap_scan-4671226de04007c4: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

crates/scan/src/lib.rs:
crates/scan/src/censys.rs:
crates/scan/src/ethics.rs:
crates/scan/src/hitlist.rs:
crates/scan/src/lookingglass.rs:
crates/scan/src/target.rs:
crates/scan/src/zgrab.rs:
