/root/repo/target/release/examples/quickstart-f91d52a8b1aa6d33.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f91d52a8b1aa6d33: examples/quickstart.rs

examples/quickstart.rs:
