/root/repo/target/release/examples/isp_traffic-c417cf1556a812f1.d: examples/isp_traffic.rs

/root/repo/target/release/examples/isp_traffic-c417cf1556a812f1: examples/isp_traffic.rs

examples/isp_traffic.rs:
