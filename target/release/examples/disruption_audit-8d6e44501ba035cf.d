/root/repo/target/release/examples/disruption_audit-8d6e44501ba035cf.d: examples/disruption_audit.rs

/root/repo/target/release/examples/disruption_audit-8d6e44501ba035cf: examples/disruption_audit.rs

examples/disruption_audit.rs:
