/root/repo/target/release/examples/outage_replay-2748fe06c3895fbb.d: examples/outage_replay.rs

/root/repo/target/release/examples/outage_replay-2748fe06c3895fbb: examples/outage_replay.rs

examples/outage_replay.rs:
