/root/repo/target/release/examples/footprint_map-d9c4b3b03ea1f14e.d: examples/footprint_map.rs

/root/repo/target/release/examples/footprint_map-d9c4b3b03ea1f14e: examples/footprint_map.rs

examples/footprint_map.rs:
