/root/repo/target/debug/libiotmap_obs.rlib: /root/repo/crates/obs/src/lib.rs /root/repo/crates/obs/src/metrics.rs /root/repo/crates/obs/src/report.rs /root/repo/crates/obs/src/span.rs
