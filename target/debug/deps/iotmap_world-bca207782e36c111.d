/root/repo/target/debug/deps/iotmap_world-bca207782e36c111.d: crates/world/src/lib.rs crates/world/src/build.rs crates/world/src/clouds.rs crates/world/src/collect.rs crates/world/src/config.rs crates/world/src/events.rs crates/world/src/geodb.rs crates/world/src/isp.rs crates/world/src/providers.rs crates/world/src/server.rs crates/world/src/traffic.rs crates/world/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_world-bca207782e36c111.rmeta: crates/world/src/lib.rs crates/world/src/build.rs crates/world/src/clouds.rs crates/world/src/collect.rs crates/world/src/config.rs crates/world/src/events.rs crates/world/src/geodb.rs crates/world/src/isp.rs crates/world/src/providers.rs crates/world/src/server.rs crates/world/src/traffic.rs crates/world/src/view.rs Cargo.toml

crates/world/src/lib.rs:
crates/world/src/build.rs:
crates/world/src/clouds.rs:
crates/world/src/collect.rs:
crates/world/src/config.rs:
crates/world/src/events.rs:
crates/world/src/geodb.rs:
crates/world/src/isp.rs:
crates/world/src/providers.rs:
crates/world/src/server.rs:
crates/world/src/traffic.rs:
crates/world/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
