/root/repo/target/debug/deps/iotmap_bench-ba93340f558866b9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/iotmap_bench-ba93340f558866b9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
