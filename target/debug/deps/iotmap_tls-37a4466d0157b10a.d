/root/repo/target/debug/deps/iotmap_tls-37a4466d0157b10a.d: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_tls-37a4466d0157b10a.rmeta: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs Cargo.toml

crates/tls/src/lib.rs:
crates/tls/src/cert.rs:
crates/tls/src/endpoint.rs:
crates/tls/src/handshake.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
