/root/repo/target/debug/deps/iotmap_tls-9fd62b501352fe36.d: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/debug/deps/libiotmap_tls-9fd62b501352fe36.rlib: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/debug/deps/libiotmap_tls-9fd62b501352fe36.rmeta: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

crates/tls/src/lib.rs:
crates/tls/src/cert.rs:
crates/tls/src/endpoint.rs:
crates/tls/src/handshake.rs:
