/root/repo/target/debug/deps/iotmap_dns-e4e1345d323f85e9.d: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/debug/deps/libiotmap_dns-e4e1345d323f85e9.rlib: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/debug/deps/libiotmap_dns-e4e1345d323f85e9.rmeta: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

crates/dns/src/lib.rs:
crates/dns/src/active.rs:
crates/dns/src/passive.rs:
crates/dns/src/rdns.rs:
crates/dns/src/record.rs:
crates/dns/src/resolver.rs:
crates/dns/src/zone.rs:
