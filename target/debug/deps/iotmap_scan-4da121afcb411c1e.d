/root/repo/target/debug/deps/iotmap_scan-4da121afcb411c1e.d: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/debug/deps/iotmap_scan-4da121afcb411c1e: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

crates/scan/src/lib.rs:
crates/scan/src/censys.rs:
crates/scan/src/ethics.rs:
crates/scan/src/hitlist.rs:
crates/scan/src/lookingglass.rs:
crates/scan/src/target.rs:
crates/scan/src/zgrab.rs:
