/root/repo/target/debug/deps/iotmap_stats-5cf8c8cf08908069.d: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_stats-5cf8c8cf08908069.rmeta: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/hist.rs:
crates/stats/src/series.rs:
crates/stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
