/root/repo/target/debug/deps/iotmap-347ba32c61a436e4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap-347ba32c61a436e4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
