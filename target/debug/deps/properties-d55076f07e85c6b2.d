/root/repo/target/debug/deps/properties-d55076f07e85c6b2.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d55076f07e85c6b2: tests/properties.rs

tests/properties.rs:
