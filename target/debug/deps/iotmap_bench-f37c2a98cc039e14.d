/root/repo/target/debug/deps/iotmap_bench-f37c2a98cc039e14.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libiotmap_bench-f37c2a98cc039e14.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libiotmap_bench-f37c2a98cc039e14.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
