/root/repo/target/debug/deps/obs_metrics-33c98608569d5dee.d: crates/bench/tests/obs_metrics.rs crates/bench/tests/golden/metrics_keys.txt

/root/repo/target/debug/deps/obs_metrics-33c98608569d5dee: crates/bench/tests/obs_metrics.rs crates/bench/tests/golden/metrics_keys.txt

crates/bench/tests/obs_metrics.rs:
crates/bench/tests/golden/metrics_keys.txt:

# env-dep:CARGO_BIN_EXE_exp=/root/repo/target/debug/exp
