/root/repo/target/debug/deps/iotmap_dns-0985e67cd0c7daa7.d: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/debug/deps/libiotmap_dns-0985e67cd0c7daa7.rlib: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/debug/deps/libiotmap_dns-0985e67cd0c7daa7.rmeta: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

crates/dns/src/lib.rs:
crates/dns/src/active.rs:
crates/dns/src/passive.rs:
crates/dns/src/rdns.rs:
crates/dns/src/record.rs:
crates/dns/src/resolver.rs:
crates/dns/src/zone.rs:
