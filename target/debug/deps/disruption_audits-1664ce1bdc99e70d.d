/root/repo/target/debug/deps/disruption_audits-1664ce1bdc99e70d.d: tests/disruption_audits.rs Cargo.toml

/root/repo/target/debug/deps/libdisruption_audits-1664ce1bdc99e70d.rmeta: tests/disruption_audits.rs Cargo.toml

tests/disruption_audits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
