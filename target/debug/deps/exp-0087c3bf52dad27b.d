/root/repo/target/debug/deps/exp-0087c3bf52dad27b.d: crates/bench/src/bin/exp.rs Cargo.toml

/root/repo/target/debug/deps/libexp-0087c3bf52dad27b.rmeta: crates/bench/src/bin/exp.rs Cargo.toml

crates/bench/src/bin/exp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
