/root/repo/target/debug/deps/outage_replay-f5ce87c9b4632afa.d: tests/outage_replay.rs

/root/repo/target/debug/deps/outage_replay-f5ce87c9b4632afa: tests/outage_replay.rs

tests/outage_replay.rs:
