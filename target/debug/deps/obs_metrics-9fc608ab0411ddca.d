/root/repo/target/debug/deps/obs_metrics-9fc608ab0411ddca.d: crates/bench/tests/obs_metrics.rs crates/bench/tests/golden/metrics_keys.txt Cargo.toml

/root/repo/target/debug/deps/libobs_metrics-9fc608ab0411ddca.rmeta: crates/bench/tests/obs_metrics.rs crates/bench/tests/golden/metrics_keys.txt Cargo.toml

crates/bench/tests/obs_metrics.rs:
crates/bench/tests/golden/metrics_keys.txt:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_exp=placeholder:exp
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
