/root/repo/target/debug/deps/iotmap_par-e2f36bae76f579f0.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libiotmap_par-e2f36bae76f579f0.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/libiotmap_par-e2f36bae76f579f0.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
