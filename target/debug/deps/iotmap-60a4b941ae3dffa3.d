/root/repo/target/debug/deps/iotmap-60a4b941ae3dffa3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap-60a4b941ae3dffa3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
