/root/repo/target/debug/deps/iotmap_stats-5a21df867994742c.d: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libiotmap_stats-5a21df867994742c.rlib: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libiotmap_stats-5a21df867994742c.rmeta: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/hist.rs:
crates/stats/src/series.rs:
crates/stats/src/summary.rs:
