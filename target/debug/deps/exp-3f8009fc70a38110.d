/root/repo/target/debug/deps/exp-3f8009fc70a38110.d: crates/bench/src/bin/exp.rs Cargo.toml

/root/repo/target/debug/deps/libexp-3f8009fc70a38110.rmeta: crates/bench/src/bin/exp.rs Cargo.toml

crates/bench/src/bin/exp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
