/root/repo/target/debug/deps/iotmap-81238cb3e0621e88.d: src/lib.rs

/root/repo/target/debug/deps/libiotmap-81238cb3e0621e88.rlib: src/lib.rs

/root/repo/target/debug/deps/libiotmap-81238cb3e0621e88.rmeta: src/lib.rs

src/lib.rs:
