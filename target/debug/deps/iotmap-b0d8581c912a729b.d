/root/repo/target/debug/deps/iotmap-b0d8581c912a729b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap-b0d8581c912a729b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
