/root/repo/target/debug/deps/obs_metrics-4ecfc1ffc5191b58.d: crates/bench/tests/obs_metrics.rs crates/bench/tests/golden/metrics_keys.txt Cargo.toml

/root/repo/target/debug/deps/libobs_metrics-4ecfc1ffc5191b58.rmeta: crates/bench/tests/obs_metrics.rs crates/bench/tests/golden/metrics_keys.txt Cargo.toml

crates/bench/tests/obs_metrics.rs:
crates/bench/tests/golden/metrics_keys.txt:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_exp=placeholder:exp
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
