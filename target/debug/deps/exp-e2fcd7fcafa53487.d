/root/repo/target/debug/deps/exp-e2fcd7fcafa53487.d: crates/bench/src/bin/exp.rs Cargo.toml

/root/repo/target/debug/deps/libexp-e2fcd7fcafa53487.rmeta: crates/bench/src/bin/exp.rs Cargo.toml

crates/bench/src/bin/exp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
