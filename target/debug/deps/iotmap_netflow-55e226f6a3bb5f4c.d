/root/repo/target/debug/deps/iotmap_netflow-55e226f6a3bb5f4c.d: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_netflow-55e226f6a3bb5f4c.rmeta: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs Cargo.toml

crates/netflow/src/lib.rs:
crates/netflow/src/anonymize.rs:
crates/netflow/src/record.rs:
crates/netflow/src/router.rs:
crates/netflow/src/sampler.rs:
crates/netflow/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
