/root/repo/target/debug/deps/iotmap_tls-2017ac2a692c9631.d: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/debug/deps/iotmap_tls-2017ac2a692c9631: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

crates/tls/src/lib.rs:
crates/tls/src/cert.rs:
crates/tls/src/endpoint.rs:
crates/tls/src/handshake.rs:
