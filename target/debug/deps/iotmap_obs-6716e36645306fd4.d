/root/repo/target/debug/deps/iotmap_obs-6716e36645306fd4.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libiotmap_obs-6716e36645306fd4.rlib: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libiotmap_obs-6716e36645306fd4.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
