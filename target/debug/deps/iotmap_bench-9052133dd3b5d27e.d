/root/repo/target/debug/deps/iotmap_bench-9052133dd3b5d27e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libiotmap_bench-9052133dd3b5d27e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libiotmap_bench-9052133dd3b5d27e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
