/root/repo/target/debug/deps/iotmap_traffic-fc52ec6dd0ca96d8.d: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/debug/deps/iotmap_traffic-fc52ec6dd0ca96d8: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

crates/traffic/src/lib.rs:
crates/traffic/src/analysis.rs:
crates/traffic/src/anonymize.rs:
crates/traffic/src/index.rs:
crates/traffic/src/scanners.rs:
crates/traffic/src/visibility.rs:
crates/traffic/src/whatif.rs:
