/root/repo/target/debug/deps/iotmap-a332348b3b9b472b.d: src/lib.rs

/root/repo/target/debug/deps/libiotmap-a332348b3b9b472b.rlib: src/lib.rs

/root/repo/target/debug/deps/libiotmap-a332348b3b9b472b.rmeta: src/lib.rs

src/lib.rs:
