/root/repo/target/debug/deps/traffic_shapes-dfe02f0cc859a183.d: tests/traffic_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libtraffic_shapes-dfe02f0cc859a183.rmeta: tests/traffic_shapes.rs Cargo.toml

tests/traffic_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
