/root/repo/target/debug/deps/iotmap_tls-11d8de853a65b8f4.d: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/debug/deps/libiotmap_tls-11d8de853a65b8f4.rlib: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

/root/repo/target/debug/deps/libiotmap_tls-11d8de853a65b8f4.rmeta: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs

crates/tls/src/lib.rs:
crates/tls/src/cert.rs:
crates/tls/src/endpoint.rs:
crates/tls/src/handshake.rs:
