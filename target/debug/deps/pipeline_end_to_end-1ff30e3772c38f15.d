/root/repo/target/debug/deps/pipeline_end_to_end-1ff30e3772c38f15.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-1ff30e3772c38f15: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
