/root/repo/target/debug/deps/iotmap-39f735270007b27f.d: src/lib.rs

/root/repo/target/debug/deps/libiotmap-39f735270007b27f.rlib: src/lib.rs

/root/repo/target/debug/deps/libiotmap-39f735270007b27f.rmeta: src/lib.rs

src/lib.rs:
