/root/repo/target/debug/deps/pipeline_end_to_end-e898a33ced8ab36a.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-e898a33ced8ab36a: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
