/root/repo/target/debug/deps/traffic_shapes-b51103d8159d3d4b.d: tests/traffic_shapes.rs

/root/repo/target/debug/deps/traffic_shapes-b51103d8159d3d4b: tests/traffic_shapes.rs

tests/traffic_shapes.rs:
