/root/repo/target/debug/deps/outage_replay-d0b12ef142ea502e.d: tests/outage_replay.rs Cargo.toml

/root/repo/target/debug/deps/liboutage_replay-d0b12ef142ea502e.rmeta: tests/outage_replay.rs Cargo.toml

tests/outage_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
