/root/repo/target/debug/deps/exp-eccd1fdb5e1f7cb1.d: crates/bench/src/bin/exp.rs

/root/repo/target/debug/deps/exp-eccd1fdb5e1f7cb1: crates/bench/src/bin/exp.rs

crates/bench/src/bin/exp.rs:
