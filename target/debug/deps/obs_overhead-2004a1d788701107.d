/root/repo/target/debug/deps/obs_overhead-2004a1d788701107.d: crates/bench/tests/obs_overhead.rs

/root/repo/target/debug/deps/obs_overhead-2004a1d788701107: crates/bench/tests/obs_overhead.rs

crates/bench/tests/obs_overhead.rs:
