/root/repo/target/debug/deps/iotmap_core-8348a9b7922183c3.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/discovery.rs crates/core/src/disruptions.rs crates/core/src/footprint.rs crates/core/src/monitor.rs crates/core/src/patterns.rs crates/core/src/ports.rs crates/core/src/report.rs crates/core/src/sources.rs crates/core/src/stability.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/iotmap_core-8348a9b7922183c3: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/discovery.rs crates/core/src/disruptions.rs crates/core/src/footprint.rs crates/core/src/monitor.rs crates/core/src/patterns.rs crates/core/src/ports.rs crates/core/src/report.rs crates/core/src/sources.rs crates/core/src/stability.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/discovery.rs:
crates/core/src/disruptions.rs:
crates/core/src/footprint.rs:
crates/core/src/monitor.rs:
crates/core/src/patterns.rs:
crates/core/src/ports.rs:
crates/core/src/report.rs:
crates/core/src/sources.rs:
crates/core/src/stability.rs:
crates/core/src/validate.rs:
