/root/repo/target/debug/deps/iotmap_netflow-ad44814ec323fee1.d: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

/root/repo/target/debug/deps/libiotmap_netflow-ad44814ec323fee1.rlib: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

/root/repo/target/debug/deps/libiotmap_netflow-ad44814ec323fee1.rmeta: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

crates/netflow/src/lib.rs:
crates/netflow/src/anonymize.rs:
crates/netflow/src/record.rs:
crates/netflow/src/router.rs:
crates/netflow/src/sampler.rs:
crates/netflow/src/sink.rs:
