/root/repo/target/debug/deps/iotmap_obs-254255a94eeab982.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/iotmap_obs-254255a94eeab982: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
