/root/repo/target/debug/deps/iotmap_core-0eda4f52a8f75816.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/discovery.rs crates/core/src/disruptions.rs crates/core/src/footprint.rs crates/core/src/monitor.rs crates/core/src/patterns.rs crates/core/src/ports.rs crates/core/src/report.rs crates/core/src/sources.rs crates/core/src/stability.rs crates/core/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_core-0eda4f52a8f75816.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/discovery.rs crates/core/src/disruptions.rs crates/core/src/footprint.rs crates/core/src/monitor.rs crates/core/src/patterns.rs crates/core/src/ports.rs crates/core/src/report.rs crates/core/src/sources.rs crates/core/src/stability.rs crates/core/src/validate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/discovery.rs:
crates/core/src/disruptions.rs:
crates/core/src/footprint.rs:
crates/core/src/monitor.rs:
crates/core/src/patterns.rs:
crates/core/src/ports.rs:
crates/core/src/report.rs:
crates/core/src/sources.rs:
crates/core/src/stability.rs:
crates/core/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
