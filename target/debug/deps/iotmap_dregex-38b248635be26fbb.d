/root/repo/target/debug/deps/iotmap_dregex-38b248635be26fbb.d: crates/dregex/src/lib.rs crates/dregex/src/ast.rs crates/dregex/src/backtrack.rs crates/dregex/src/classes.rs crates/dregex/src/compile.rs crates/dregex/src/parser.rs crates/dregex/src/prog.rs crates/dregex/src/query.rs crates/dregex/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_dregex-38b248635be26fbb.rmeta: crates/dregex/src/lib.rs crates/dregex/src/ast.rs crates/dregex/src/backtrack.rs crates/dregex/src/classes.rs crates/dregex/src/compile.rs crates/dregex/src/parser.rs crates/dregex/src/prog.rs crates/dregex/src/query.rs crates/dregex/src/vm.rs Cargo.toml

crates/dregex/src/lib.rs:
crates/dregex/src/ast.rs:
crates/dregex/src/backtrack.rs:
crates/dregex/src/classes.rs:
crates/dregex/src/compile.rs:
crates/dregex/src/parser.rs:
crates/dregex/src/prog.rs:
crates/dregex/src/query.rs:
crates/dregex/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
