/root/repo/target/debug/deps/iotmap_obs-7c0a134f6089b9db.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_obs-7c0a134f6089b9db.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
