/root/repo/target/debug/deps/iotmap_world-542a1941613fb74c.d: crates/world/src/lib.rs crates/world/src/build.rs crates/world/src/clouds.rs crates/world/src/collect.rs crates/world/src/config.rs crates/world/src/events.rs crates/world/src/geodb.rs crates/world/src/isp.rs crates/world/src/providers.rs crates/world/src/server.rs crates/world/src/traffic.rs crates/world/src/view.rs

/root/repo/target/debug/deps/libiotmap_world-542a1941613fb74c.rlib: crates/world/src/lib.rs crates/world/src/build.rs crates/world/src/clouds.rs crates/world/src/collect.rs crates/world/src/config.rs crates/world/src/events.rs crates/world/src/geodb.rs crates/world/src/isp.rs crates/world/src/providers.rs crates/world/src/server.rs crates/world/src/traffic.rs crates/world/src/view.rs

/root/repo/target/debug/deps/libiotmap_world-542a1941613fb74c.rmeta: crates/world/src/lib.rs crates/world/src/build.rs crates/world/src/clouds.rs crates/world/src/collect.rs crates/world/src/config.rs crates/world/src/events.rs crates/world/src/geodb.rs crates/world/src/isp.rs crates/world/src/providers.rs crates/world/src/server.rs crates/world/src/traffic.rs crates/world/src/view.rs

crates/world/src/lib.rs:
crates/world/src/build.rs:
crates/world/src/clouds.rs:
crates/world/src/collect.rs:
crates/world/src/config.rs:
crates/world/src/events.rs:
crates/world/src/geodb.rs:
crates/world/src/isp.rs:
crates/world/src/providers.rs:
crates/world/src/server.rs:
crates/world/src/traffic.rs:
crates/world/src/view.rs:
