/root/repo/target/debug/deps/obs_overhead-d5ac0590b567bb6e.d: crates/bench/tests/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-d5ac0590b567bb6e.rmeta: crates/bench/tests/obs_overhead.rs Cargo.toml

crates/bench/tests/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
