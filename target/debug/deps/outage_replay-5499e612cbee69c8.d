/root/repo/target/debug/deps/outage_replay-5499e612cbee69c8.d: tests/outage_replay.rs

/root/repo/target/debug/deps/outage_replay-5499e612cbee69c8: tests/outage_replay.rs

tests/outage_replay.rs:
