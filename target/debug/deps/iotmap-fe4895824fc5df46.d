/root/repo/target/debug/deps/iotmap-fe4895824fc5df46.d: src/lib.rs

/root/repo/target/debug/deps/iotmap-fe4895824fc5df46: src/lib.rs

src/lib.rs:
