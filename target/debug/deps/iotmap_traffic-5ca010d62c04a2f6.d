/root/repo/target/debug/deps/iotmap_traffic-5ca010d62c04a2f6.d: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_traffic-5ca010d62c04a2f6.rmeta: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/analysis.rs:
crates/traffic/src/anonymize.rs:
crates/traffic/src/index.rs:
crates/traffic/src/scanners.rs:
crates/traffic/src/visibility.rs:
crates/traffic/src/whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
