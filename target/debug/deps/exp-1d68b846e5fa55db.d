/root/repo/target/debug/deps/exp-1d68b846e5fa55db.d: crates/bench/src/bin/exp.rs

/root/repo/target/debug/deps/exp-1d68b846e5fa55db: crates/bench/src/bin/exp.rs

crates/bench/src/bin/exp.rs:
