/root/repo/target/debug/deps/outage_replay-89a9df10b4a3fd6a.d: tests/outage_replay.rs Cargo.toml

/root/repo/target/debug/deps/liboutage_replay-89a9df10b4a3fd6a.rmeta: tests/outage_replay.rs Cargo.toml

tests/outage_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
