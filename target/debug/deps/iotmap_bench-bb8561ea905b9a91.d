/root/repo/target/debug/deps/iotmap_bench-bb8561ea905b9a91.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_bench-bb8561ea905b9a91.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
