/root/repo/target/debug/deps/iotmap_dns-80b3689ae69c3e61.d: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_dns-80b3689ae69c3e61.rmeta: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs Cargo.toml

crates/dns/src/lib.rs:
crates/dns/src/active.rs:
crates/dns/src/passive.rs:
crates/dns/src/rdns.rs:
crates/dns/src/record.rs:
crates/dns/src/resolver.rs:
crates/dns/src/zone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
