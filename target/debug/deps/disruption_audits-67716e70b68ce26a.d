/root/repo/target/debug/deps/disruption_audits-67716e70b68ce26a.d: tests/disruption_audits.rs

/root/repo/target/debug/deps/disruption_audits-67716e70b68ce26a: tests/disruption_audits.rs

tests/disruption_audits.rs:
