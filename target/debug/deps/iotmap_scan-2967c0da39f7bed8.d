/root/repo/target/debug/deps/iotmap_scan-2967c0da39f7bed8.d: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/debug/deps/libiotmap_scan-2967c0da39f7bed8.rlib: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/debug/deps/libiotmap_scan-2967c0da39f7bed8.rmeta: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

crates/scan/src/lib.rs:
crates/scan/src/censys.rs:
crates/scan/src/ethics.rs:
crates/scan/src/hitlist.rs:
crates/scan/src/lookingglass.rs:
crates/scan/src/target.rs:
crates/scan/src/zgrab.rs:
