/root/repo/target/debug/deps/iotmap_nettypes-35e2dfd38bdbd440.d: crates/nettypes/src/lib.rs crates/nettypes/src/asn.rs crates/nettypes/src/bgp.rs crates/nettypes/src/dist.rs crates/nettypes/src/error.rs crates/nettypes/src/geo.rs crates/nettypes/src/interval.rs crates/nettypes/src/name.rs crates/nettypes/src/ports.rs crates/nettypes/src/prefix.rs crates/nettypes/src/rng.rs crates/nettypes/src/time.rs crates/nettypes/src/trie.rs

/root/repo/target/debug/deps/iotmap_nettypes-35e2dfd38bdbd440: crates/nettypes/src/lib.rs crates/nettypes/src/asn.rs crates/nettypes/src/bgp.rs crates/nettypes/src/dist.rs crates/nettypes/src/error.rs crates/nettypes/src/geo.rs crates/nettypes/src/interval.rs crates/nettypes/src/name.rs crates/nettypes/src/ports.rs crates/nettypes/src/prefix.rs crates/nettypes/src/rng.rs crates/nettypes/src/time.rs crates/nettypes/src/trie.rs

crates/nettypes/src/lib.rs:
crates/nettypes/src/asn.rs:
crates/nettypes/src/bgp.rs:
crates/nettypes/src/dist.rs:
crates/nettypes/src/error.rs:
crates/nettypes/src/geo.rs:
crates/nettypes/src/interval.rs:
crates/nettypes/src/name.rs:
crates/nettypes/src/ports.rs:
crates/nettypes/src/prefix.rs:
crates/nettypes/src/rng.rs:
crates/nettypes/src/time.rs:
crates/nettypes/src/trie.rs:
