/root/repo/target/debug/deps/obs_overhead-bad91a6880277436.d: crates/bench/tests/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-bad91a6880277436.rmeta: crates/bench/tests/obs_overhead.rs Cargo.toml

crates/bench/tests/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
