/root/repo/target/debug/deps/iotmap_traffic-3fb83404468ca2eb.d: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/debug/deps/libiotmap_traffic-3fb83404468ca2eb.rlib: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/debug/deps/libiotmap_traffic-3fb83404468ca2eb.rmeta: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

crates/traffic/src/lib.rs:
crates/traffic/src/analysis.rs:
crates/traffic/src/anonymize.rs:
crates/traffic/src/index.rs:
crates/traffic/src/scanners.rs:
crates/traffic/src/visibility.rs:
crates/traffic/src/whatif.rs:
