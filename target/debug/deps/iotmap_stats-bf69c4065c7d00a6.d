/root/repo/target/debug/deps/iotmap_stats-bf69c4065c7d00a6.d: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/iotmap_stats-bf69c4065c7d00a6: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/series.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/hist.rs:
crates/stats/src/series.rs:
crates/stats/src/summary.rs:
