/root/repo/target/debug/deps/exp-6d0c1298e94c14ba.d: crates/bench/src/bin/exp.rs Cargo.toml

/root/repo/target/debug/deps/libexp-6d0c1298e94c14ba.rmeta: crates/bench/src/bin/exp.rs Cargo.toml

crates/bench/src/bin/exp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
