/root/repo/target/debug/deps/traffic_shapes-1f11c562152b2e0b.d: tests/traffic_shapes.rs

/root/repo/target/debug/deps/traffic_shapes-1f11c562152b2e0b: tests/traffic_shapes.rs

tests/traffic_shapes.rs:
