/root/repo/target/debug/deps/iotmap_dregex-47b62f1e37958184.d: crates/dregex/src/lib.rs crates/dregex/src/ast.rs crates/dregex/src/backtrack.rs crates/dregex/src/classes.rs crates/dregex/src/compile.rs crates/dregex/src/parser.rs crates/dregex/src/prog.rs crates/dregex/src/query.rs crates/dregex/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_dregex-47b62f1e37958184.rmeta: crates/dregex/src/lib.rs crates/dregex/src/ast.rs crates/dregex/src/backtrack.rs crates/dregex/src/classes.rs crates/dregex/src/compile.rs crates/dregex/src/parser.rs crates/dregex/src/prog.rs crates/dregex/src/query.rs crates/dregex/src/vm.rs Cargo.toml

crates/dregex/src/lib.rs:
crates/dregex/src/ast.rs:
crates/dregex/src/backtrack.rs:
crates/dregex/src/classes.rs:
crates/dregex/src/compile.rs:
crates/dregex/src/parser.rs:
crates/dregex/src/prog.rs:
crates/dregex/src/query.rs:
crates/dregex/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
