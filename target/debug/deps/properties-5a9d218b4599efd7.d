/root/repo/target/debug/deps/properties-5a9d218b4599efd7.d: tests/properties.rs

/root/repo/target/debug/deps/properties-5a9d218b4599efd7: tests/properties.rs

tests/properties.rs:
