/root/repo/target/debug/deps/exp-75b32de97fc3ee36.d: crates/bench/src/bin/exp.rs

/root/repo/target/debug/deps/exp-75b32de97fc3ee36: crates/bench/src/bin/exp.rs

crates/bench/src/bin/exp.rs:
