/root/repo/target/debug/deps/determinism-c77b8a47a4eb828e.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-c77b8a47a4eb828e.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
