/root/repo/target/debug/deps/outage_replay-c8eb27e8c6e5f520.d: tests/outage_replay.rs

/root/repo/target/debug/deps/outage_replay-c8eb27e8c6e5f520: tests/outage_replay.rs

tests/outage_replay.rs:
