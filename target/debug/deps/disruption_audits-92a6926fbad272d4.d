/root/repo/target/debug/deps/disruption_audits-92a6926fbad272d4.d: tests/disruption_audits.rs

/root/repo/target/debug/deps/disruption_audits-92a6926fbad272d4: tests/disruption_audits.rs

tests/disruption_audits.rs:
