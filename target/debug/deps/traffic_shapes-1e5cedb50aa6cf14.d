/root/repo/target/debug/deps/traffic_shapes-1e5cedb50aa6cf14.d: tests/traffic_shapes.rs

/root/repo/target/debug/deps/traffic_shapes-1e5cedb50aa6cf14: tests/traffic_shapes.rs

tests/traffic_shapes.rs:
