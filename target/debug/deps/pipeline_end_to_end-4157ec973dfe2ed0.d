/root/repo/target/debug/deps/pipeline_end_to_end-4157ec973dfe2ed0.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-4157ec973dfe2ed0: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
