/root/repo/target/debug/deps/iotmap_traffic-8be6344d55167d12.d: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/debug/deps/libiotmap_traffic-8be6344d55167d12.rlib: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

/root/repo/target/debug/deps/libiotmap_traffic-8be6344d55167d12.rmeta: crates/traffic/src/lib.rs crates/traffic/src/analysis.rs crates/traffic/src/anonymize.rs crates/traffic/src/index.rs crates/traffic/src/scanners.rs crates/traffic/src/visibility.rs crates/traffic/src/whatif.rs

crates/traffic/src/lib.rs:
crates/traffic/src/analysis.rs:
crates/traffic/src/anonymize.rs:
crates/traffic/src/index.rs:
crates/traffic/src/scanners.rs:
crates/traffic/src/visibility.rs:
crates/traffic/src/whatif.rs:
