/root/repo/target/debug/deps/iotmap_bench-862f096c6101eada.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_bench-862f096c6101eada.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
