/root/repo/target/debug/deps/iotmap_nettypes-e88c74e1744aaa8d.d: crates/nettypes/src/lib.rs crates/nettypes/src/asn.rs crates/nettypes/src/bgp.rs crates/nettypes/src/dist.rs crates/nettypes/src/error.rs crates/nettypes/src/geo.rs crates/nettypes/src/interval.rs crates/nettypes/src/name.rs crates/nettypes/src/ports.rs crates/nettypes/src/prefix.rs crates/nettypes/src/rng.rs crates/nettypes/src/time.rs crates/nettypes/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_nettypes-e88c74e1744aaa8d.rmeta: crates/nettypes/src/lib.rs crates/nettypes/src/asn.rs crates/nettypes/src/bgp.rs crates/nettypes/src/dist.rs crates/nettypes/src/error.rs crates/nettypes/src/geo.rs crates/nettypes/src/interval.rs crates/nettypes/src/name.rs crates/nettypes/src/ports.rs crates/nettypes/src/prefix.rs crates/nettypes/src/rng.rs crates/nettypes/src/time.rs crates/nettypes/src/trie.rs Cargo.toml

crates/nettypes/src/lib.rs:
crates/nettypes/src/asn.rs:
crates/nettypes/src/bgp.rs:
crates/nettypes/src/dist.rs:
crates/nettypes/src/error.rs:
crates/nettypes/src/geo.rs:
crates/nettypes/src/interval.rs:
crates/nettypes/src/name.rs:
crates/nettypes/src/ports.rs:
crates/nettypes/src/prefix.rs:
crates/nettypes/src/rng.rs:
crates/nettypes/src/time.rs:
crates/nettypes/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
