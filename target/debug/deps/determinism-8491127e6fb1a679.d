/root/repo/target/debug/deps/determinism-8491127e6fb1a679.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-8491127e6fb1a679: tests/determinism.rs

tests/determinism.rs:
