/root/repo/target/debug/deps/iotmap_tls-886441b784fc6d02.d: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_tls-886441b784fc6d02.rmeta: crates/tls/src/lib.rs crates/tls/src/cert.rs crates/tls/src/endpoint.rs crates/tls/src/handshake.rs Cargo.toml

crates/tls/src/lib.rs:
crates/tls/src/cert.rs:
crates/tls/src/endpoint.rs:
crates/tls/src/handshake.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
