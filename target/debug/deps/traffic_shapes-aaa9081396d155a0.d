/root/repo/target/debug/deps/traffic_shapes-aaa9081396d155a0.d: tests/traffic_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libtraffic_shapes-aaa9081396d155a0.rmeta: tests/traffic_shapes.rs Cargo.toml

tests/traffic_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
