/root/repo/target/debug/deps/iotmap_par-231c861c34a411c5.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_par-231c861c34a411c5.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
