/root/repo/target/debug/deps/iotmap_scan-9ea2ecad1863e837.d: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/debug/deps/libiotmap_scan-9ea2ecad1863e837.rlib: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/debug/deps/libiotmap_scan-9ea2ecad1863e837.rmeta: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

crates/scan/src/lib.rs:
crates/scan/src/censys.rs:
crates/scan/src/ethics.rs:
crates/scan/src/hitlist.rs:
crates/scan/src/lookingglass.rs:
crates/scan/src/target.rs:
crates/scan/src/zgrab.rs:
