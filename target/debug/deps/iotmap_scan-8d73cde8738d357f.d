/root/repo/target/debug/deps/iotmap_scan-8d73cde8738d357f.d: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_scan-8d73cde8738d357f.rmeta: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs Cargo.toml

crates/scan/src/lib.rs:
crates/scan/src/censys.rs:
crates/scan/src/ethics.rs:
crates/scan/src/hitlist.rs:
crates/scan/src/lookingglass.rs:
crates/scan/src/target.rs:
crates/scan/src/zgrab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
