/root/repo/target/debug/deps/iotmap_par-e9303f4c20c4a9c5.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libiotmap_par-e9303f4c20c4a9c5.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
