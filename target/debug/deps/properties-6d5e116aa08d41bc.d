/root/repo/target/debug/deps/properties-6d5e116aa08d41bc.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6d5e116aa08d41bc.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
