/root/repo/target/debug/deps/iotmap_netflow-c42fa51a2caf18b0.d: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

/root/repo/target/debug/deps/iotmap_netflow-c42fa51a2caf18b0: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/record.rs crates/netflow/src/router.rs crates/netflow/src/sampler.rs crates/netflow/src/sink.rs

crates/netflow/src/lib.rs:
crates/netflow/src/anonymize.rs:
crates/netflow/src/record.rs:
crates/netflow/src/router.rs:
crates/netflow/src/sampler.rs:
crates/netflow/src/sink.rs:
