/root/repo/target/debug/deps/iotmap-cdc7577be2b529de.d: src/lib.rs

/root/repo/target/debug/deps/iotmap-cdc7577be2b529de: src/lib.rs

src/lib.rs:
