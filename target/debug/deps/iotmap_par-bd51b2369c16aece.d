/root/repo/target/debug/deps/iotmap_par-bd51b2369c16aece.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/iotmap_par-bd51b2369c16aece: crates/par/src/lib.rs

crates/par/src/lib.rs:
