/root/repo/target/debug/deps/iotmap_scan-d5a7638f85b78676.d: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

/root/repo/target/debug/deps/iotmap_scan-d5a7638f85b78676: crates/scan/src/lib.rs crates/scan/src/censys.rs crates/scan/src/ethics.rs crates/scan/src/hitlist.rs crates/scan/src/lookingglass.rs crates/scan/src/target.rs crates/scan/src/zgrab.rs

crates/scan/src/lib.rs:
crates/scan/src/censys.rs:
crates/scan/src/ethics.rs:
crates/scan/src/hitlist.rs:
crates/scan/src/lookingglass.rs:
crates/scan/src/target.rs:
crates/scan/src/zgrab.rs:
