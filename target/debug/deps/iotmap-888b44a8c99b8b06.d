/root/repo/target/debug/deps/iotmap-888b44a8c99b8b06.d: src/lib.rs

/root/repo/target/debug/deps/iotmap-888b44a8c99b8b06: src/lib.rs

src/lib.rs:
