/root/repo/target/debug/deps/pipeline_end_to_end-2b99ec7dcca43d2d.d: tests/pipeline_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_end_to_end-2b99ec7dcca43d2d.rmeta: tests/pipeline_end_to_end.rs Cargo.toml

tests/pipeline_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
