/root/repo/target/debug/deps/iotmap_dregex-282599f50def505c.d: crates/dregex/src/lib.rs crates/dregex/src/ast.rs crates/dregex/src/backtrack.rs crates/dregex/src/classes.rs crates/dregex/src/compile.rs crates/dregex/src/parser.rs crates/dregex/src/prog.rs crates/dregex/src/query.rs crates/dregex/src/vm.rs

/root/repo/target/debug/deps/libiotmap_dregex-282599f50def505c.rlib: crates/dregex/src/lib.rs crates/dregex/src/ast.rs crates/dregex/src/backtrack.rs crates/dregex/src/classes.rs crates/dregex/src/compile.rs crates/dregex/src/parser.rs crates/dregex/src/prog.rs crates/dregex/src/query.rs crates/dregex/src/vm.rs

/root/repo/target/debug/deps/libiotmap_dregex-282599f50def505c.rmeta: crates/dregex/src/lib.rs crates/dregex/src/ast.rs crates/dregex/src/backtrack.rs crates/dregex/src/classes.rs crates/dregex/src/compile.rs crates/dregex/src/parser.rs crates/dregex/src/prog.rs crates/dregex/src/query.rs crates/dregex/src/vm.rs

crates/dregex/src/lib.rs:
crates/dregex/src/ast.rs:
crates/dregex/src/backtrack.rs:
crates/dregex/src/classes.rs:
crates/dregex/src/compile.rs:
crates/dregex/src/parser.rs:
crates/dregex/src/prog.rs:
crates/dregex/src/query.rs:
crates/dregex/src/vm.rs:
