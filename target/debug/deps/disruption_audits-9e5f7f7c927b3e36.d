/root/repo/target/debug/deps/disruption_audits-9e5f7f7c927b3e36.d: tests/disruption_audits.rs

/root/repo/target/debug/deps/disruption_audits-9e5f7f7c927b3e36: tests/disruption_audits.rs

tests/disruption_audits.rs:
