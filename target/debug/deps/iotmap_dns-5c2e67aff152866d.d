/root/repo/target/debug/deps/iotmap_dns-5c2e67aff152866d.d: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

/root/repo/target/debug/deps/iotmap_dns-5c2e67aff152866d: crates/dns/src/lib.rs crates/dns/src/active.rs crates/dns/src/passive.rs crates/dns/src/rdns.rs crates/dns/src/record.rs crates/dns/src/resolver.rs crates/dns/src/zone.rs

crates/dns/src/lib.rs:
crates/dns/src/active.rs:
crates/dns/src/passive.rs:
crates/dns/src/rdns.rs:
crates/dns/src/record.rs:
crates/dns/src/resolver.rs:
crates/dns/src/zone.rs:
