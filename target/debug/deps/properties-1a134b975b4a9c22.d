/root/repo/target/debug/deps/properties-1a134b975b4a9c22.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1a134b975b4a9c22: tests/properties.rs

tests/properties.rs:
