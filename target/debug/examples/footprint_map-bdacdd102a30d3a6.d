/root/repo/target/debug/examples/footprint_map-bdacdd102a30d3a6.d: examples/footprint_map.rs

/root/repo/target/debug/examples/footprint_map-bdacdd102a30d3a6: examples/footprint_map.rs

examples/footprint_map.rs:
