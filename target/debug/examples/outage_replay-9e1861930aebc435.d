/root/repo/target/debug/examples/outage_replay-9e1861930aebc435.d: examples/outage_replay.rs

/root/repo/target/debug/examples/outage_replay-9e1861930aebc435: examples/outage_replay.rs

examples/outage_replay.rs:
