/root/repo/target/debug/examples/disruption_audit-e0457832ad4c9f03.d: examples/disruption_audit.rs Cargo.toml

/root/repo/target/debug/examples/libdisruption_audit-e0457832ad4c9f03.rmeta: examples/disruption_audit.rs Cargo.toml

examples/disruption_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
