/root/repo/target/debug/examples/disruption_audit-efdaaa2f975e7527.d: examples/disruption_audit.rs

/root/repo/target/debug/examples/disruption_audit-efdaaa2f975e7527: examples/disruption_audit.rs

examples/disruption_audit.rs:
