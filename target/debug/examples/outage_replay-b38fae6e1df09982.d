/root/repo/target/debug/examples/outage_replay-b38fae6e1df09982.d: examples/outage_replay.rs

/root/repo/target/debug/examples/outage_replay-b38fae6e1df09982: examples/outage_replay.rs

examples/outage_replay.rs:
