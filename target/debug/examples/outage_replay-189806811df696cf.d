/root/repo/target/debug/examples/outage_replay-189806811df696cf.d: examples/outage_replay.rs Cargo.toml

/root/repo/target/debug/examples/liboutage_replay-189806811df696cf.rmeta: examples/outage_replay.rs Cargo.toml

examples/outage_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
