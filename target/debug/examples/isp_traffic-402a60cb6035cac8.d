/root/repo/target/debug/examples/isp_traffic-402a60cb6035cac8.d: examples/isp_traffic.rs

/root/repo/target/debug/examples/isp_traffic-402a60cb6035cac8: examples/isp_traffic.rs

examples/isp_traffic.rs:
