/root/repo/target/debug/examples/disruption_audit-55e513c6c14d6e55.d: examples/disruption_audit.rs

/root/repo/target/debug/examples/disruption_audit-55e513c6c14d6e55: examples/disruption_audit.rs

examples/disruption_audit.rs:
