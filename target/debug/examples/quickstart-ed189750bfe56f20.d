/root/repo/target/debug/examples/quickstart-ed189750bfe56f20.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ed189750bfe56f20.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
