/root/repo/target/debug/examples/disruption_audit-d69d4ccea2b93404.d: examples/disruption_audit.rs Cargo.toml

/root/repo/target/debug/examples/libdisruption_audit-d69d4ccea2b93404.rmeta: examples/disruption_audit.rs Cargo.toml

examples/disruption_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
