/root/repo/target/debug/examples/quickstart-0dc2f82da89b75f8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0dc2f82da89b75f8: examples/quickstart.rs

examples/quickstart.rs:
