/root/repo/target/debug/examples/quickstart-69498db74aa797f3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-69498db74aa797f3: examples/quickstart.rs

examples/quickstart.rs:
