/root/repo/target/debug/examples/outage_replay-30984509fe467435.d: examples/outage_replay.rs

/root/repo/target/debug/examples/outage_replay-30984509fe467435: examples/outage_replay.rs

examples/outage_replay.rs:
