/root/repo/target/debug/examples/footprint_map-4c0839a13e523ba6.d: examples/footprint_map.rs

/root/repo/target/debug/examples/footprint_map-4c0839a13e523ba6: examples/footprint_map.rs

examples/footprint_map.rs:
