/root/repo/target/debug/examples/footprint_map-fc89ed9be6c6d6da.d: examples/footprint_map.rs Cargo.toml

/root/repo/target/debug/examples/libfootprint_map-fc89ed9be6c6d6da.rmeta: examples/footprint_map.rs Cargo.toml

examples/footprint_map.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
