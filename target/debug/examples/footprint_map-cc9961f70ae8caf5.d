/root/repo/target/debug/examples/footprint_map-cc9961f70ae8caf5.d: examples/footprint_map.rs

/root/repo/target/debug/examples/footprint_map-cc9961f70ae8caf5: examples/footprint_map.rs

examples/footprint_map.rs:
