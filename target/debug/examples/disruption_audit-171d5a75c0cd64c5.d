/root/repo/target/debug/examples/disruption_audit-171d5a75c0cd64c5.d: examples/disruption_audit.rs

/root/repo/target/debug/examples/disruption_audit-171d5a75c0cd64c5: examples/disruption_audit.rs

examples/disruption_audit.rs:
