/root/repo/target/debug/examples/isp_traffic-e6e2c3bf269974f5.d: examples/isp_traffic.rs Cargo.toml

/root/repo/target/debug/examples/libisp_traffic-e6e2c3bf269974f5.rmeta: examples/isp_traffic.rs Cargo.toml

examples/isp_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
