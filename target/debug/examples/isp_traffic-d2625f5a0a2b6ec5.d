/root/repo/target/debug/examples/isp_traffic-d2625f5a0a2b6ec5.d: examples/isp_traffic.rs

/root/repo/target/debug/examples/isp_traffic-d2625f5a0a2b6ec5: examples/isp_traffic.rs

examples/isp_traffic.rs:
