/root/repo/target/debug/examples/outage_replay-0cb1f68f416fcdd4.d: examples/outage_replay.rs Cargo.toml

/root/repo/target/debug/examples/liboutage_replay-0cb1f68f416fcdd4.rmeta: examples/outage_replay.rs Cargo.toml

examples/outage_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
