/root/repo/target/debug/examples/quickstart-3d19b15cf8829c88.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3d19b15cf8829c88: examples/quickstart.rs

examples/quickstart.rs:
