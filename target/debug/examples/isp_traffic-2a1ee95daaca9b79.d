/root/repo/target/debug/examples/isp_traffic-2a1ee95daaca9b79.d: examples/isp_traffic.rs

/root/repo/target/debug/examples/isp_traffic-2a1ee95daaca9b79: examples/isp_traffic.rs

examples/isp_traffic.rs:
