//! Checkpoint codecs for the pipeline's stage artifacts.
//!
//! The supervisor ([`iotmap_super`]) stores two kinds of stage
//! checkpoints. The *generative* stages (world build, scan collection)
//! produce artifacts far larger than the inputs they are a pure function
//! of, so their checkpoints hold only a **replay witness** — a digest the
//! recomputed artifact must match on resume. The *derived* stages
//! (discovery, footprints, shared-IP) store their full artifact through
//! the encoders here and are skipped entirely on resume.
//!
//! Encoding order is canonical everywhere a source container is
//! unordered (`HashMap` iterates arbitrarily): maps are emitted sorted
//! by key, sets sorted by element. That makes the encoded bytes — and
//! therefore [`RunArtifacts::canonical_dump`](crate::RunArtifacts) — a
//! deterministic function of artifact *content*, which the resume tests
//! compare byte-for-byte.

use iotmap_core::{DiscoveryResult, Footprint, IpEvidence, IpLocation, ProviderDiscovery, Source};
use iotmap_dns::{PassiveDnsDb, RData, RrsetEntry};
use iotmap_faults::FaultPlan;
use iotmap_nettypes::geo::{Continent, Location};
use iotmap_nettypes::{DomainName, PortProto, SimTime, Transport};
use iotmap_scan::{CensysRecord, CensysSnapshot, ZgrabRecord};
use iotmap_super::codec::{fnv1a, ByteReader, ByteWriter};
use iotmap_tls::{Certificate, SanName};
use iotmap_world::{CollectedScans, World, WorldConfig};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::net::IpAddr;
use std::sync::Arc;

/// The run identity checkpoints are bound to: FNV-1a over the world
/// configuration and the artifact-affecting part of the fault plan
/// (the `crash` family is deliberately excluded — a run that crashed
/// and one that didn't compute the same artifacts, so their
/// checkpoints are interchangeable).
pub fn run_fingerprint(config: &WorldConfig, faults: &FaultPlan) -> u64 {
    run_fingerprint_with(config, faults, None)
}

/// [`run_fingerprint`] with an optional scenario fingerprint folded in.
/// A scenario rewrites world state the artifacts are computed from, so a
/// scenario run must never share checkpoints or cache entries with the
/// event-free run of the same `(config, faults)` — `None` reproduces the
/// historical fingerprint byte-for-byte.
pub fn run_fingerprint_with(
    config: &WorldConfig,
    faults: &FaultPlan,
    scenario: Option<u64>,
) -> u64 {
    match scenario {
        None => fnv1a(format!("{config:?}|{}", faults.data_fingerprint()).as_bytes()),
        Some(fp) => fnv1a(
            format!(
                "{config:?}|{}|scenario={fp:016x}",
                faults.data_fingerprint()
            )
            .as_bytes(),
        ),
    }
}

/// Cache identity for artifacts that depend on the world configuration
/// alone — the pristine world's passive-DNS table, which no fault plan
/// touches (sensors degrade a *copy* at engine time).
pub fn config_fingerprint(config: &WorldConfig) -> u64 {
    fnv1a(format!("{config:?}").as_bytes())
}

/// Replay witness for the world-build stage: structure counts plus a
/// fold over every server address — cheap, but sensitive to any drift
/// in the generated topology.
pub fn world_witness(world: &World) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(world.config.seed);
    w.put_u64(world.servers.len() as u64);
    w.put_u64(world.server_by_ip.len() as u64);
    w.put_u64(world.background.len() as u64);
    w.put_u64(world.passive_dns.len() as u64);
    for server in &world.servers {
        w.put_ip(server.ip);
        w.put_u32(server.ports.len() as u32);
    }
    fnv1a(&w.into_bytes())
}

/// Replay witness for the scan-collection stage: per-day record counts
/// plus a fold over the ZGrab campaign's targets.
pub fn scans_witness(scans: &CollectedScans) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(scans.censys.len() as u64);
    for snapshot in &scans.censys {
        w.put_i64(snapshot.date.epoch_days());
        w.put_u64(snapshot.records.len() as u64);
        w.put_u64(snapshot.host_ports.len() as u64);
    }
    w.put_u64(scans.zgrab_v6.len() as u64);
    for record in &scans.zgrab_v6 {
        w.put_ip(IpAddr::V6(record.ip));
        w.put_u32(record.port.port as u32);
    }
    fnv1a(&w.into_bytes())
}

fn put_location(w: &mut ByteWriter, loc: &Location) {
    w.put_str(&loc.city);
    w.put_str(loc.country.as_str());
    let continent = Continent::ALL
        .iter()
        .position(|c| *c == loc.continent)
        .expect("continent is one of ALL") as u8;
    w.put_u8(continent);
    w.put_f64(loc.lat);
    w.put_f64(loc.lon);
}

fn get_location(r: &mut ByteReader) -> Result<Location, String> {
    let city = r.get_str()?;
    let country = r.get_str()?;
    let continent_idx = r.get_u8()? as usize;
    let continent = *Continent::ALL
        .get(continent_idx)
        .ok_or_else(|| format!("bad continent index {continent_idx}"))?;
    let lat = r.get_f64()?;
    let lon = r.get_f64()?;
    let country = iotmap_nettypes::geo::CountryCode::new(&country)
        .map_err(|e| format!("bad country code {country:?}: {e:?}"))?;
    Ok(Location {
        city,
        country,
        continent,
        lat,
        lon,
    })
}

fn put_evidence(w: &mut ByteWriter, ev: &IpEvidence) {
    // SourceSet is a private bitset; round-trip through the public API.
    let mut mask = 0u8;
    for (bit, source) in Source::ALL.iter().enumerate() {
        if ev.sources.contains(*source) {
            mask |= 1 << bit;
        }
    }
    w.put_u8(mask);
    w.put_u32(ev.days.len() as u32);
    for day in &ev.days {
        w.put_i64(*day);
    }
    match &ev.domain_hint {
        Some(hint) => {
            w.put_bool(true);
            w.put_str(hint);
        }
        None => w.put_bool(false),
    }
    match &ev.censys_location {
        Some(loc) => {
            w.put_bool(true);
            put_location(w, loc);
        }
        None => w.put_bool(false),
    }
    w.put_u32(ev.matched_names.len() as u32);
    for name in &ev.matched_names {
        w.put_str(name);
    }
}

fn get_evidence(r: &mut ByteReader) -> Result<IpEvidence, String> {
    let mut ev = IpEvidence::default();
    let mask = r.get_u8()?;
    for (bit, source) in Source::ALL.iter().enumerate() {
        if mask & (1 << bit) != 0 {
            ev.sources.insert(*source);
        }
    }
    for _ in 0..r.get_u32()? {
        ev.days.insert(r.get_i64()?);
    }
    if r.get_bool()? {
        ev.domain_hint = Some(r.get_str()?);
    }
    if r.get_bool()? {
        ev.censys_location = Some(get_location(r)?);
    }
    for _ in 0..r.get_u32()? {
        ev.matched_names.insert(r.get_str()?);
    }
    Ok(ev)
}

/// Encode a discovery result (providers in registry order, IPs sorted).
pub fn put_discovery(value: &DiscoveryResult, w: &mut ByteWriter) {
    let providers: Vec<_> = value.per_provider().collect();
    w.put_u32(providers.len() as u32);
    for (name, disc) in providers {
        w.put_str(name);
        w.put_u32(disc.domains.len() as u32);
        for domain in &disc.domains {
            w.put_str(&domain.fqdn());
        }
        let mut ips: Vec<_> = disc.ips.iter().collect();
        ips.sort_by_key(|(ip, _)| **ip);
        w.put_u32(ips.len() as u32);
        for (ip, ev) in ips {
            w.put_ip(*ip);
            put_evidence(w, ev);
        }
    }
}

/// Decode a discovery result encoded by [`put_discovery`].
pub fn get_discovery(r: &mut ByteReader) -> Result<DiscoveryResult, String> {
    let mut providers = Vec::new();
    for _ in 0..r.get_u32()? {
        let name = r.get_str()?;
        let mut domains = BTreeSet::new();
        for _ in 0..r.get_u32()? {
            let raw = r.get_str()?;
            domains
                .insert(DomainName::parse(&raw).map_err(|e| format!("bad domain {raw:?}: {e:?}"))?);
        }
        let mut ips = HashMap::new();
        for _ in 0..r.get_u32()? {
            let ip = r.get_ip()?;
            ips.insert(ip, get_evidence(r)?);
        }
        providers.push(ProviderDiscovery { name, ips, domains });
    }
    Ok(DiscoveryResult::from_providers(providers))
}

/// Encode the per-provider footprints (providers and IPs sorted).
pub fn put_footprints(value: &HashMap<String, Footprint>, w: &mut ByteWriter) {
    let mut providers: Vec<_> = value.iter().collect();
    providers.sort_by_key(|(name, _)| name.as_str());
    w.put_u32(providers.len() as u32);
    for (name, fp) in providers {
        w.put_str(name);
        w.put_u64(fp.unlocated);
        w.put_u32(fp.per_ip.len() as u32);
        for (ip, loc) in &fp.per_ip {
            w.put_ip(*ip);
            w.put_str(&loc.label);
            put_location(w, &loc.location);
            w.put_bool(loc.contested);
        }
    }
}

/// Decode footprints encoded by [`put_footprints`].
pub fn get_footprints(r: &mut ByteReader) -> Result<HashMap<String, Footprint>, String> {
    let mut out = HashMap::new();
    for _ in 0..r.get_u32()? {
        let name = r.get_str()?;
        let mut fp = Footprint {
            unlocated: r.get_u64()?,
            ..Footprint::default()
        };
        for _ in 0..r.get_u32()? {
            let ip = r.get_ip()?;
            let label = r.get_str()?;
            let location = get_location(r)?;
            let contested = r.get_bool()?;
            fp.per_ip.insert(
                ip,
                IpLocation {
                    label,
                    location,
                    contested,
                },
            );
        }
        out.insert(name, fp);
    }
    Ok(out)
}

fn put_port(w: &mut ByteWriter, p: PortProto) {
    w.put_u8(match p.transport {
        Transport::Tcp => 0,
        Transport::Udp => 1,
    });
    w.put_u32(p.port as u32);
}

fn get_port(r: &mut ByteReader) -> Result<PortProto, String> {
    let transport = match r.get_u8()? {
        0 => Transport::Tcp,
        1 => Transport::Udp,
        t => return Err(format!("bad transport tag {t}")),
    };
    let port = r.get_u32()?;
    let port = u16::try_from(port).map_err(|_| format!("port {port} out of range"))?;
    Ok(PortProto { transport, port })
}

fn put_rdata(w: &mut ByteWriter, rdata: &RData) {
    match rdata {
        RData::A(a) => {
            w.put_u8(0);
            w.put_ip(IpAddr::V4(*a));
        }
        RData::Aaaa(a) => {
            w.put_u8(1);
            w.put_ip(IpAddr::V6(*a));
        }
        RData::Cname(name) => {
            w.put_u8(2);
            w.put_str(name.as_str());
        }
        RData::Ptr(name) => {
            w.put_u8(3);
            w.put_str(name.as_str());
        }
    }
}

fn get_rdata(r: &mut ByteReader) -> Result<RData, String> {
    Ok(match r.get_u8()? {
        0 => match r.get_ip()? {
            IpAddr::V4(a) => RData::A(a),
            ip => return Err(format!("A record with v6 address {ip}")),
        },
        1 => match r.get_ip()? {
            IpAddr::V6(a) => RData::Aaaa(a),
            ip => return Err(format!("AAAA record with v4 address {ip}")),
        },
        2 => RData::Cname(get_domain(r)?),
        3 => RData::Ptr(get_domain(r)?),
        t => return Err(format!("bad rdata tag {t}")),
    })
}

fn get_domain(r: &mut ByteReader) -> Result<DomainName, String> {
    let raw = r.get_str()?;
    DomainName::parse(&raw).map_err(|e| format!("bad domain {raw:?}: {e:?}"))
}

/// Encode the passive-DNS table in insertion order: the entry list alone
/// determines the rebuilt database (every index is derived from it), so
/// the encoding round-trips byte-exactly.
pub fn put_passive_dns(db: &PassiveDnsDb, w: &mut ByteWriter) {
    let entries = db.entries_slice();
    w.put_u32(entries.len() as u32);
    for e in entries {
        w.put_str(e.owner.as_str());
        put_rdata(w, &e.rdata);
        w.put_u64(e.time_first.unix());
        w.put_u64(e.time_last.unix());
        w.put_u64(e.count);
    }
}

/// Decode a passive-DNS table encoded by [`put_passive_dns`].
pub fn get_passive_dns(r: &mut ByteReader) -> Result<PassiveDnsDb, String> {
    let n = r.get_u32()? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let owner = get_domain(r)?;
        let rdata = get_rdata(r)?;
        let time_first = SimTime::from_unix(r.get_u64()?);
        let time_last = SimTime::from_unix(r.get_u64()?);
        let count = r.get_u64()?;
        entries.push(RrsetEntry {
            owner,
            rdata,
            time_first,
            time_last,
            count,
        });
    }
    Ok(PassiveDnsDb::from_entries(entries))
}

fn put_certificate(w: &mut ByteWriter, cert: &Certificate) {
    w.put_str(&cert.subject);
    w.put_str(&cert.issuer);
    w.put_u64(cert.not_before.unix());
    w.put_u64(cert.not_after.unix());
    w.put_u32(cert.sans.len() as u32);
    for san in &cert.sans {
        match san {
            SanName::Exact(name) => {
                w.put_u8(0);
                w.put_str(name.as_str());
            }
            SanName::Wildcard(name) => {
                w.put_u8(1);
                w.put_str(name.as_str());
            }
        }
    }
}

fn get_certificate(r: &mut ByteReader) -> Result<Certificate, String> {
    let subject = r.get_str()?;
    let issuer = r.get_str()?;
    let not_before = SimTime::from_unix(r.get_u64()?);
    let not_after = SimTime::from_unix(r.get_u64()?);
    let mut sans = Vec::new();
    for _ in 0..r.get_u32()? {
        let tag = r.get_u8()?;
        let name = get_domain(r)?;
        sans.push(match tag {
            0 => SanName::Exact(name),
            1 => SanName::Wildcard(name),
            t => return Err(format!("bad SAN tag {t}")),
        });
    }
    Ok(Certificate {
        subject,
        sans,
        issuer,
        not_before,
        not_after,
    })
}

/// Encode the collected scan datasets. Certificates are shared across
/// records via `Arc` (one per site); the encoding preserves that sharing
/// with a table of distinct certificates in first-encounter order —
/// records refer to table rows, and the decoder hands every referring
/// record a clone of one shared `Arc`. Encounter order is a pure function
/// of the record order, so re-encoding a decoded value is byte-identical.
pub fn put_scans(scans: &CollectedScans, w: &mut ByteWriter) {
    let mut rows: HashMap<usize, u32> = HashMap::new();
    let mut certs: Vec<Arc<Certificate>> = Vec::new();
    let mut row_of = |cert: &Arc<Certificate>| -> u32 {
        *rows.entry(Arc::as_ptr(cert) as usize).or_insert_with(|| {
            certs.push(cert.clone());
            (certs.len() - 1) as u32
        })
    };
    // First pass: assign table rows in encounter order.
    let mut record_rows: Vec<u32> = Vec::new();
    for snapshot in &scans.censys {
        for record in &snapshot.records {
            record_rows.push(row_of(&record.certificate));
        }
    }
    for record in &scans.zgrab_v6 {
        record_rows.push(row_of(&record.certificate));
    }
    w.put_u32(certs.len() as u32);
    for cert in &certs {
        put_certificate(w, cert);
    }
    let mut next_row = record_rows.into_iter();
    w.put_u32(scans.censys.len() as u32);
    for snapshot in &scans.censys {
        w.put_i64(snapshot.date.epoch_days());
        w.put_u32(snapshot.records.len() as u32);
        for record in &snapshot.records {
            w.put_ip(record.ip);
            put_port(w, record.port);
            w.put_u32(next_row.next().expect("row per record"));
            match &record.location {
                Some(loc) => {
                    w.put_bool(true);
                    put_location(w, loc);
                }
                None => w.put_bool(false),
            }
        }
        w.put_u32(snapshot.host_ports.len() as u32);
        for (addr, ports) in &snapshot.host_ports {
            w.put_ip(IpAddr::V4(*addr));
            w.put_u32(ports.len() as u32);
            for port in ports {
                put_port(w, *port);
            }
        }
    }
    w.put_u32(scans.zgrab_v6.len() as u32);
    for record in &scans.zgrab_v6 {
        w.put_ip(IpAddr::V6(record.ip));
        put_port(w, record.port);
        w.put_u32(next_row.next().expect("row per record"));
    }
}

/// Decode scan datasets encoded by [`put_scans`].
pub fn get_scans(r: &mut ByteReader) -> Result<CollectedScans, String> {
    let mut certs: Vec<Arc<Certificate>> = Vec::new();
    for _ in 0..r.get_u32()? {
        certs.push(Arc::new(get_certificate(r)?));
    }
    let cert_at = |row: u32| -> Result<Arc<Certificate>, String> {
        certs
            .get(row as usize)
            .cloned()
            .ok_or_else(|| format!("certificate row {row} out of table"))
    };
    let mut censys = Vec::new();
    for _ in 0..r.get_u32()? {
        let date = iotmap_nettypes::Date::from_epoch_days(r.get_i64()?);
        let mut records = Vec::new();
        for _ in 0..r.get_u32()? {
            let ip = r.get_ip()?;
            let port = get_port(r)?;
            let certificate = cert_at(r.get_u32()?)?;
            let location = if r.get_bool()? {
                Some(get_location(r)?)
            } else {
                None
            };
            records.push(CensysRecord {
                ip,
                port,
                certificate,
                location,
            });
        }
        let mut host_ports = Vec::new();
        for _ in 0..r.get_u32()? {
            let addr = match r.get_ip()? {
                IpAddr::V4(a) => a,
                ip => return Err(format!("host-ports key with v6 address {ip}")),
            };
            let mut ports = Vec::new();
            for _ in 0..r.get_u32()? {
                ports.push(get_port(r)?);
            }
            host_ports.push((addr, ports));
        }
        censys.push(CensysSnapshot {
            date,
            records,
            host_ports,
        });
    }
    let mut zgrab_v6 = Vec::new();
    for _ in 0..r.get_u32()? {
        let ip = match r.get_ip()? {
            IpAddr::V6(a) => a,
            ip => return Err(format!("zgrab record with v4 address {ip}")),
        };
        let port = get_port(r)?;
        let certificate = cert_at(r.get_u32()?)?;
        zgrab_v6.push(ZgrabRecord {
            ip,
            port,
            certificate,
        });
    }
    Ok(CollectedScans { censys, zgrab_v6 })
}

/// Encode the shared-IP set (sorted).
pub fn put_shared_ips(value: &HashSet<IpAddr>, w: &mut ByteWriter) {
    let mut ips: Vec<_> = value.iter().copied().collect();
    ips.sort();
    w.put_u32(ips.len() as u32);
    for ip in ips {
        w.put_ip(ip);
    }
}

/// Decode the shared-IP set encoded by [`put_shared_ips`].
pub fn get_shared_ips(r: &mut ByteReader) -> Result<HashSet<IpAddr>, String> {
    let mut out = HashSet::new();
    for _ in 0..r.get_u32()? {
        out.insert(r.get_ip()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_round_trips_through_the_codec() {
        let mut ips = HashMap::new();
        let mut ev = IpEvidence::default();
        ev.sources.insert(Source::Certificate);
        ev.sources.insert(Source::PassiveDns);
        ev.days.extend([18993i64, 18995]);
        ev.domain_hint = Some("eu-1".to_string());
        ev.censys_location = Some(Location::new(
            "Frankfurt",
            "DE",
            Continent::Europe,
            50.1,
            8.7,
        ));
        ev.matched_names.insert("iot.example.com".to_string());
        ips.insert("192.0.2.1".parse().unwrap(), ev);
        ips.insert("2001:db8::5".parse().unwrap(), IpEvidence::default());
        let mut domains = BTreeSet::new();
        domains.insert(DomainName::parse("mqtt.example.com").unwrap());
        let value = DiscoveryResult::from_providers(vec![ProviderDiscovery {
            name: "example".to_string(),
            ips,
            domains,
        }]);

        let mut w = ByteWriter::new();
        put_discovery(&value, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_discovery(&mut r).unwrap();
        r.finish().unwrap();

        // Same canonical encoding — the identity the resume tests use.
        let mut again = ByteWriter::new();
        put_discovery(&back, &mut again);
        assert_eq!(bytes, again.into_bytes());
        let ev = &back.get("example").unwrap().ips[&"192.0.2.1".parse::<IpAddr>().unwrap()];
        assert!(ev.sources.contains(Source::PassiveDns));
        assert!(!ev.sources.contains(Source::Ipv6Scan));
        assert_eq!(ev.domain_hint.as_deref(), Some("eu-1"));
    }

    #[test]
    fn footprints_and_shared_ips_round_trip() {
        let mut footprints = HashMap::new();
        let mut fp = Footprint {
            unlocated: 3,
            ..Footprint::default()
        };
        fp.per_ip.insert(
            "198.51.100.9".parse().unwrap(),
            IpLocation {
                label: "us-east".to_string(),
                location: Location::new("Ashburn", "US", Continent::NorthAmerica, 39.0, -77.5),
                contested: true,
            },
        );
        footprints.insert("example".to_string(), fp);
        let mut w = ByteWriter::new();
        put_footprints(&footprints, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_footprints(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back["example"].unlocated, 3);
        assert!(back["example"].per_ip.values().next().unwrap().contested);

        let shared: HashSet<IpAddr> = ["192.0.2.1", "192.0.2.9", "2001:db8::1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let mut w = ByteWriter::new();
        put_shared_ips(&shared, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_shared_ips(&mut r).unwrap(), shared);
        r.finish().unwrap();
    }

    #[test]
    fn fingerprints_track_data_inputs_but_not_crash_faults() {
        let config = WorldConfig::small(42);
        let base = run_fingerprint(&config, &FaultPlan::none());
        assert_eq!(base, run_fingerprint(&config, &FaultPlan::none()));
        assert_ne!(
            base,
            run_fingerprint(&WorldConfig::small(43), &FaultPlan::none())
        );
        assert_ne!(
            base,
            run_fingerprint(&config, &FaultPlan::heavy()),
            "data faults change the artifacts, so they change the fingerprint"
        );
        let mut crashy = FaultPlan::none();
        crashy.crash.stage_rate = 0.5;
        crashy.crash.kill_after_stage = Some("discovery".to_string());
        assert_eq!(
            base,
            run_fingerprint(&config, &crashy),
            "crash faults never change artifacts, so checkpoints stay valid"
        );
    }
}
