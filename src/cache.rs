//! The memoized on-disk world cache.
//!
//! Preparing a run is expensive — passive-DNS synthesis, seven daily
//! Censys sweeps, discovery over every snapshot — yet every artifact is a
//! pure function of the world configuration and the data-fault plan. The
//! cache memoizes those artifacts on disk so a repeat run with the same
//! inputs skips straight to them.
//!
//! Entries reuse the supervisor's checkpoint container
//! ([`CheckpointStore`]): magic + fingerprint + checksum framing, atomic
//! tmp-then-rename writes. On top of that, every entry's *file name*
//! carries the fingerprint of the inputs it was computed from
//! (`00-pdns-<fp>.ckpt`, `01-scans-<fp>.ckpt`, …), so entries for
//! different configurations and fault plans coexist in one cache
//! directory instead of evicting each other.
//!
//! Two fingerprints key the entries:
//!
//! * the **config fingerprint** ([`recover::config_fingerprint`]) keys the
//!   pristine world's passive-DNS table — no fault plan touches it;
//! * the **run fingerprint** ([`recover::run_fingerprint`]) — config plus
//!   data faults — keys everything downstream of the measurement
//!   instruments (scan datasets, discovery, footprints, shared IPs).
//!
//! A corrupted, truncated, or mismatched entry is never an error: it is
//! counted (`cache.invalidated`), discarded, and silently regenerated.
//! Fresh results are written back (`cache.written`); hits and misses are
//! counted too, so a run report shows exactly what the cache did.

use crate::recover;
use iotmap_core::{DiscoveryResult, Footprint};
use iotmap_dns::PassiveDnsDb;
use iotmap_faults::FaultPlan;
use iotmap_nettypes::Error;
use iotmap_super::codec::{ByteReader, ByteWriter};
use iotmap_super::{CheckpointStore, CkptError, KIND_BYTES};
use iotmap_world::{CollectedScans, WorldConfig};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;
use std::path::Path;

/// Slot numbers give cache files stable, readable prefixes mirroring the
/// stage order (`00-pdns-…`, `01-scans-…`, `02-discovery-…`, …).
const SLOT_PDNS: usize = 0;
const SLOT_SCANS: usize = 1;
const SLOT_DISCOVERY: usize = 2;
const SLOT_FOOTPRINTS: usize = 3;
const SLOT_SHARED_IPS: usize = 4;

/// One cache directory, opened for one `(config, fault plan)` identity.
pub(crate) struct WorldCache {
    /// Store for config-keyed entries (the pristine passive-DNS table).
    config_store: CheckpointStore,
    /// Store for run-keyed entries (scans and the derived artifacts).
    run_store: CheckpointStore,
    config_tag: String,
    run_tag: String,
}

impl WorldCache {
    /// Open (creating if needed) a cache directory for this run identity.
    /// The scenario fingerprint keys only the **run** store: a timeline
    /// rewrites everything downstream of the instruments, but the
    /// pristine passive-DNS table is generated before any timeline
    /// installs, so the config-keyed entry stays shared with event-free
    /// runs.
    pub fn open(
        dir: &Path,
        config: &WorldConfig,
        faults: &FaultPlan,
        scenario: Option<u64>,
    ) -> Result<WorldCache, Error> {
        let config_fp = recover::config_fingerprint(config);
        let run_fp = recover::run_fingerprint_with(config, faults, scenario);
        let open = |fp: u64| {
            CheckpointStore::open(dir, fp)
                .map_err(|e| Error::stage("cache", format!("cannot open {}: {e}", dir.display())))
        };
        Ok(WorldCache {
            config_store: open(config_fp)?,
            run_store: open(run_fp)?,
            config_tag: format!("{config_fp:016x}"),
            run_tag: format!("{run_fp:016x}"),
        })
    }

    /// Load and decode one entry. `None` means "regenerate": the entry is
    /// missing (`cache.miss`) or failed verification — bad checksum,
    /// truncation, foreign fingerprint, undecodable payload — in which
    /// case it is counted as `cache.invalidated` and deleted so the
    /// regenerated result can take its place.
    fn load<T>(
        store: &CheckpointStore,
        slot: usize,
        stage: &str,
        decode: impl FnOnce(&mut ByteReader) -> Result<T, String>,
    ) -> Option<T> {
        match store.load(slot, stage, KIND_BYTES) {
            Ok(bytes) => {
                let mut r = ByteReader::new(&bytes);
                match decode(&mut r).and_then(|v| r.finish().map(|()| v)) {
                    Ok(value) => {
                        iotmap_obs::count!("cache.hit");
                        Some(value)
                    }
                    Err(e) => {
                        eprintln!(
                            "# cache: undecodable entry {slot:02}-{stage}: {e}; regenerating"
                        );
                        iotmap_obs::count!("cache.invalidated");
                        store.discard(slot, stage);
                        None
                    }
                }
            }
            Err(CkptError::Missing) => {
                iotmap_obs::count!("cache.miss");
                None
            }
            Err(CkptError::Corrupt(e)) | Err(CkptError::Mismatch(e)) => {
                eprintln!("# cache: bad entry {slot:02}-{stage}: {e}; regenerating");
                iotmap_obs::count!("cache.invalidated");
                store.discard(slot, stage);
                None
            }
        }
    }

    /// Encode and write one entry (atomic tmp-then-rename). A write
    /// failure only costs the memoization, never the run.
    fn save(
        store: &CheckpointStore,
        slot: usize,
        stage: &str,
        encode: impl FnOnce(&mut ByteWriter),
    ) {
        let mut w = ByteWriter::new();
        encode(&mut w);
        match store.save(slot, stage, KIND_BYTES, &w.into_bytes()) {
            Ok(()) => iotmap_obs::count!("cache.written"),
            Err(e) => {
                eprintln!("# cache: write failed for {slot:02}-{stage}: {e}");
                iotmap_obs::count!("cache.write_failed");
            }
        }
    }

    pub fn load_passive_dns(&self) -> Option<PassiveDnsDb> {
        let stage = format!("pdns-{}", self.config_tag);
        Self::load(
            &self.config_store,
            SLOT_PDNS,
            &stage,
            recover::get_passive_dns,
        )
    }

    pub fn save_passive_dns(&self, db: &PassiveDnsDb) {
        let stage = format!("pdns-{}", self.config_tag);
        Self::save(&self.config_store, SLOT_PDNS, &stage, |w| {
            recover::put_passive_dns(db, w)
        });
    }

    pub fn load_scans(&self) -> Option<CollectedScans> {
        let stage = format!("scans-{}", self.run_tag);
        Self::load(&self.run_store, SLOT_SCANS, &stage, recover::get_scans)
    }

    pub fn save_scans(&self, scans: &CollectedScans) {
        let stage = format!("scans-{}", self.run_tag);
        Self::save(&self.run_store, SLOT_SCANS, &stage, |w| {
            recover::put_scans(scans, w)
        });
    }

    pub fn load_discovery(&self) -> Option<DiscoveryResult> {
        let stage = format!("discovery-{}", self.run_tag);
        Self::load(
            &self.run_store,
            SLOT_DISCOVERY,
            &stage,
            recover::get_discovery,
        )
    }

    pub fn save_discovery(&self, discovery: &DiscoveryResult) {
        let stage = format!("discovery-{}", self.run_tag);
        Self::save(&self.run_store, SLOT_DISCOVERY, &stage, |w| {
            recover::put_discovery(discovery, w)
        });
    }

    pub fn load_footprints(&self) -> Option<HashMap<String, Footprint>> {
        let stage = format!("footprints-{}", self.run_tag);
        Self::load(
            &self.run_store,
            SLOT_FOOTPRINTS,
            &stage,
            recover::get_footprints,
        )
    }

    pub fn save_footprints(&self, footprints: &HashMap<String, Footprint>) {
        let stage = format!("footprints-{}", self.run_tag);
        Self::save(&self.run_store, SLOT_FOOTPRINTS, &stage, |w| {
            recover::put_footprints(footprints, w)
        });
    }

    pub fn load_shared_ips(&self) -> Option<HashSet<IpAddr>> {
        let stage = format!("shared-ips-{}", self.run_tag);
        Self::load(
            &self.run_store,
            SLOT_SHARED_IPS,
            &stage,
            recover::get_shared_ips,
        )
    }

    pub fn save_shared_ips(&self, shared: &HashSet<IpAddr>) {
        let stage = format!("shared-ips-{}", self.run_tag);
        Self::save(&self.run_store, SLOT_SHARED_IPS, &stage, |w| {
            recover::put_shared_ips(shared, w)
        });
    }
}
