//! # iotmap — the IoT backend ecosystem, reproduced
//!
//! A full reproduction of *"Deep Dive into the IoT Backend Ecosystem"*
//! (Saidi, Matic, Gasser, Smaragdakis, Feldmann — ACM IMC 2022) as a Rust
//! workspace: the paper's multi-source IoT-backend discovery methodology,
//! every substrate it depends on (TLS scanning, passive/active DNS, NetFlow,
//! BGP, geolocation), and a deterministic synthetic Internet to run it
//! against.
//!
//! This facade crate re-exports the workspace members under stable module
//! names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`nettypes`] | `iotmap-nettypes` | addressing, prefixes, geo, time, RNG |
//! | [`dregex`] | `iotmap-dregex` | the domain-pattern regex engine |
//! | [`dns`] | `iotmap-dns` | zones, resolution, passive & active DNS |
//! | [`tls`] | `iotmap-tls` | certificates and handshake behaviour |
//! | [`scan`] | `iotmap-scan` | Censys-like scanning, hitlists, looking glasses |
//! | [`netflow`] | `iotmap-netflow` | flow records, sampling, collectors |
//! | [`stats`] | `iotmap-stats` | ECDFs, histograms, time series |
//! | [`world`] | `iotmap-world` | the synthetic Internet ground truth |
//! | [`core`] | `iotmap-core` | the paper's discovery & characterization pipeline |
//! | [`traffic`] | `iotmap-traffic` | the ISP-side traffic analyses |
//! | [`par`] | `iotmap-par` | deterministic std-only parallel execution |
//! | [`supervisor`] | `iotmap-super` | supervised stage runtime: retries, deadlines, checkpoint/resume |
//!
//! and adds the front door itself: [`Pipeline`], which wires world-build →
//! discovery → footprint inference → shared-IP classification behind one
//! builder, and [`prelude`] for the types a typical caller needs.
//!
//! ## Quickstart
//!
//! ```no_run
//! use iotmap::prelude::*;
//!
//! // Build a deterministic synthetic Internet and run the paper's
//! // methodology over it — on 4 worker threads, byte-identical to a
//! // serial run.
//! let artifacts = Pipeline::new(WorldConfig::small(42))
//!     .threads(4)
//!     .run()
//!     .expect("pipeline");
//! for (provider, discovery) in artifacts.discovery.per_provider() {
//!     println!("{provider}: {} backend IPs", discovery.ips.len());
//! }
//! // Traffic passes ride on the prepared artifacts (§5).
//! let period = artifacts.world.config.study_period;
//! let (report, excluded) = artifacts.full_traffic_analysis(period);
//! println!("{} scanner lines excluded", excluded.len());
//! # let _ = report;
//! ```
//!
//! See `examples/` for complete, runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment-by-experiment reproduction notes.

pub use iotmap_core as core;
pub use iotmap_dns as dns;
pub use iotmap_dregex as dregex;
pub use iotmap_faults as faults;
pub use iotmap_netflow as netflow;
pub use iotmap_nettypes as nettypes;
pub use iotmap_par as par;
pub use iotmap_scan as scan;
pub use iotmap_stats as stats;
pub use iotmap_tls as tls;
pub use iotmap_traffic as traffic;
pub use iotmap_world as world;
// `super` is a keyword, so the supervised runtime re-exports as
// `supervisor`.
pub use iotmap_super as supervisor;

pub mod recover;

use iotmap_core::{
    DataSources, DiscoveryPipeline, DiscoveryResult, Footprint, FootprintInference,
    PatternRegistry, SharedIpClassifier,
};
use iotmap_faults::FaultPlan;
use iotmap_netflow::LineId;
use iotmap_nettypes::{Error, StudyPeriod};
use iotmap_super::{CheckpointStore, StageArtifact, StagePolicy, Supervisor};
use iotmap_traffic::{AnalysisReport, AnalysisSink, ContactSink, IpIndex, ScannerAnalysis};
use iotmap_world::{CollectedScans, TrafficSimulator, World, WorldConfig};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;
use std::path::PathBuf;

/// The scanner-exclusion threshold the paper settles on (§5.2).
pub const SCANNER_THRESHOLD: usize = 100;

/// The pipeline front door: configure once, run every prepared stage.
///
/// `Pipeline` wires the §3 + §4 part of the study — world generation,
/// the measurement instruments, multi-source discovery, footprint
/// inference, and shared-IP classification — behind one builder:
///
/// ```no_run
/// # use iotmap::prelude::*;
/// let artifacts = Pipeline::new(WorldConfig::small(42)).threads(4).run()?;
/// # Ok::<(), Error>(())
/// ```
///
/// The thread count feeds `iotmap-par`; any value produces byte-identical
/// artifacts (the engine's determinism contract), so `threads(n)` is purely
/// a wall-clock knob. `0` means "all available cores". The default comes
/// from the `IOTMAP_THREADS` environment variable when set, otherwise from
/// the calling thread's current `iotmap_par` budget (serial unless raised).
pub struct Pipeline {
    config: WorldConfig,
    threads: usize,
    faults: FaultPlan,
    policy: StagePolicy,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    /// `IOTMAP_THREADS` was set but unparsable — surfaced in the run
    /// report rather than silently falling back.
    threads_env_unparsable: bool,
}

impl Pipeline {
    /// A pipeline over one world configuration.
    pub fn new(config: WorldConfig) -> Pipeline {
        let mut threads_env_unparsable = false;
        let threads = match std::env::var("IOTMAP_THREADS") {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    // Fall back exactly as if unset, but leave a trace:
                    // the run report gets a note, and operators see it
                    // immediately instead of wondering why one thread
                    // ran.
                    eprintln!(
                        "# IOTMAP_THREADS={raw:?} is not a thread count; \
                         using the default ({})",
                        iotmap_par::threads()
                    );
                    threads_env_unparsable = true;
                    iotmap_par::threads()
                }
            },
            Err(_) => iotmap_par::threads(),
        };
        Pipeline {
            config,
            threads,
            faults: FaultPlan::none(),
            policy: StagePolicy::default(),
            checkpoint_dir: None,
            resume: false,
            threads_env_unparsable,
        }
    }

    /// Set the worker-thread budget (`0` = all available cores).
    pub fn threads(mut self, n: usize) -> Pipeline {
        self.threads = n;
        self
    }

    /// Write a checkpoint into `dir` after each completed stage. The
    /// directory is created if needed; files are bound to this run's
    /// fingerprint (config + data faults + seed), so a different run
    /// refuses them.
    pub fn checkpoints(mut self, dir: impl Into<PathBuf>) -> Pipeline {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from (and keep checkpointing into) `dir`: stages whose
    /// checkpoints verify against this run's fingerprint are restored
    /// or replay-verified; corrupted or mismatched checkpoints are
    /// reported, discarded, and recomputed.
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Pipeline {
        self.checkpoint_dir = Some(dir.into());
        self.resume = true;
        self
    }

    /// Override the supervisor's retry/deadline policy.
    pub fn stage_policy(mut self, policy: StagePolicy) -> Pipeline {
        self.policy = policy;
        self
    }

    /// Run under a fault plan: every data source the methodology
    /// consumes — Censys sweeps, the ZGrab campaign, passive DNS, the
    /// active-DNS campaigns, and NetFlow export — suffers the plan's
    /// seeded faults, and the run degrades gracefully instead of
    /// failing (each source contributes what it has; the run report
    /// gains a `degraded_sources` section). [`FaultPlan::none`] — the
    /// default — is byte-identical to not calling this at all.
    pub fn faults(mut self, plan: FaultPlan) -> Pipeline {
        self.faults = plan;
        self
    }

    /// Run world-build → scan collection → discovery → footprints →
    /// shared-IP classification, producing the [`RunArtifacts`] every
    /// experiment and traffic pass builds on.
    ///
    /// Every stage runs under a [`Supervisor`]: panics are contained
    /// and retried under the stage policy, the fault plan's `crash`
    /// family is armed around each attempt, and — when
    /// [`checkpoints`](Pipeline::checkpoints) /
    /// [`resume`](Pipeline::resume) are configured — completed stages
    /// persist to disk and verified checkpoints short-circuit a rerun.
    /// Without crashes or checkpoints the supervised run is
    /// byte-identical to the unsupervised one.
    pub fn run(self) -> Result<RunArtifacts, Error> {
        let registry = PatternRegistry::try_paper_defaults()?;
        let mut supervisor = Supervisor::new(self.faults.seed)
            .policy(self.policy.clone())
            .crash(self.faults.crash.clone());
        if let Some(dir) = &self.checkpoint_dir {
            let fingerprint = recover::run_fingerprint(&self.config, &self.faults);
            let store = CheckpointStore::open(dir, fingerprint).map_err(|e| {
                Error::stage("checkpoint", format!("cannot open {}: {e}", dir.display()))
            })?;
            supervisor = supervisor.store(store, self.resume);
        }
        iotmap_par::with_threads(self.threads, || {
            Pipeline::build(
                &self.config,
                registry,
                &self.faults,
                &mut supervisor,
                self.threads_env_unparsable,
            )
        })
    }

    /// Borrow fresh data sources over a prepared world + scan set —
    /// the one place the source wiring (including the latency prober)
    /// is spelled out.
    fn data_sources<'a>(world: &'a World, scans: &'a CollectedScans) -> DataSources<'a> {
        DataSources {
            censys: &scans.censys,
            zgrab_v6: &scans.zgrab_v6,
            passive_dns: &world.passive_dns,
            zones: &world.zones,
            routeviews: &world.bgp,
            latency: Some(world),
        }
    }

    fn build(
        config: &WorldConfig,
        registry: PatternRegistry,
        faults: &FaultPlan,
        sup: &mut Supervisor,
        threads_env_unparsable: bool,
    ) -> Result<RunArtifacts, Error> {
        let _span = iotmap_obs::span!("experiment.prepare");
        if threads_env_unparsable {
            iotmap_obs::count!("notes.config.iotmap_threads_unparsable");
        }
        let period = config.study_period;

        // Generative stages: pure functions of the fingerprinted config,
        // checkpointed as replay witnesses (recomputed and verified on
        // resume rather than serialized).
        let mut world = sup.run_stage(
            "world",
            StageArtifact::Replay {
                witness: recover::world_witness,
            },
            || World::generate(config),
        )?;
        let scans = {
            let world = &world;
            sup.run_stage(
                "scans",
                StageArtifact::Replay {
                    witness: recover::scans_witness,
                },
                move || world.collect_scan_data_with(period, faults),
            )?
        };
        // The passive-DNS sensors degrade before anyone queries them:
        // every consumer (discovery, shared-IP classification, CNAME
        // chasing, later analyses) sees one consistent, already-faulted
        // database. An inactive plan skips the rebuild entirely. This
        // runs outside any stage: rebuilding from an already-degraded
        // database would not be retry-pure.
        if faults.passive_dns.is_active() {
            let _dspan = iotmap_obs::span!("experiment.pdns_degrade");
            world.passive_dns =
                world
                    .passive_dns
                    .degraded(faults.seed, &faults.passive_dns, &period);
        }

        // Derived stages: fully serialized, skipped on a verified
        // resume.
        let pipeline =
            DiscoveryPipeline::new(registry).faults(faults.seed, faults.active_dns.clone());
        let discovery = {
            let sources = Pipeline::data_sources(&world, &scans);
            sup.run_stage(
                "discovery",
                StageArtifact::Bytes {
                    encode: recover::put_discovery,
                    decode: recover::get_discovery,
                },
                || pipeline.run(&sources, period),
            )?
        };

        // Footprints and shared-IP classification.
        let fp_span = iotmap_obs::span!("experiment.footprints");
        let footprints = {
            let sources = Pipeline::data_sources(&world, &scans);
            let discovery = &discovery;
            sup.run_stage(
                "footprints",
                StageArtifact::Bytes {
                    encode: recover::put_footprints,
                    decode: recover::get_footprints,
                },
                move || {
                    discovery
                        .per_provider()
                        .map(|(name, disc)| {
                            (name.to_string(), FootprintInference::infer(disc, &sources))
                        })
                        .collect::<HashMap<String, Footprint>>()
                },
            )?
        };
        let shared_ips = {
            let classifier = SharedIpClassifier::new(pipeline.registry());
            let discovery = &discovery;
            let world = &world;
            sup.run_stage(
                "shared-ip",
                StageArtifact::Bytes {
                    encode: recover::put_shared_ips,
                    decode: recover::get_shared_ips,
                },
                move || {
                    let mut shared_ips = HashSet::new();
                    for (_, disc) in discovery.per_provider() {
                        let (_, shared) =
                            classifier.split_provider(disc, &world.passive_dns, period);
                        shared_ips.extend(shared.keys().copied());
                    }
                    shared_ips
                },
            )?
        };
        fp_span.exit();

        // The index borrows nothing and rebuilds in microseconds: never
        // checkpointed.
        let index = sup.run_stage("index", StageArtifact::Volatile, || {
            IpIndex::build(&discovery, &footprints, &shared_ips)
        })?;
        Ok(RunArtifacts {
            world,
            scans,
            discovery,
            footprints,
            shared_ips,
            index,
            faults: faults.clone(),
        })
    }
}

/// Everything a [`Pipeline`] run produced: the world, the collected scan
/// data, the discovery result, and the derived analyses. The traffic
/// passes (§5) live here too, because they re-walk the prepared world.
pub struct RunArtifacts {
    pub world: World,
    pub scans: CollectedScans,
    pub discovery: DiscoveryResult,
    pub footprints: HashMap<String, Footprint>,
    pub shared_ips: HashSet<IpAddr>,
    pub index: IpIndex,
    /// The fault plan the run was prepared under; the traffic passes
    /// re-apply its NetFlow component so export loss persists into §5.
    pub faults: FaultPlan,
}

impl RunArtifacts {
    /// A traffic simulator over the prepared world, carrying the run's
    /// NetFlow fault plan (a no-fault plan yields the plain simulator).
    fn simulator(&self) -> TrafficSimulator<'_> {
        TrafficSimulator::with_faults(&self.world, self.faults.seed, self.faults.netflow.clone())
    }

    /// Borrow fresh data sources (for analyses that need them later) —
    /// the same wiring the pipeline itself ran with, latency prober
    /// included.
    pub fn sources(&self) -> DataSources<'_> {
        Pipeline::data_sources(&self.world, &self.scans)
    }

    /// A canonical byte encoding of everything the run computed:
    /// witnesses for the generative stages plus the full serialized
    /// derived artifacts, all in sorted order. Two runs are
    /// artifact-identical iff their dumps are byte-equal — the
    /// instrument the crash-recovery experiment and the resume tests
    /// compare with.
    pub fn canonical_dump(&self) -> Vec<u8> {
        let mut w = iotmap_super::codec::ByteWriter::new();
        w.put_u64(recover::world_witness(&self.world));
        w.put_u64(recover::scans_witness(&self.scans));
        recover::put_discovery(&self.discovery, &mut w);
        recover::put_footprints(&self.footprints, &mut w);
        recover::put_shared_ips(&self.shared_ips, &mut w);
        w.put_u64(self.index.len() as u64);
        w.into_bytes()
    }

    /// First traffic pass: per-line backend contact sets over a period.
    pub fn contact_pass(&self, period: StudyPeriod) -> ContactSink<'_> {
        let _span = iotmap_obs::span!("traffic.contact_pass");
        let sim = self.simulator();
        let mut sink = ContactSink::new(&self.index);
        sim.run(period, &mut sink);
        sink
    }

    /// Scanner exclusion at the paper's threshold.
    pub fn excluded_lines(&self, contacts: &ContactSink<'_>) -> HashSet<LineId> {
        let _span = iotmap_obs::span!("traffic.scanner_exclusion");
        let analysis = ScannerAnalysis::new(&self.index, contacts);
        let flagged = analysis.flagged_lines(SCANNER_THRESHOLD);
        iotmap_obs::gauge!("traffic.scanner.lines_excluded", flagged.len() as i64);
        flagged
    }

    /// Second traffic pass: the full analysis report with scanners
    /// excluded.
    pub fn analysis_pass(&self, period: StudyPeriod, excluded: &HashSet<LineId>) -> AnalysisReport {
        let _span = iotmap_obs::span!("traffic.analysis_pass");
        let sim = self.simulator();
        let mut sink = AnalysisSink::new(&self.index, excluded, period);
        sim.run(period, &mut sink);
        sink.into_report()
    }

    /// Convenience: contact pass → exclusion → analysis pass.
    pub fn full_traffic_analysis(&self, period: StudyPeriod) -> (AnalysisReport, HashSet<LineId>) {
        let contacts = self.contact_pass(period);
        let excluded = self.excluded_lines(&contacts);
        (self.analysis_pass(period, &excluded), excluded)
    }
}

/// The ~15 types a typical caller needs, in one import:
/// `use iotmap::prelude::*;`.
pub mod prelude {
    pub use crate::{Pipeline, RunArtifacts, SCANNER_THRESHOLD};
    pub use iotmap_core::{
        DataSources, DiscoveryPipeline, DiscoveryResult, Footprint, PatternRegistry,
        ProviderDiscovery, Source,
    };
    pub use iotmap_nettypes::{Date, DomainName, Error, SimRng, StudyPeriod};
    pub use iotmap_obs::{Recorder, Registry, RunReport};
    pub use iotmap_par::{set_threads, with_threads};
    pub use iotmap_super::{CheckpointStore, StagePolicy, Supervisor};
    pub use iotmap_traffic::AnalysisReport;
    pub use iotmap_world::{CollectedScans, World, WorldConfig};
}
