//! # iotmap — the IoT backend ecosystem, reproduced
//!
//! A full reproduction of *"Deep Dive into the IoT Backend Ecosystem"*
//! (Saidi, Matic, Gasser, Smaragdakis, Feldmann — ACM IMC 2022) as a Rust
//! workspace: the paper's multi-source IoT-backend discovery methodology,
//! every substrate it depends on (TLS scanning, passive/active DNS, NetFlow,
//! BGP, geolocation), and a deterministic synthetic Internet to run it
//! against.
//!
//! This facade crate re-exports the workspace members under stable module
//! names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`nettypes`] | `iotmap-nettypes` | addressing, prefixes, geo, time, RNG |
//! | [`dregex`] | `iotmap-dregex` | the domain-pattern regex engine |
//! | [`dns`] | `iotmap-dns` | zones, resolution, passive & active DNS |
//! | [`tls`] | `iotmap-tls` | certificates and handshake behaviour |
//! | [`scan`] | `iotmap-scan` | Censys-like scanning, hitlists, looking glasses |
//! | [`netflow`] | `iotmap-netflow` | flow records, sampling, collectors |
//! | [`stats`] | `iotmap-stats` | ECDFs, histograms, time series |
//! | [`world`] | `iotmap-world` | the synthetic Internet ground truth |
//! | [`core`] | `iotmap-core` | the paper's discovery & characterization pipeline |
//! | [`traffic`] | `iotmap-traffic` | the ISP-side traffic analyses |
//! | [`par`] | `iotmap-par` | deterministic std-only parallel execution |
//! | [`supervisor`] | `iotmap-super` | supervised stage runtime: retries, deadlines, checkpoint/resume |
//!
//! and adds the front door itself: [`Pipeline`], which wires world-build →
//! discovery → footprint inference → shared-IP classification behind one
//! builder, and [`prelude`] for the types a typical caller needs.
//!
//! ## Quickstart
//!
//! ```no_run
//! use iotmap::prelude::*;
//!
//! // Build a deterministic synthetic Internet and run the paper's
//! // methodology over it — on 4 worker threads, byte-identical to a
//! // serial run.
//! let artifacts = Pipeline::new(WorldConfig::small(42))
//!     .threads(4)
//!     .run()
//!     .expect("pipeline");
//! for (provider, discovery) in artifacts.discovery.per_provider() {
//!     println!("{provider}: {} backend IPs", discovery.ips.len());
//! }
//! // Traffic passes ride on the prepared artifacts (§5).
//! let period = artifacts.world.config.study_period;
//! let (report, excluded) = artifacts.full_traffic_analysis(period);
//! println!("{} scanner lines excluded", excluded.len());
//! # let _ = report;
//! ```
//!
//! See `examples/` for complete, runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment-by-experiment reproduction notes.

pub use iotmap_core as core;
pub use iotmap_delta as delta;
pub use iotmap_dns as dns;
pub use iotmap_dregex as dregex;
pub use iotmap_faults as faults;
pub use iotmap_netflow as netflow;
pub use iotmap_nettypes as nettypes;
pub use iotmap_par as par;
pub use iotmap_scan as scan;
pub use iotmap_scenario as scenario;
pub use iotmap_stats as stats;
pub use iotmap_tls as tls;
pub use iotmap_traffic as traffic;
pub use iotmap_world as world;
// `super` is a keyword, so the supervised runtime re-exports as
// `supervisor`.
pub use iotmap_super as supervisor;

mod cache;
pub mod recover;

use crate::cache::WorldCache;
use iotmap_core::{
    DataSources, DiscoveryPipeline, DiscoveryResult, Footprint, FootprintInference,
    IncrementalDiscovery, PatternRegistry, SharedIpClassifier,
};
use iotmap_delta::WorldDelta;
use iotmap_dns::PassiveDnsDb;
use iotmap_faults::FaultPlan;
use iotmap_netflow::LineId;
use iotmap_nettypes::{Error, StudyPeriod};
use iotmap_scenario::Scenario;
use iotmap_super::{CheckpointStore, StageArtifact, StagePolicy, Supervisor};
use iotmap_traffic::{
    AnalysisFold, AnalysisReport, ContactFold, ContactSink, IpIndex, ScannerAnalysis,
};
use iotmap_world::{CollectedScans, TrafficSimulator, World, WorldConfig};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;
use std::path::{Path, PathBuf};

/// The scanner-exclusion threshold the paper settles on (§5.2).
pub const SCANNER_THRESHOLD: usize = 100;

/// The pipeline front door: configure once, run every prepared stage.
///
/// `Pipeline` wires the §3 + §4 part of the study — world generation,
/// the measurement instruments, multi-source discovery, footprint
/// inference, and shared-IP classification — behind one builder:
///
/// ```no_run
/// # use iotmap::prelude::*;
/// let artifacts = Pipeline::new(WorldConfig::small(42)).threads(4).run()?;
/// # Ok::<(), Error>(())
/// ```
///
/// The thread count feeds `iotmap-par`; any value produces byte-identical
/// artifacts (the engine's determinism contract), so `threads(n)` is purely
/// a wall-clock knob. `0` means "all available cores". The default comes
/// from the `IOTMAP_THREADS` environment variable when set, otherwise from
/// the calling thread's current `iotmap_par` budget (serial unless raised).
pub struct Pipeline {
    config: WorldConfig,
    threads: usize,
    faults: FaultPlan,
    policy: StagePolicy,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    cache_dir: Option<PathBuf>,
    with_scenario: Option<Scenario>,
    /// `IOTMAP_THREADS` was set but unparsable — surfaced in the run
    /// report rather than silently falling back.
    threads_env_unparsable: bool,
}

impl Pipeline {
    /// A pipeline over one world configuration.
    pub fn new(config: WorldConfig) -> Pipeline {
        let mut threads_env_unparsable = false;
        let threads = match std::env::var("IOTMAP_THREADS") {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    // Fall back exactly as if unset, but leave a trace:
                    // the run report gets a note, and operators see it
                    // immediately instead of wondering why one thread
                    // ran.
                    eprintln!(
                        "# IOTMAP_THREADS={raw:?} is not a thread count; \
                         using the default ({})",
                        iotmap_par::threads()
                    );
                    threads_env_unparsable = true;
                    iotmap_par::threads()
                }
            },
            Err(_) => iotmap_par::threads(),
        };
        Pipeline {
            config,
            threads,
            faults: FaultPlan::none(),
            policy: StagePolicy::default(),
            checkpoint_dir: None,
            resume: false,
            cache_dir: std::env::var_os("IOTMAP_CACHE").map(PathBuf::from),
            with_scenario: None,
            threads_env_unparsable,
        }
    }

    /// Set the worker-thread budget (`0` = all available cores).
    pub fn threads(mut self, n: usize) -> Pipeline {
        self.threads = n;
        self
    }

    /// Write a checkpoint into `dir` after each completed stage. The
    /// directory is created if needed; files are bound to this run's
    /// fingerprint (config + data faults + seed), so a different run
    /// refuses them.
    pub fn checkpoints(mut self, dir: impl Into<PathBuf>) -> Pipeline {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from (and keep checkpointing into) `dir`: stages whose
    /// checkpoints verify against this run's fingerprint are restored
    /// or replay-verified; corrupted or mismatched checkpoints are
    /// reported, discarded, and recomputed.
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Pipeline {
        self.checkpoint_dir = Some(dir.into());
        self.resume = true;
        self
    }

    /// Memoize prepared artifacts in `dir`: the world's passive-DNS
    /// table, the synthesized scan datasets, and the engine's derived
    /// artifacts are written on first computation and reloaded —
    /// fingerprint-verified — on every later run with the same config and
    /// data-fault plan. Corrupted or stale entries are detected, counted
    /// (`cache.invalidated`), and silently regenerated. Defaults to the
    /// `IOTMAP_CACHE` environment variable when set; calling this wins
    /// over the env var.
    ///
    /// **Precedence** when several run-reuse mechanisms are configured
    /// together (this is the one place it's spelled out):
    ///
    /// 1. [`resume`](Pipeline::resume) checkpoints are consulted first —
    ///    the supervisor restores a verified checkpoint before the stage
    ///    body (and with it the cache lookup) ever runs;
    /// 2. the cache fills any stage the checkpoints didn't;
    /// 3. recomputed results are written back to *both* the cache and —
    ///    when [`checkpoints`](Pipeline::checkpoints) is set — the
    ///    checkpoint store.
    ///
    /// Checkpoints bind to one run's fingerprint in one directory; the
    /// cache keys every entry by fingerprint in its file name, so many
    /// configurations can share one cache directory.
    pub fn cache(mut self, dir: impl Into<PathBuf>) -> Pipeline {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Override the supervisor's retry/deadline policy.
    pub fn stage_policy(mut self, policy: StagePolicy) -> Pipeline {
        self.policy = policy;
        self
    }

    /// Run under a declarative scenario: the compiled event timeline
    /// installs into the generated world (inside the world stage, before
    /// any scan is synthesized), so migrations, fronting flips, cert
    /// storms, planted blocklist entries, and re-declared outages shape
    /// everything the instruments observe — and every longitudinal
    /// [`advance`](PreparedWorld::advance), since day deltas read the
    /// same world views. The scenario's fingerprint is folded into the
    /// run identity, so caches and checkpoints never alias an
    /// event-free run.
    pub fn scenario(mut self, scenario: Scenario) -> Pipeline {
        self.with_scenario = Some(scenario);
        self
    }

    /// Run under a fault plan: every data source the methodology
    /// consumes — Censys sweeps, the ZGrab campaign, passive DNS, the
    /// active-DNS campaigns, and NetFlow export — suffers the plan's
    /// seeded faults, and the run degrades gracefully instead of
    /// failing (each source contributes what it has; the run report
    /// gains a `degraded_sources` section). [`FaultPlan::none`] — the
    /// default — is byte-identical to not calling this at all.
    pub fn faults(mut self, plan: FaultPlan) -> Pipeline {
        self.faults = plan;
        self
    }

    /// Run the full study: [`prepare`](Pipeline::prepare) the world and
    /// scan datasets, then [`execute`](PreparedWorld::execute) the engine
    /// over them — world-build → scan collection → discovery → footprints
    /// → shared-IP classification, producing the [`RunArtifacts`] every
    /// experiment and traffic pass builds on.
    ///
    /// Every stage runs under a [`Supervisor`]: panics are contained
    /// and retried under the stage policy, the fault plan's `crash`
    /// family is armed around each attempt, and — when
    /// [`checkpoints`](Pipeline::checkpoints) /
    /// [`resume`](Pipeline::resume) are configured — completed stages
    /// persist to disk and verified checkpoints short-circuit a rerun.
    /// Without crashes or checkpoints the supervised run is
    /// byte-identical to the unsupervised one.
    pub fn run(self) -> Result<RunArtifacts, Error> {
        self.prepare()?.execute_owned()
    }

    /// Phase one of [`run`](Pipeline::run): generate the world and
    /// synthesize the scan datasets, returning a [`PreparedWorld`] that
    /// can be [executed](PreparedWorld::execute) — repeatedly — into full
    /// [`RunArtifacts`].
    ///
    /// Preparation is the expensive half of a run and is a pure function
    /// of the config and data-fault plan, which is what makes the
    /// [`cache`](Pipeline::cache) effective: a warm prepare is mostly
    /// deserialization.
    pub fn prepare(self) -> Result<PreparedWorld, Error> {
        let mut supervisor = Supervisor::new(self.faults.seed)
            .policy(self.policy.clone())
            .crash(self.faults.crash.clone());
        let scenario_fp = self.with_scenario.as_ref().map(Scenario::fingerprint);
        if let Some(dir) = &self.checkpoint_dir {
            let fingerprint =
                recover::run_fingerprint_with(&self.config, &self.faults, scenario_fp);
            let store = CheckpointStore::open(dir, fingerprint).map_err(|e| {
                Error::stage("checkpoint", format!("cannot open {}: {e}", dir.display()))
            })?;
            supervisor = supervisor.store(store, self.resume);
        }
        let cache = match &self.cache_dir {
            Some(dir) => Some(WorldCache::open(
                dir,
                &self.config,
                &self.faults,
                scenario_fp,
            )?),
            None => None,
        };
        let (world, scans) = iotmap_par::with_threads(self.threads, || {
            Pipeline::prepare_stages(
                &self.config,
                &self.faults,
                self.with_scenario.as_ref(),
                &mut supervisor,
                cache.as_ref(),
                self.threads_env_unparsable,
            )
        })?;
        Ok(PreparedWorld {
            world,
            scans,
            faults: self.faults,
            with_scenario: self.with_scenario,
            policy: self.policy,
            threads: self.threads,
            checkpoint_dir: self.checkpoint_dir,
            // A witness mismatch during prepare invalidates trust in the
            // whole checkpoint directory; the execute phase then
            // recomputes instead of restoring.
            resume: supervisor.resume_trusted(),
            cache_dir: self.cache_dir,
            rolled: None,
        })
    }

    /// Borrow fresh data sources over a prepared world + scan set —
    /// the one place the source wiring (including the latency prober)
    /// is spelled out.
    fn data_sources<'a>(world: &'a World, scans: &'a CollectedScans) -> DataSources<'a> {
        DataSources {
            censys: &scans.censys,
            zgrab_v6: &scans.zgrab_v6,
            passive_dns: &world.passive_dns,
            zones: &world.zones,
            routeviews: &world.bgp,
            latency: Some(world),
        }
    }

    /// The generative stages: world build and scan synthesis. Cache
    /// lookups happen *inside* the stage bodies, so the supervisor's
    /// resume checkpoints keep precedence (a verified checkpoint restores
    /// before the body runs) and a retried stage re-reads the same disk
    /// state.
    fn prepare_stages(
        config: &WorldConfig,
        faults: &FaultPlan,
        scenario: Option<&Scenario>,
        sup: &mut Supervisor,
        cache: Option<&WorldCache>,
        threads_env_unparsable: bool,
    ) -> Result<(World, CollectedScans), Error> {
        let _span = iotmap_obs::span!("experiment.prepare");
        if threads_env_unparsable {
            iotmap_obs::count!("notes.config.iotmap_threads_unparsable");
        }
        let period = config.study_period;

        // Generative stages: pure functions of the fingerprinted config,
        // checkpointed as replay witnesses (recomputed and verified on
        // resume rather than serialized). The passive-DNS table — the
        // single most expensive world phase — is the cacheable unit:
        // every other phase forks the root RNG by name, so substituting a
        // cached table leaves the rest of the build byte-identical.
        let world = sup.run_stage(
            "world",
            StageArtifact::Replay {
                witness: recover::world_witness,
            },
            || {
                let mut world = match cache.and_then(WorldCache::load_passive_dns) {
                    Some(db) => World::generate_with_pdns(config, Some(db)),
                    None => {
                        let world = World::generate(config);
                        if let Some(cache) = cache {
                            cache.save_passive_dns(&world.passive_dns);
                        }
                        world
                    }
                };
                // The timeline installs after generation (so the cached
                // pristine passive-DNS table stays scenario-independent)
                // but before any scan synthesis, so every instrument
                // observes the post-event world. Installation never
                // fails: unknown names degrade to a skip counter.
                if let Some(sc) = scenario {
                    world.install_timeline(&sc.timeline, &sc.name);
                }
                world
            },
        )?;
        let scans = {
            let world = &world;
            sup.run_stage(
                "scans",
                StageArtifact::Replay {
                    witness: recover::scans_witness,
                },
                move || match cache.and_then(WorldCache::load_scans) {
                    Some(scans) => scans,
                    None => {
                        let scans = world.collect_scan_data_with(period, faults);
                        if let Some(cache) = cache {
                            cache.save_scans(&scans);
                        }
                        scans
                    }
                },
            )?
        };
        Ok((world, scans))
    }

    /// The engine: passive-DNS degradation, discovery, footprints,
    /// shared-IP classification, and the IP index, over an
    /// already-prepared world.
    fn engine_stages(
        mut world: World,
        scans: CollectedScans,
        registry: PatternRegistry,
        faults: &FaultPlan,
        sup: &mut Supervisor,
        cache: Option<&WorldCache>,
    ) -> Result<RunArtifacts, Error> {
        let _span = iotmap_obs::span!("experiment.execute");
        let period = world.config.study_period;
        // The passive-DNS sensors degrade before anyone queries them:
        // every consumer (discovery, shared-IP classification, CNAME
        // chasing, later analyses) sees one consistent, already-faulted
        // database. An inactive plan skips the rebuild entirely. This
        // runs outside any stage: rebuilding from an already-degraded
        // database would not be retry-pure.
        if faults.passive_dns.is_active() {
            let _dspan = iotmap_obs::span!("experiment.pdns_degrade");
            world.passive_dns =
                world
                    .passive_dns
                    .degraded(faults.seed, &faults.passive_dns, &period);
        }

        // Derived stages: fully serialized, skipped on a verified
        // resume.
        let pipeline =
            DiscoveryPipeline::new(registry).faults(faults.seed, faults.active_dns.clone());
        let discovery = {
            let sources = Pipeline::data_sources(&world, &scans);
            sup.run_stage(
                "discovery",
                StageArtifact::Bytes {
                    encode: recover::put_discovery,
                    decode: recover::get_discovery,
                },
                || match cache.and_then(WorldCache::load_discovery) {
                    Some(discovery) => discovery,
                    None => {
                        let discovery = pipeline.run(&sources, period);
                        if let Some(cache) = cache {
                            cache.save_discovery(&discovery);
                        }
                        discovery
                    }
                },
            )?
        };

        // Footprints and shared-IP classification.
        let fp_span = iotmap_obs::span!("experiment.footprints");
        let footprints = {
            let sources = Pipeline::data_sources(&world, &scans);
            let discovery = &discovery;
            sup.run_stage(
                "footprints",
                StageArtifact::Bytes {
                    encode: recover::put_footprints,
                    decode: recover::get_footprints,
                },
                move || match cache.and_then(WorldCache::load_footprints) {
                    Some(footprints) => footprints,
                    None => {
                        let footprints = Pipeline::derive_footprints(discovery, &sources);
                        if let Some(cache) = cache {
                            cache.save_footprints(&footprints);
                        }
                        footprints
                    }
                },
            )?
        };
        let shared_ips = {
            let registry = pipeline.registry();
            let discovery = &discovery;
            let world = &world;
            sup.run_stage(
                "shared-ip",
                StageArtifact::Bytes {
                    encode: recover::put_shared_ips,
                    decode: recover::get_shared_ips,
                },
                move || match cache.and_then(WorldCache::load_shared_ips) {
                    Some(shared_ips) => shared_ips,
                    None => {
                        let shared_ips = Pipeline::derive_shared_ips(
                            registry,
                            discovery,
                            &world.passive_dns,
                            period,
                        );
                        if let Some(cache) = cache {
                            cache.save_shared_ips(&shared_ips);
                        }
                        shared_ips
                    }
                },
            )?
        };
        fp_span.exit();

        // The index borrows nothing and rebuilds in microseconds: never
        // checkpointed.
        let index = sup.run_stage("index", StageArtifact::Volatile, || {
            IpIndex::build(&discovery, &footprints, &shared_ips)
        })?;
        Ok(RunArtifacts {
            world,
            scans,
            discovery,
            footprints,
            shared_ips,
            index,
            faults: faults.clone(),
        })
    }

    /// The footprint stage's body — shared between the supervised engine
    /// run and the incremental roll-forward, so both derive the exact
    /// same artifact from a given discovery result.
    fn derive_footprints(
        discovery: &DiscoveryResult,
        sources: &DataSources<'_>,
    ) -> HashMap<String, Footprint> {
        discovery
            .per_provider()
            .map(|(name, disc)| (name.to_string(), FootprintInference::infer(disc, sources)))
            .collect()
    }

    /// The shared-IP stage's body — see [`Pipeline::derive_footprints`].
    fn derive_shared_ips(
        registry: &PatternRegistry,
        discovery: &DiscoveryResult,
        passive_dns: &PassiveDnsDb,
        period: StudyPeriod,
    ) -> HashSet<IpAddr> {
        let classifier = SharedIpClassifier::new(registry);
        let mut shared_ips = HashSet::new();
        for (_, disc) in discovery.per_provider() {
            let (_, shared) = classifier.split_provider(disc, passive_dns, period);
            shared_ips.extend(shared.keys().copied());
        }
        shared_ips
    }
}

/// A prepared run: the generated world and synthesized scan datasets,
/// plus everything needed to execute the discovery engine over them.
///
/// Produced by [`Pipeline::prepare`]; consumed — repeatedly, if you like —
/// by [`execute`](PreparedWorld::execute). Preparation is the expensive
/// half of a run, so holding a `PreparedWorld` lets callers amortize it
/// across engine runs with different fault plans or thread budgets:
///
/// ```no_run
/// # use iotmap::prelude::*;
/// # use iotmap::faults::FaultPlan;
/// let prepared = Pipeline::new(WorldConfig::small(42)).prepare()?;
/// let clean = prepared.execute()?;
/// let faulted = prepared.execute_with(&FaultPlan::heavy())?;
/// # let _ = (clean, faulted);
/// # Ok::<(), Error>(())
/// ```
///
/// The world here is **pristine**: passive-DNS degradation (a fault-plan
/// effect) is applied by the engine, per execution, on a copy.
///
/// A prepared world is also the anchor of a **longitudinal run**:
/// [`next_delta`](PreparedWorld::next_delta) generates the next day's
/// [`WorldDelta`], and [`advance`](PreparedWorld::advance) rolls the
/// tracked artifacts forward at per-day cost. The pristine corpus is
/// extended in lockstep, so a plain [`execute`](PreparedWorld::execute)
/// at any point is the from-scratch oracle the rolled artifacts must be
/// byte-identical to.
pub struct PreparedWorld {
    /// The generated world, passive DNS not yet degraded.
    pub world: World,
    /// The synthesized scan datasets.
    pub scans: CollectedScans,
    faults: FaultPlan,
    with_scenario: Option<Scenario>,
    policy: StagePolicy,
    threads: usize,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    cache_dir: Option<PathBuf>,
    /// The incrementally rolled-forward run, once
    /// [`advance`](PreparedWorld::advance) (or
    /// [`rolled`](PreparedWorld::rolled)) has bootstrapped it.
    rolled: Option<RolledRun>,
}

/// The artifacts an incremental run rolls forward, plus the match state
/// (`IncrementalDiscovery`) that makes the next day O(churn).
struct RolledRun {
    artifacts: RunArtifacts,
    tracker: IncrementalDiscovery,
    /// Discovered IPs currently classified dedicated (the complement,
    /// within the discovered set, of `artifacts.shared_ips`). Window
    /// growth only ever adds inverse-lookup rows, so verdicts are
    /// monotone — dedicated can flip to shared, never back — and a day
    /// only needs to re-classify the IPs it touched.
    dedicated: HashSet<IpAddr>,
}

impl PreparedWorld {
    /// Change the worker-thread budget for subsequent executions
    /// (`0` = all available cores).
    pub fn threads(mut self, n: usize) -> PreparedWorld {
        self.threads = n;
        self
    }

    /// The scenario the run was prepared under, if any — its timeline is
    /// already installed in [`world`](PreparedWorld::world).
    pub fn scenario(&self) -> Option<&Scenario> {
        self.with_scenario.as_ref()
    }

    /// Run the engine — passive-DNS degradation, discovery, footprints,
    /// shared-IP classification, index — under the fault plan the world
    /// was prepared with. The prepared world is untouched; each call
    /// works on its own copy, so `execute` can run any number of times.
    pub fn execute(&self) -> Result<RunArtifacts, Error> {
        self.engine(self.world.clone(), self.scans.clone(), &self.faults, true)
    }

    /// [`execute`](PreparedWorld::execute) under a different fault plan —
    /// engine-side families only. The scan datasets were synthesized
    /// under the *prepared* plan, so its Censys/ZGrab faults stay baked
    /// in; the override governs passive-DNS degradation, the active-DNS
    /// campaigns, NetFlow export, and crash injection. Checkpoints bind
    /// to the prepared plan's fingerprint and are not consulted here.
    pub fn execute_with(&self, faults: &FaultPlan) -> Result<RunArtifacts, Error> {
        self.engine(self.world.clone(), self.scans.clone(), faults, false)
    }

    /// The consuming path [`Pipeline::run`] takes: no artifact clones.
    fn execute_owned(self) -> Result<RunArtifacts, Error> {
        let PreparedWorld {
            world,
            scans,
            faults,
            with_scenario,
            policy,
            threads,
            checkpoint_dir,
            resume,
            cache_dir,
            rolled: _,
        } = self;
        Self::engine_inner(
            world,
            scans,
            &faults,
            with_scenario.as_ref().map(Scenario::fingerprint),
            &policy,
            threads,
            checkpoint_dir.as_deref(),
            resume,
            cache_dir.as_deref(),
        )
    }

    fn engine(
        &self,
        world: World,
        scans: CollectedScans,
        faults: &FaultPlan,
        use_checkpoints: bool,
    ) -> Result<RunArtifacts, Error> {
        Self::engine_inner(
            world,
            scans,
            faults,
            self.with_scenario.as_ref().map(Scenario::fingerprint),
            &self.policy,
            self.threads,
            if use_checkpoints {
                self.checkpoint_dir.as_deref()
            } else {
                None
            },
            self.resume,
            self.cache_dir.as_deref(),
        )
    }

    /// Generate the [`WorldDelta`] for the day after the rolled run's
    /// current end (or after the prepared period, before any advance):
    /// the same seeded sweep a from-scratch collection over the extended
    /// period would perform, under the prepared fault plan.
    pub fn next_delta(&self) -> WorldDelta {
        let period = self
            .rolled
            .as_ref()
            .map(|r| r.tracker.period())
            .unwrap_or(self.world.config.study_period);
        iotmap_par::with_threads(self.threads, || {
            WorldDelta::next_day(&self.world, period, &self.faults)
        })
    }

    /// The incrementally rolled-forward artifacts, bootstrapping them
    /// from a fresh [`execute`](PreparedWorld::execute) on first use.
    pub fn rolled(&mut self) -> Result<&RunArtifacts, Error> {
        self.ensure_rolled()?;
        Ok(&self.rolled.as_ref().expect("just bootstrapped").artifacts)
    }

    fn ensure_rolled(&mut self) -> Result<(), Error> {
        if self.rolled.is_some() {
            return Ok(());
        }
        let artifacts = self.execute()?;
        let registry = PatternRegistry::try_paper_defaults()?;
        let pipeline = DiscoveryPipeline::new(registry)
            .faults(self.faults.seed, self.faults.active_dns.clone());
        // The tracker captures the match state of the run it will extend,
        // so it reads the *degraded* database inside the artifacts, not
        // the pristine prepared one.
        let tracker = IncrementalDiscovery::bootstrap(
            &pipeline,
            &artifacts.world.passive_dns,
            artifacts.world.config.study_period,
        );
        let mut dedicated = HashSet::new();
        for (_, disc) in artifacts.discovery.per_provider() {
            for &ip in disc.ips.keys() {
                if !artifacts.shared_ips.contains(&ip) {
                    dedicated.insert(ip);
                }
            }
        }
        self.rolled = Some(RolledRun {
            artifacts,
            tracker,
            dedicated,
        });
        Ok(())
    }

    /// Ingest one [`WorldDelta`]: roll the tracked artifacts forward so
    /// they cover the extended period, at a cost proportional to the
    /// day's churn rather than the corpus. The pristine prepared corpus
    /// is extended in lockstep, so a later
    /// [`execute`](PreparedWorld::execute) re-runs the whole merged
    /// corpus from scratch — the byte-identity oracle
    /// (`tests/incremental_equivalence.rs`) the rolled artifacts are
    /// pinned against.
    pub fn advance(&mut self, delta: &WorldDelta) -> Result<&RunArtifacts, Error> {
        self.ensure_rolled()?;
        let old_period = self
            .rolled
            .as_ref()
            .expect("just bootstrapped")
            .tracker
            .period();
        if delta.from_end != old_period.end {
            return Err(Error::stage(
                "advance",
                format!(
                    "delta does not extend the rolled run: delta starts at {}, run ends at {}",
                    delta.from_end, old_period.end
                ),
            ));
        }
        let new_period = StudyPeriod::new(old_period.start, delta.to_end);

        // Pristine corpus first (short borrows), then the rolled run.
        self.scans.censys.extend(delta.snapshots.iter().cloned());
        self.world.config.study_period = new_period;
        let threads = self.threads;
        let fault_seed = self.faults.seed;
        let active_dns = self.faults.active_dns.clone();

        let registry = PatternRegistry::try_paper_defaults()?;
        let pipeline = DiscoveryPipeline::new(registry).faults(fault_seed, active_dns);
        let rolled = self.rolled.as_mut().expect("just bootstrapped");
        let RunArtifacts {
            world,
            scans,
            discovery,
            footprints,
            shared_ips,
            index,
            ..
        } = &mut rolled.artifacts;
        scans.censys.extend(delta.snapshots.iter().cloned());
        world.config.study_period = new_period;
        let tracker = &mut rolled.tracker;
        let dedicated = &mut rolled.dedicated;
        iotmap_par::with_threads(threads, || {
            let _span = iotmap_obs::span!("experiment.advance");
            let sources = Pipeline::data_sources(world, scans);
            let fresh_ips = tracker.advance(
                &pipeline,
                discovery,
                &sources,
                new_period,
                delta.snapshots.len(),
            );
            // The footprint stage is a pure function of the discovery
            // result and sources: recompute it with the same body the
            // supervised engine runs.
            *footprints = Pipeline::derive_footprints(discovery, &sources);
            // Shared-IP classification is per-IP and monotone under
            // window growth, so only the touched IPs need a verdict: the
            // rdata IPs of newly revealed rows (their inverse lookup
            // changed — a dedicated IP may have flipped) and the newly
            // discovered IPs (never classified).
            let classifier = SharedIpClassifier::new(pipeline.registry());
            let pdns = &world.passive_dns;
            for ip in fresh_ips {
                if dedicated.contains(&ip) && classifier.classify(ip, pdns, new_period).is_shared()
                {
                    dedicated.remove(&ip);
                    shared_ips.insert(ip);
                }
            }
            for (_, disc) in discovery.per_provider() {
                for &ip in disc.ips.keys() {
                    if !dedicated.contains(&ip) && !shared_ips.contains(&ip) {
                        if classifier.classify(ip, pdns, new_period).is_shared() {
                            shared_ips.insert(ip);
                        } else {
                            dedicated.insert(ip);
                        }
                    }
                }
            }
            *index = IpIndex::build(discovery, footprints, shared_ips);
        });
        Ok(&self.rolled.as_ref().expect("just bootstrapped").artifacts)
    }

    #[allow(clippy::too_many_arguments)]
    fn engine_inner(
        world: World,
        scans: CollectedScans,
        faults: &FaultPlan,
        scenario_fp: Option<u64>,
        policy: &StagePolicy,
        threads: usize,
        checkpoint_dir: Option<&Path>,
        resume: bool,
        cache_dir: Option<&Path>,
    ) -> Result<RunArtifacts, Error> {
        let registry = PatternRegistry::try_paper_defaults()?;
        // The engine's stage numbering continues the prepare phase's
        // (world = 00, scans = 01), so a split run writes the same
        // checkpoint files as the old single-supervisor pipeline.
        let mut supervisor = Supervisor::new(faults.seed)
            .policy(policy.clone())
            .crash(faults.crash.clone())
            .start_index(2);
        if let Some(dir) = checkpoint_dir {
            let fingerprint = recover::run_fingerprint_with(&world.config, faults, scenario_fp);
            let store = CheckpointStore::open(dir, fingerprint).map_err(|e| {
                Error::stage("checkpoint", format!("cannot open {}: {e}", dir.display()))
            })?;
            supervisor = supervisor.store(store, resume);
        }
        let cache = match cache_dir {
            Some(dir) => Some(WorldCache::open(dir, &world.config, faults, scenario_fp)?),
            None => None,
        };
        iotmap_par::with_threads(threads, || {
            Pipeline::engine_stages(
                world,
                scans,
                registry,
                faults,
                &mut supervisor,
                cache.as_ref(),
            )
        })
    }
}

/// Everything a [`Pipeline`] run produced: the world, the collected scan
/// data, the discovery result, and the derived analyses. The traffic
/// passes (§5) live here too, because they re-walk the prepared world.
pub struct RunArtifacts {
    pub world: World,
    pub scans: CollectedScans,
    pub discovery: DiscoveryResult,
    pub footprints: HashMap<String, Footprint>,
    pub shared_ips: HashSet<IpAddr>,
    pub index: IpIndex,
    /// The fault plan the run was prepared under; the traffic passes
    /// re-apply its NetFlow component so export loss persists into §5.
    pub faults: FaultPlan,
}

impl RunArtifacts {
    /// A traffic simulator over the prepared world, carrying the run's
    /// NetFlow fault plan (a no-fault plan yields the plain simulator).
    fn simulator(&self) -> TrafficSimulator<'_> {
        TrafficSimulator::with_faults(&self.world, self.faults.seed, self.faults.netflow.clone())
    }

    /// Borrow fresh data sources (for analyses that need them later) —
    /// the same wiring the pipeline itself ran with, latency prober
    /// included.
    pub fn sources(&self) -> DataSources<'_> {
        Pipeline::data_sources(&self.world, &self.scans)
    }

    /// A canonical byte encoding of everything the run computed:
    /// witnesses for the generative stages plus the full serialized
    /// derived artifacts, all in sorted order. Two runs are
    /// artifact-identical iff their dumps are byte-equal — the
    /// instrument the crash-recovery experiment and the resume tests
    /// compare with.
    pub fn canonical_dump(&self) -> Vec<u8> {
        let mut w = iotmap_super::codec::ByteWriter::new();
        w.put_u64(recover::world_witness(&self.world));
        w.put_u64(recover::scans_witness(&self.scans));
        recover::put_discovery(&self.discovery, &mut w);
        recover::put_footprints(&self.footprints, &mut w);
        recover::put_shared_ips(&self.shared_ips, &mut w);
        w.put_u64(self.index.len() as u64);
        w.into_bytes()
    }

    /// First traffic pass: per-line backend contact sets over a period.
    ///
    /// Runs as a streaming fold: per-shard partials merged in shard
    /// order, byte-identical to the serial sink at any thread count.
    pub fn contact_pass(&self, period: StudyPeriod) -> ContactSink<'_> {
        let _span = iotmap_obs::span!("traffic.contact_pass");
        let sim = self.simulator();
        let (per_line, _) = sim.run_fold(period, &ContactFold::new(&self.index));
        ContactSink::from_parts(&self.index, per_line)
    }

    /// Scanner exclusion at the paper's threshold.
    pub fn excluded_lines(&self, contacts: &ContactSink<'_>) -> HashSet<LineId> {
        let _span = iotmap_obs::span!("traffic.scanner_exclusion");
        let analysis = ScannerAnalysis::new(&self.index, contacts);
        let flagged = analysis.flagged_lines(SCANNER_THRESHOLD);
        iotmap_obs::gauge!("traffic.scanner.lines_excluded", flagged.len() as i64);
        flagged
    }

    /// Second traffic pass: the full analysis report with scanners
    /// excluded.
    ///
    /// Runs as a streaming fold like [`contact_pass`](RunArtifacts::contact_pass).
    pub fn analysis_pass(&self, period: StudyPeriod, excluded: &HashSet<LineId>) -> AnalysisReport {
        let _span = iotmap_obs::span!("traffic.analysis_pass");
        let sim = self.simulator();
        let fold = AnalysisFold::new(&self.index, excluded, period);
        let (partial, _) = sim.run_fold(period, &fold);
        fold.into_report(partial)
    }

    /// The analysis pass over a **replicated** subscriber population:
    /// replica `r` clones every line with `id += r × n` (scanners
    /// dropped from clones so exclusion stays a base-population
    /// concept), and the flows stream through the fold block by block —
    /// the §5 analysis at `replicas ×` the world's line count without
    /// ever materializing the scaled flow set. `replicas == 1` is
    /// byte-identical to [`analysis_pass`](RunArtifacts::analysis_pass).
    pub fn scaled_analysis_pass(
        &self,
        period: StudyPeriod,
        replicas: u64,
        excluded: &HashSet<LineId>,
    ) -> AnalysisReport {
        let _span = iotmap_obs::span!("traffic.scaled_analysis_pass");
        let sim = self.simulator();
        let fold = AnalysisFold::new(&self.index, excluded, period);
        let (partial, _) = sim.run_replicated_fold(period, replicas, &fold);
        fold.into_report(partial)
    }

    /// Convenience: contact pass → exclusion → analysis pass.
    pub fn full_traffic_analysis(&self, period: StudyPeriod) -> (AnalysisReport, HashSet<LineId>) {
        let contacts = self.contact_pass(period);
        let excluded = self.excluded_lines(&contacts);
        (self.analysis_pass(period, &excluded), excluded)
    }
}

/// The ~15 types a typical caller needs, in one import:
/// `use iotmap::prelude::*;`.
pub mod prelude {
    pub use crate::{Pipeline, PreparedWorld, RunArtifacts, SCANNER_THRESHOLD};
    pub use iotmap_core::{
        DataSources, DiscoveryPipeline, DiscoveryResult, Footprint, PatternRegistry,
        ProviderDiscovery, Source,
    };
    pub use iotmap_delta::WorldDelta;
    pub use iotmap_nettypes::{Date, DomainName, Error, SimRng, StudyPeriod};
    pub use iotmap_obs::{Recorder, Registry, RunReport};
    pub use iotmap_par::{set_threads, with_threads};
    pub use iotmap_scenario::Scenario;
    pub use iotmap_super::{CheckpointStore, StagePolicy, Supervisor};
    pub use iotmap_traffic::AnalysisReport;
    pub use iotmap_world::{CollectedScans, World, WorldConfig};
}
