//! # iotmap — the IoT backend ecosystem, reproduced
//!
//! A full reproduction of *"Deep Dive into the IoT Backend Ecosystem"*
//! (Saidi, Matic, Gasser, Smaragdakis, Feldmann — ACM IMC 2022) as a Rust
//! workspace: the paper's multi-source IoT-backend discovery methodology,
//! every substrate it depends on (TLS scanning, passive/active DNS, NetFlow,
//! BGP, geolocation), and a deterministic synthetic Internet to run it
//! against.
//!
//! This facade crate re-exports the workspace members under stable module
//! names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`nettypes`] | `iotmap-nettypes` | addressing, prefixes, geo, time, RNG |
//! | [`dregex`] | `iotmap-dregex` | the domain-pattern regex engine |
//! | [`dns`] | `iotmap-dns` | zones, resolution, passive & active DNS |
//! | [`tls`] | `iotmap-tls` | certificates and handshake behaviour |
//! | [`scan`] | `iotmap-scan` | Censys-like scanning, hitlists, looking glasses |
//! | [`netflow`] | `iotmap-netflow` | flow records, sampling, collectors |
//! | [`stats`] | `iotmap-stats` | ECDFs, histograms, time series |
//! | [`world`] | `iotmap-world` | the synthetic Internet ground truth |
//! | [`core`] | `iotmap-core` | the paper's discovery & characterization pipeline |
//! | [`traffic`] | `iotmap-traffic` | the ISP-side traffic analyses |
//!
//! ## Quickstart
//!
//! ```no_run
//! use iotmap::world::{World, WorldConfig};
//! use iotmap::core::{DataSources, DiscoveryPipeline, PatternRegistry};
//!
//! // Build a deterministic synthetic Internet.
//! let world = World::generate(&WorldConfig::small(42));
//! let period = world.config.study_period;
//!
//! // Run the measurement instruments, then the paper's methodology.
//! let scans = world.collect_scan_data(period);
//! let sources = DataSources {
//!     censys: &scans.censys,
//!     zgrab_v6: &scans.zgrab_v6,
//!     passive_dns: &world.passive_dns,
//!     zones: &world.zones,
//!     routeviews: &world.bgp,
//!     latency: None,
//! };
//! let pipeline = DiscoveryPipeline::new(PatternRegistry::paper_defaults());
//! let discovered = pipeline.run(&sources, period);
//! for (provider, discovery) in discovered.per_provider() {
//!     println!("{provider}: {} backend IPs", discovery.ips.len());
//! }
//! ```
//!
//! See `examples/` for complete, runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment-by-experiment reproduction notes.

pub use iotmap_core as core;
pub use iotmap_dns as dns;
pub use iotmap_dregex as dregex;
pub use iotmap_netflow as netflow;
pub use iotmap_nettypes as nettypes;
pub use iotmap_scan as scan;
pub use iotmap_stats as stats;
pub use iotmap_tls as tls;
pub use iotmap_traffic as traffic;
pub use iotmap_world as world;
