//! Outage replay: the December 7, 2021 AWS us-east-1 event (§6.1,
//! Figs. 15/16) — how a cloud-region failure shows up in an ISP's IoT
//! traffic, and why subscriber-line counts barely move while volumes
//! crater.
//!
//! ```text
//! cargo run --release --example outage_replay
//! ```

use iotmap::prelude::*;
use iotmap::traffic::RegionGroup;

fn main() {
    // The outage sits in the December 2021 preliminary week.
    let config = WorldConfig::small(42).with_outage_week();
    println!("preparing pipeline; outage window: {:?} …", {
        let w = StudyPeriod::aws_outage_window();
        (w.start.to_string(), w.end.to_string())
    });
    // Discovery as usual (the backend map does not care which week it is).
    let artifacts = Pipeline::new(config)
        .threads(0)
        .run()
        .expect("built-in patterns are valid");
    let period = artifacts.world.config.study_period;

    // Traffic passes over the outage week.
    println!("simulating the outage week …");
    let (report, _excluded) = artifacts.full_traffic_analysis(period);

    // T1 = the platform of the affected cloud (Amazon IoT).
    let window = StudyPeriod::aws_outage_window();
    let h0 = period.start.epoch_hours();
    let outage_day = ((window.start.epoch_hours() - h0) / 24) as usize;

    for (what, lines_mode) in [("downstream volume", false), ("subscriber lines", true)] {
        println!("\nT1 {what} per region (hourly, day-by-day):");
        for group in [RegionGroup::UsEast1, RegionGroup::Europe] {
            let series = report
                .region_series("amazon", group, lines_mode)
                .expect("amazon series");
            let mut day_totals = [0.0; 7];
            for h in 0..series.len() {
                day_totals[(h / 24).min(6)] += series.get(h);
            }
            let others: f64 = day_totals
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != outage_day)
                .map(|(_, v)| *v)
                .sum::<f64>()
                / 6.0;
            let delta = (day_totals[outage_day] / others.max(1e-9) - 1.0) * 100.0;
            let days: Vec<String> = day_totals
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let mark = if i == outage_day { "*" } else { " " };
                    format!(
                        "{mark}{:.2}",
                        v / day_totals.iter().cloned().fold(0.0, f64::max)
                    )
                })
                .collect();
            println!(
                "  [{:>7}] {}   outage day {delta:+.1}% vs others",
                group.label(),
                days.join(" ")
            );
        }
    }
    println!("\n(* marks December 7; Fig. 15's volume drop is sharp in US-East,");
    println!(" while Fig. 16's line counts barely move — retries keep flows alive.)");
}
