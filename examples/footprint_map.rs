//! Footprint mapping: reproduce the paper's §4 characterization — where
//! every backend's gateways sit, who announces them, and the DI/PR
//! deployment-strategy call (Table 1).
//!
//! ```text
//! cargo run --release --example footprint_map
//! ```

use iotmap::core::report::table1;
use iotmap::core::{Characterizer, StabilityAnalysis};
use iotmap::prelude::*;

fn main() {
    let config = WorldConfig::small(42);
    println!("preparing pipeline …");
    let artifacts = Pipeline::new(config)
        .threads(0)
        .run()
        .expect("built-in patterns are valid");
    let sources = artifacts.sources();
    let result = &artifacts.discovery;
    let registry = PatternRegistry::paper_defaults();

    // Per-provider footprints: majority vote across domain hints,
    // announcement geofeeds, scanner geolocation and looking-glass RTTs.
    let mut rows = Vec::new();
    for patterns in registry.providers() {
        let discovery = result.get(patterns.name).expect("provider discovered");
        // The pipeline already inferred footprints (with the looking-glass
        // prober wired in); reuse them instead of re-deriving.
        let footprint = &artifacts.footprints[patterns.name];
        if footprint.contested_fraction() > 0.0 {
            println!(
                "  {}: location sources disagreed on {:.1}% of IPs (majority vote applied)",
                patterns.name,
                footprint.contested_fraction() * 100.0
            );
        }
        rows.push(Characterizer::row(patterns, discovery, footprint, &sources));
    }

    println!("\nTable 1 (as measured on the synthetic Internet):\n");
    println!("{}", table1(&rows).render());

    // §4.1: how stable are the discovered sets across the week?
    println!("stability vs the first study day (Fig. 4):");
    let reference = Date::new(2022, 2, 28).epoch_days();
    let last = Date::new(2022, 3, 6).epoch_days();
    for (name, discovery) in result.per_provider() {
        let diff = StabilityAnalysis::diff(discovery, reference, last);
        if diff.both + diff.added + diff.removed == 0 {
            continue;
        }
        println!(
            "  {name:<10} stability {:5.1}%  (+{} new, -{} gone)",
            diff.stability() * 100.0,
            diff.added,
            diff.removed
        );
    }
    println!(
        "\ncloud-hosted fleets (Amazon, Bosch, SAP, PTC, Siemens) churn; the rest barely move."
    );
}
