//! Disruption audit (§6.2 + the §7 what-if): check the discovered backend
//! map against BGP incidents and the FireHOL aggregate blocklist, then
//! quantify the cloud-dependency cascade.
//!
//! ```text
//! cargo run --release --example disruption_audit
//! ```

use iotmap::core::disruptions::{BlocklistAudit, IncidentAudit, IncidentKind, RouteIncident};
use iotmap::prelude::*;
use iotmap::traffic::cascade_impact;
use iotmap::world::BgpStreamEventKind;
use std::collections::BTreeMap;
use std::net::IpAddr;

fn main() {
    let config = WorldConfig::small(42);
    println!("preparing pipeline …");
    let artifacts = Pipeline::new(config)
        .threads(0)
        .run()
        .expect("built-in patterns are valid");
    let world = &artifacts.world;
    let sources = artifacts.sources();
    let discovery = &artifacts.discovery;

    // --- Routing incidents (BGPStream-style feed).
    let incidents: Vec<RouteIncident> = world
        .events
        .bgpstream
        .iter()
        .map(|e| RouteIncident {
            kind: match e.kind {
                BgpStreamEventKind::Leak => IncidentKind::Leak,
                BgpStreamEventKind::PossibleHijack => IncidentKind::PossibleHijack,
                BgpStreamEventKind::AsOutage => IncidentKind::AsOutage,
            },
            prefix: e.prefix,
            asn: e.asn,
        })
        .collect();
    let audit = IncidentAudit::run(&incidents, discovery, &sources);
    println!(
        "\nBGP incidents this week: {} — backend prefixes hit: {}, backend ASes hit: {} → {}",
        audit.total_incidents,
        audit.prefix_hits,
        audit.asn_hits,
        if audit.all_clear() {
            "all clear (as the paper found)"
        } else {
            "ATTENTION: backends affected"
        }
    );

    // --- Blocklist intersection.
    let firehol = &world.events.firehol;
    let categories: BTreeMap<IpAddr, Vec<String>> = firehol
        .planted
        .iter()
        .map(|h| (h.ip, h.categories.iter().map(|c| c.to_string()).collect()))
        .collect();
    let blocklist = BlocklistAudit::run(discovery, &firehol.set, &categories);
    println!(
        "\nFireHOL aggregate holds {} addresses; {} discovered backend IPs are on it:",
        firehol.set.len(),
        blocklist.findings.len()
    );
    for f in &blocklist.findings {
        println!("  {} {} {:?}", f.provider, f.ip, f.categories);
    }
    println!("(a blocklisted gateway is one firewall update away from unreachable devices)");

    // --- The cascade what-if: who falls over if a cloud operator fails?
    let orgs = [
        "Amazon Web Services",
        "Microsoft Azure",
        "Alibaba Cloud",
        "Akamai Technologies",
    ];
    println!("\ncloud-dependency cascade (share of footprint lost if the operator fails):");
    for dep in cascade_impact(discovery, &sources, &orgs) {
        let shares: Vec<String> = orgs
            .iter()
            .filter_map(|o| {
                let s = dep.loss_if_down(o);
                (s > 0.001).then(|| format!("{o}: {:.0}%", s * 100.0))
            })
            .collect();
        if !shares.is_empty() {
            println!("  {:<10} {}", dep.provider, shares.join(", "));
        }
    }
}
