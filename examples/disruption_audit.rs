//! Disruption audit (§6.2 + the §7 what-if): check the discovered backend
//! map against BGP incidents and the FireHOL aggregate blocklist, then
//! quantify the cloud-dependency cascade.
//!
//! ```text
//! cargo run --release --example disruption_audit
//! ```

use iotmap::core::disruptions::{BlocklistAudit, IncidentAudit, IncidentKind, RouteIncident};
use iotmap::core::{DataSources, DiscoveryPipeline, PatternRegistry};
use iotmap::traffic::cascade_impact;
use iotmap::world::{BgpStreamEventKind, World, WorldConfig};
use std::collections::BTreeMap;
use std::net::IpAddr;

fn main() {
    let config = WorldConfig::small(42);
    println!("generating world and running discovery …");
    let world = World::generate(&config);
    let period = world.config.study_period;
    let scans = world.collect_scan_data(period);
    let sources = DataSources {
        censys: &scans.censys,
        zgrab_v6: &scans.zgrab_v6,
        passive_dns: &world.passive_dns,
        zones: &world.zones,
        routeviews: &world.bgp,
        latency: None,
    };
    let discovery = DiscoveryPipeline::new(PatternRegistry::paper_defaults()).run(&sources, period);

    // --- Routing incidents (BGPStream-style feed).
    let incidents: Vec<RouteIncident> = world
        .events
        .bgpstream
        .iter()
        .map(|e| RouteIncident {
            kind: match e.kind {
                BgpStreamEventKind::Leak => IncidentKind::Leak,
                BgpStreamEventKind::PossibleHijack => IncidentKind::PossibleHijack,
                BgpStreamEventKind::AsOutage => IncidentKind::AsOutage,
            },
            prefix: e.prefix,
            asn: e.asn,
        })
        .collect();
    let audit = IncidentAudit::run(&incidents, &discovery, &sources);
    println!(
        "\nBGP incidents this week: {} — backend prefixes hit: {}, backend ASes hit: {} → {}",
        audit.total_incidents,
        audit.prefix_hits,
        audit.asn_hits,
        if audit.all_clear() {
            "all clear (as the paper found)"
        } else {
            "ATTENTION: backends affected"
        }
    );

    // --- Blocklist intersection.
    let firehol = &world.events.firehol;
    let categories: BTreeMap<IpAddr, Vec<String>> = firehol
        .planted
        .iter()
        .map(|h| (h.ip, h.categories.iter().map(|c| c.to_string()).collect()))
        .collect();
    let blocklist = BlocklistAudit::run(&discovery, &firehol.set, &categories);
    println!(
        "\nFireHOL aggregate holds {} addresses; {} discovered backend IPs are on it:",
        firehol.set.len(),
        blocklist.findings.len()
    );
    for f in &blocklist.findings {
        println!("  {} {} {:?}", f.provider, f.ip, f.categories);
    }
    println!("(a blocklisted gateway is one firewall update away from unreachable devices)");

    // --- The cascade what-if: who falls over if a cloud operator fails?
    let orgs = [
        "Amazon Web Services",
        "Microsoft Azure",
        "Alibaba Cloud",
        "Akamai Technologies",
    ];
    println!("\ncloud-dependency cascade (share of footprint lost if the operator fails):");
    for dep in cascade_impact(&discovery, &sources, &orgs) {
        let shares: Vec<String> = orgs
            .iter()
            .filter_map(|o| {
                let s = dep.loss_if_down(o);
                (s > 0.001).then(|| format!("{o}: {:.0}%", s * 100.0))
            })
            .collect();
        if !shares.is_empty() {
            println!("  {:<10} {}", dep.provider, shares.join(", "));
        }
    }
}
