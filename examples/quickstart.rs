//! Quickstart: build a synthetic Internet, run the paper's discovery
//! methodology against it, and print what was found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use iotmap::core::{DataSources, DiscoveryPipeline, PatternRegistry, Source};
use iotmap::world::{World, WorldConfig};

fn main() {
    // A small deterministic world: ~5k subscriber lines, 1/16 of the
    // paper's backend address space. Change the seed and everything
    // changes; keep it and every run is identical.
    let config = WorldConfig::small(42);
    println!("generating world (seed {}) …", config.seed);
    let world = World::generate(&config);
    let period = world.config.study_period;
    println!(
        "  {} gateway servers across {} providers; ISP with {} subscriber lines",
        world.servers.len(),
        world.providers.len(),
        world.isp.lines.len()
    );

    // Run the measurement instruments: daily Censys-style sweeps and the
    // IPv6 hitlist campaign (§3.3 of the paper).
    println!("collecting scan data …");
    let scans = world.collect_scan_data(period);
    println!(
        "  {} daily snapshots, {} IPv6 banner grabs",
        scans.censys.len(),
        scans.zgrab_v6.len()
    );

    // Wire the data sources and run the discovery pipeline.
    let sources = DataSources {
        censys: &scans.censys,
        zgrab_v6: &scans.zgrab_v6,
        passive_dns: &world.passive_dns,
        zones: &world.zones,
        routeviews: &world.bgp,
        latency: None,
    };
    let pipeline = DiscoveryPipeline::new(PatternRegistry::paper_defaults());
    println!("running discovery …");
    let result = pipeline.run(&sources, period);

    println!(
        "\n{:<12} {:>6} {:>6}  top source",
        "provider", "IPv4", "IPv6"
    );
    println!("{}", "-".repeat(48));
    for (name, discovery) in result.per_provider() {
        let v4 = discovery.v4_ips().count();
        let v6 = discovery.v6_ips().count();
        // Which single channel contributed the most exclusive discoveries?
        let (exclusive, multi) = discovery.source_breakdown(false);
        let top = exclusive
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(s, n)| format!("{} ({n} exclusive)", s.label()))
            .unwrap_or_else(|| format!("multiple sources ({multi})"));
        println!("{name:<12} {v4:>6} {v6:>6}  {top}");
    }

    // How well did the methodology do? (Only the harness may peek at
    // ground truth — the pipeline itself never does.)
    let mut found = 0usize;
    let mut truth = 0usize;
    for (name, discovery) in result.per_provider() {
        let pidx = world.provider_index(name);
        let documented = world.documented_v4(pidx);
        truth += documented.len();
        found += discovery
            .v4_ips()
            .filter(|ip| documented.contains(ip))
            .count();
    }
    println!(
        "\nrecall of documented IPv4 gateway space: {:.1}%  \
         (certificates alone would see far less — try Source::Certificate)",
        100.0 * found as f64 / truth as f64
    );
    let _ = Source::Certificate;
}
