//! Quickstart: build a synthetic Internet, run the paper's discovery
//! methodology against it, and print what was found — all through the
//! `Pipeline` front door.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use iotmap::prelude::*;

fn main() {
    // A small deterministic world: ~5k subscriber lines, 1/16 of the
    // paper's backend address space. Change the seed and everything
    // changes; keep it and every run is identical — on any thread count.
    let config = WorldConfig::small(42);
    println!("preparing pipeline (seed {}) …", config.seed);
    let artifacts = Pipeline::new(config)
        .threads(0) // all cores; output is byte-identical to --threads 1
        .run()
        .expect("built-in patterns are valid");
    let world = &artifacts.world;
    println!(
        "  {} gateway servers across {} providers; ISP with {} subscriber lines",
        world.servers.len(),
        world.providers.len(),
        world.isp.lines.len()
    );
    println!(
        "  {} daily snapshots, {} IPv6 banner grabs",
        artifacts.scans.censys.len(),
        artifacts.scans.zgrab_v6.len()
    );

    println!(
        "\n{:<12} {:>6} {:>6}  top source",
        "provider", "IPv4", "IPv6"
    );
    println!("{}", "-".repeat(48));
    for (name, discovery) in artifacts.discovery.per_provider() {
        let v4 = discovery.v4_ips().count();
        let v6 = discovery.v6_ips().count();
        // Which single channel contributed the most exclusive discoveries?
        let (exclusive, multi) = discovery.source_breakdown(false);
        let top = exclusive
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(s, n)| format!("{} ({n} exclusive)", s.label()))
            .unwrap_or_else(|| format!("multiple sources ({multi})"));
        println!("{name:<12} {v4:>6} {v6:>6}  {top}");
    }

    // How well did the methodology do? (Only the harness may peek at
    // ground truth — the pipeline itself never does.)
    let mut found = 0usize;
    let mut truth = 0usize;
    for (name, discovery) in artifacts.discovery.per_provider() {
        let pidx = world.provider_index(name);
        let documented = world.documented_v4(pidx);
        truth += documented.len();
        found += discovery
            .v4_ips()
            .filter(|ip| documented.contains(ip))
            .count();
    }
    println!(
        "\nrecall of documented IPv4 gateway space: {:.1}%  \
         (certificates alone would see far less — try Source::Certificate)",
        100.0 * found as f64 / truth as f64
    );
    let _ = Source::Certificate;
}
