//! ISP traffic analysis: reproduce the §5 pipeline end to end — scanner
//! exclusion, backend visibility, diurnal activity, volume asymmetry,
//! port usage, and region crossing — on a week of simulated NetFlow.
//!
//! ```text
//! cargo run --release --example isp_traffic
//! ```

use iotmap::prelude::*;
use iotmap::traffic::{
    analysis::BUCKET_LABELS, visibility_per_provider, Anonymization, ScannerAnalysis,
};

fn main() {
    let config = WorldConfig::small(42);
    println!("preparing pipeline (discovery, footprints, shared-IP pruning) …");
    let artifacts = Pipeline::new(config)
        .threads(0)
        .run()
        .expect("built-in patterns are valid");
    let period = artifacts.world.config.study_period;
    let index = &artifacts.index;
    println!(
        "  {} backend IPs indexed ({} shared IPs excluded per §3.4)",
        index.len(),
        artifacts.shared_ips.len()
    );

    // Pass 1 (§5.2): per-line contact sets → scanner exclusion.
    println!("simulating a week of ISP traffic (pass 1: contacts) …");
    let contacts = artifacts.contact_pass(period);
    let scanner_analysis = ScannerAnalysis::new(index, &contacts);
    println!("\nFig. 5 — scanner threshold vs excluded lines / visibility:");
    for point in scanner_analysis.curve(&[10, 50, 100, 500]) {
        println!(
            "  threshold {:>4}: {:>5} lines flagged, {:>5.1}% of IPv4 backends visible",
            point.threshold,
            point.lines_excluded,
            point.v4_visibility * 100.0
        );
    }
    let excluded = scanner_analysis.flagged_lines(100);

    // Fig. 6 — per-platform visibility (anonymized per §3.7).
    let anon = Anonymization::paper();
    let mut vis = visibility_per_provider(index, &contacts, &excluded);
    vis.sort_by_key(|v| anon.label(&v.provider));
    println!("\nFig. 6 — visible share of each platform's backends:");
    for v in &vis {
        if v.lines == 0 {
            continue;
        }
        println!(
            "  {}: v4 {:>5.1}%  lines {}",
            anon.label(&v.provider),
            v.v4 * 100.0,
            v.lines
        );
    }

    // Pass 2: the full analysis report.
    println!("\nsimulating the week again (pass 2: analyses) …");
    let report = artifacts.analysis_pass(period, &excluded);

    println!("\nFig. 10 — downstream/upstream asymmetry:");
    for p in report.providers() {
        if let Some(r) = report.fig10_ratio(p) {
            let bar = if r > 1.0 {
                "download-heavy"
            } else {
                "upload-heavy"
            };
            println!("  {}: {:.2} ({bar})", anon.label(p), r);
        }
    }

    println!("\nFig. 12a — daily per-line traffic:");
    let e = report.fig12a_ecdf(true);
    println!(
        "  {} line-days; {:.1}% below 10 MB/day (paper: >99%)",
        e.len(),
        e.fraction_at_or_below(1e7) * 100.0
    );

    println!("\nFigs. 13/14 — region crossing:");
    let (eu_only, us_any, mix, other) = report.fig13_line_buckets();
    println!(
        "  lines: {:.0}% EU-only | {:.0}% touch the US | {:.0}% EU+US | {:.0}% elsewhere-only",
        eu_only * 100.0,
        us_any * 100.0,
        mix * 100.0,
        other * 100.0
    );
    let traffic = report.fig14_traffic_buckets();
    let cells: Vec<String> = BUCKET_LABELS
        .iter()
        .zip(traffic.iter())
        .map(|(l, f)| format!("{l} {:.0}%", f * 100.0))
        .collect();
    println!("  traffic by server continent: {}", cells.join(" | "));
}
