//! ISP traffic analysis: reproduce the §5 pipeline end to end — scanner
//! exclusion, backend visibility, diurnal activity, volume asymmetry,
//! port usage, and region crossing — on a week of simulated NetFlow.
//!
//! ```text
//! cargo run --release --example isp_traffic
//! ```

use iotmap::core::{
    DataSources, DiscoveryPipeline, FootprintInference, PatternRegistry, SharedIpClassifier,
};
use iotmap::traffic::{
    analysis::BUCKET_LABELS, visibility_per_provider, AnalysisSink, Anonymization, ContactSink,
    IpIndex, ScannerAnalysis,
};
use iotmap::world::{TrafficSimulator, World, WorldConfig};
use std::collections::{HashMap, HashSet};

fn main() {
    let config = WorldConfig::small(42);
    println!("generating world and running discovery …");
    let world = World::generate(&config);
    let period = world.config.study_period;
    let scans = world.collect_scan_data(period);
    let sources = DataSources {
        censys: &scans.censys,
        zgrab_v6: &scans.zgrab_v6,
        passive_dns: &world.passive_dns,
        zones: &world.zones,
        routeviews: &world.bgp,
        latency: None,
    };
    let registry = PatternRegistry::paper_defaults();
    let pipeline = DiscoveryPipeline::new(PatternRegistry::paper_defaults());
    let discovery = pipeline.run(&sources, period);

    // §3.4: exclude shared infrastructure, then build the per-flow index
    // with footprint locations attached.
    let classifier = SharedIpClassifier::new(&registry);
    let mut footprints = HashMap::new();
    let mut shared = HashSet::new();
    for (name, disc) in discovery.per_provider() {
        footprints.insert(name.to_string(), FootprintInference::infer(disc, &sources));
        let (_, s) = classifier.split_provider(disc, &world.passive_dns, period);
        shared.extend(s.keys().copied());
    }
    let index = IpIndex::build(&discovery, &footprints, &shared);
    println!(
        "  {} backend IPs indexed ({} shared IPs excluded per §3.4)",
        index.len(),
        shared.len()
    );

    // Pass 1 (§5.2): per-line contact sets → scanner exclusion.
    println!("simulating a week of ISP traffic (pass 1: contacts) …");
    let sim = TrafficSimulator::new(&world);
    let mut contacts = ContactSink::new(&index);
    sim.run(period, &mut contacts);
    let scanner_analysis = ScannerAnalysis::new(&index, &contacts);
    println!("\nFig. 5 — scanner threshold vs excluded lines / visibility:");
    for point in scanner_analysis.curve(&[10, 50, 100, 500]) {
        println!(
            "  threshold {:>4}: {:>5} lines flagged, {:>5.1}% of IPv4 backends visible",
            point.threshold,
            point.lines_excluded,
            point.v4_visibility * 100.0
        );
    }
    let excluded = scanner_analysis.flagged_lines(100);

    // Fig. 6 — per-platform visibility (anonymized per §3.7).
    let anon = Anonymization::paper();
    let mut vis = visibility_per_provider(&index, &contacts, &excluded);
    vis.sort_by_key(|v| anon.label(&v.provider));
    println!("\nFig. 6 — visible share of each platform's backends:");
    for v in &vis {
        if v.lines == 0 {
            continue;
        }
        println!(
            "  {}: v4 {:>5.1}%  lines {}",
            anon.label(&v.provider),
            v.v4 * 100.0,
            v.lines
        );
    }

    // Pass 2: the full analysis report.
    println!("\nsimulating the week again (pass 2: analyses) …");
    let mut sink = AnalysisSink::new(&index, &excluded, period);
    sim.run(period, &mut sink);
    let report = sink.into_report();

    println!("\nFig. 10 — downstream/upstream asymmetry:");
    for p in report.providers() {
        if let Some(r) = report.fig10_ratio(p) {
            let bar = if r > 1.0 {
                "download-heavy"
            } else {
                "upload-heavy"
            };
            println!("  {}: {:.2} ({bar})", anon.label(p), r);
        }
    }

    println!("\nFig. 12a — daily per-line traffic:");
    let e = report.fig12a_ecdf(true);
    println!(
        "  {} line-days; {:.1}% below 10 MB/day (paper: >99%)",
        e.len(),
        e.fraction_at_or_below(1e7) * 100.0
    );

    println!("\nFigs. 13/14 — region crossing:");
    let (eu_only, us_any, mix, other) = report.fig13_line_buckets();
    println!(
        "  lines: {:.0}% EU-only | {:.0}% touch the US | {:.0}% EU+US | {:.0}% elsewhere-only",
        eu_only * 100.0,
        us_any * 100.0,
        mix * 100.0,
        other * 100.0
    );
    let traffic = report.fig14_traffic_buckets();
    let cells: Vec<String> = BUCKET_LABELS
        .iter()
        .zip(traffic.iter())
        .map(|(l, f)| format!("{l} {:.0}%", f * 100.0))
        .collect();
    println!("  traffic by server continent: {}", cells.join(" | "));
}
