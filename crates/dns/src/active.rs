//! Active DNS resolution campaigns.
//!
//! §3.3: "during our study period, we also performed daily active DNS
//! resolutions for all domains identified via DNSDB … To perform these
//! resolutions, we use three locations: two in Europe and one in the United
//! States. Compared to a single location, using three vantage points
//! increases our IP address coverage by ≈17%." §3.7 adds the ethics
//! constraints: ten seconds between resolutions, spreading load over all
//! available resolvers.

use crate::record::RrType;
use crate::resolver::{resolve, ResolutionContext};
use crate::zone::ZoneDb;
use iotmap_faults::ActiveDnsFaults;
use iotmap_nettypes::{Continent, DomainName, SimDuration, StudyPeriod};
use std::collections::BTreeMap;
use std::net::IpAddr;

/// A resolution vantage point. The paper used two in Europe, one in the US.
#[derive(Debug, Clone)]
pub struct VantagePoint {
    /// Human-readable site name, e.g. `"eu-saarbruecken"`.
    pub name: String,
    /// Continent, which drives geo-DNS answers.
    pub continent: Continent,
    /// Identity of the local recursive resolver (drives load-balancer
    /// rotation).
    pub resolver_id: u64,
}

impl VantagePoint {
    /// The paper's three vantage points.
    pub fn paper_defaults() -> Vec<VantagePoint> {
        vec![
            VantagePoint {
                name: "eu-saarbruecken".to_string(),
                continent: Continent::Europe,
                resolver_id: 11,
            },
            VantagePoint {
                name: "eu-delft".to_string(),
                continent: Continent::Europe,
                resolver_id: 23,
            },
            VantagePoint {
                name: "us-east".to_string(),
                continent: Continent::NorthAmerica,
                resolver_id: 37,
            },
        ]
    }
}

/// One `(domain, ip)` discovery made by the campaign.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActiveObservation {
    pub domain: DomainName,
    pub ip: IpAddr,
    /// Index of the vantage point that made the observation.
    pub vantage: usize,
    /// Day (epoch days) of the observation.
    pub day: i64,
}

/// A daily resolution campaign over a fixed domain list.
#[derive(Debug)]
pub struct ActiveCampaign {
    vantages: Vec<VantagePoint>,
    /// Minimum spacing between consecutive resolutions (ethics, §3.7).
    pub pacing: SimDuration,
}

impl ActiveCampaign {
    /// Campaign with the paper's vantage points and 10 s pacing.
    pub fn paper_defaults() -> Self {
        ActiveCampaign {
            vantages: VantagePoint::paper_defaults(),
            pacing: SimDuration::seconds(10),
        }
    }

    /// Campaign with custom vantage points. An empty vantage list is a
    /// degenerate campaign that observes nothing — it runs and returns
    /// empty results rather than aborting, matching the graceful-
    /// degradation contract of the rest of the pipeline.
    pub fn new(vantages: Vec<VantagePoint>) -> Self {
        ActiveCampaign {
            vantages,
            pacing: SimDuration::seconds(10),
        }
    }

    /// The configured vantage points.
    pub fn vantages(&self) -> &[VantagePoint] {
        &self.vantages
    }

    /// Resolve every domain from every vantage point once per day of the
    /// study period. Returns all observations plus the total simulated
    /// wall-clock cost (for the ethics budget).
    pub fn run(
        &self,
        zones: &ZoneDb,
        domains: &[DomainName],
        period: &StudyPeriod,
    ) -> CampaignResult {
        self.run_with_faults(zones, domains, period, 0, &ActiveDnsFaults::NONE)
    }

    /// [`ActiveCampaign::run`] under a fault plan: a whole vantage point
    /// can be down for a day (all of that vantage-day's queries are
    /// lost — the §3.3 per-vantage coverage loss), and individual
    /// resolutions can time out transiently, in which case they are
    /// retried with seeded backoff up to `max_attempts` times before the
    /// query is abandoned. Decisions are pure rolls on
    /// `(day, vantage, domain, rrtype)`, so results are independent of
    /// the provider fan-out that invokes the campaign.
    pub fn run_with_faults(
        &self,
        zones: &ZoneDb,
        domains: &[DomainName],
        period: &StudyPeriod,
        fault_seed: u64,
        faults: &ActiveDnsFaults,
    ) -> CampaignResult {
        let _span = iotmap_obs::span!("dns.active.campaign");
        let mut observations = Vec::new();
        let mut queries = 0u64;
        let (mut vantage_days_lost, mut timed_out, mut retried, mut recovered) =
            (0u64, 0u64, 0u64, 0u64);
        let mut outage_queries_lost = 0u64;
        for date in period.days() {
            // Resolutions run during the day; exact second is irrelevant to
            // day-granular rotation policies.
            let when = date.midnight() + SimDuration::hours(2);
            let day = date.epoch_days();
            for (vi, vp) in self.vantages.iter().enumerate() {
                if iotmap_faults::drops(
                    fault_seed,
                    "adns.vantage_outage",
                    iotmap_faults::key2(day as u64, vi as u64),
                    faults.vantage_outage_rate,
                ) {
                    vantage_days_lost += 1;
                    outage_queries_lost += domains.len() as u64 * 2;
                    continue;
                }
                let ctx = ResolutionContext {
                    client_continent: vp.continent,
                    time: when,
                    resolver_id: vp.resolver_id,
                };
                for domain in domains {
                    for rrtype in [RrType::A, RrType::Aaaa] {
                        let query_key = iotmap_faults::key3(
                            iotmap_faults::hash_str(domain.as_str()),
                            iotmap_faults::key2(day as u64, vi as u64),
                            rrtype as u64,
                        );
                        let outcome = iotmap_faults::retry(
                            fault_seed,
                            "adns.timeout",
                            query_key,
                            faults.timeout_rate,
                            faults.max_attempts,
                        );
                        queries += outcome.attempts as u64;
                        if outcome.attempts > 1 {
                            retried += 1;
                            if outcome.succeeded {
                                recovered += 1;
                            }
                        }
                        if !outcome.succeeded {
                            timed_out += 1;
                            continue;
                        }
                        for ip in resolve(zones, domain, rrtype, &ctx) {
                            observations.push(ActiveObservation {
                                domain: domain.clone(),
                                ip,
                                vantage: vi,
                                day,
                            });
                        }
                    }
                }
            }
        }
        iotmap_obs::count!("dns.active.queries", queries);
        iotmap_obs::count!("dns.active.observations", observations.len() as u64);
        if faults.is_active() {
            iotmap_obs::count!("faults.active_dns.vantage_days_lost", vantage_days_lost);
            iotmap_obs::count!("faults.active_dns.queries_timed_out", timed_out);
            iotmap_obs::count!(
                "faults.active_dns.records_dropped",
                timed_out + outage_queries_lost
            );
            iotmap_obs::count!("faults.active_dns.records_retried", retried);
            iotmap_obs::count!("faults.active_dns.records_recovered", recovered);
        }
        CampaignResult {
            observations,
            queries,
            pacing: self.pacing,
        }
    }
}

/// Output of a campaign run.
#[derive(Debug)]
pub struct CampaignResult {
    pub observations: Vec<ActiveObservation>,
    /// Number of DNS queries issued.
    pub queries: u64,
    pacing: SimDuration,
}

impl CampaignResult {
    /// Distinct IPs discovered, over all vantage points.
    pub fn unique_ips(&self) -> std::collections::HashSet<IpAddr> {
        self.observations.iter().map(|o| o.ip).collect()
    }

    /// Distinct IPs discovered per vantage point.
    pub fn unique_ips_by_vantage(&self) -> BTreeMap<usize, std::collections::HashSet<IpAddr>> {
        let mut out: BTreeMap<usize, std::collections::HashSet<IpAddr>> = BTreeMap::new();
        for o in &self.observations {
            out.entry(o.vantage).or_default().insert(o.ip);
        }
        out
    }

    /// The multi-vantage coverage gain: `(all_vantages / best_single) - 1`.
    /// The paper reports ≈0.17.
    pub fn multi_vantage_gain(&self) -> f64 {
        let total = self.unique_ips().len();
        let best_single = self
            .unique_ips_by_vantage()
            .values()
            .map(|s| s.len())
            .max()
            .unwrap_or(0);
        if best_single == 0 {
            return 0.0;
        }
        total as f64 / best_single as f64 - 1.0
    }

    /// Simulated duration of the campaign per day per vantage, honouring
    /// the pacing budget (sequential resolutions, §3.7).
    pub fn daily_duration_per_vantage(&self, domains: usize) -> SimDuration {
        SimDuration::seconds(domains as u64 * 2 * self.pacing.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RData;
    use crate::zone::Policy;
    use iotmap_nettypes::Date;
    use std::net::Ipv4Addr;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn a(last: u8) -> RData {
        RData::A(Ipv4Addr::new(198, 51, 100, last))
    }

    fn week() -> StudyPeriod {
        StudyPeriod::main_week()
    }

    #[test]
    fn geo_dns_makes_vantages_complementary() {
        let mut db = ZoneDb::new();
        db.set_policy(
            d("geo.iot.example"),
            RrType::A,
            Policy::Geo {
                by_continent: vec![
                    (Continent::Europe, vec![a(1)]),
                    (Continent::NorthAmerica, vec![a(2)]),
                ],
                fallback: vec![a(3)],
            },
        );
        let campaign = ActiveCampaign::paper_defaults();
        let result = campaign.run(&db, &[d("geo.iot.example")], &week());
        // EU vantages see .1, US vantage sees .2 — union is larger than any
        // single vantage.
        assert_eq!(result.unique_ips().len(), 2);
        assert!(result.multi_vantage_gain() > 0.9);
    }

    #[test]
    fn rotating_pool_discovered_over_days() {
        let mut db = ZoneDb::new();
        db.set_policy(
            d("lb.iot.example"),
            RrType::A,
            Policy::Rotating {
                pool: (1..=30).map(a).collect(),
                window: 2,
                salt: 5,
            },
        );
        let campaign = ActiveCampaign::paper_defaults();
        let result = campaign.run(&db, &[d("lb.iot.example")], &week());
        // 7 days × 3 vantages × window 2 — with rotation, far more than one
        // day's worth of records.
        assert!(
            result.unique_ips().len() > 4,
            "got {}",
            result.unique_ips().len()
        );
    }

    #[test]
    fn static_records_give_no_multi_vantage_gain() {
        let mut db = ZoneDb::new();
        db.set_static(d("static.iot.example"), vec![a(1), a(2)]);
        let campaign = ActiveCampaign::paper_defaults();
        let result = campaign.run(&db, &[d("static.iot.example")], &week());
        assert_eq!(result.unique_ips().len(), 2);
        assert!(result.multi_vantage_gain().abs() < 1e-9);
    }

    #[test]
    fn query_budget_counted() {
        let mut db = ZoneDb::new();
        db.set_static(d("x.iot.example"), vec![a(1)]);
        let campaign = ActiveCampaign::paper_defaults();
        let result = campaign.run(&db, &[d("x.iot.example")], &week());
        // 7 days × 3 vantages × 1 domain × 2 rrtypes.
        assert_eq!(result.queries, 42);
        // Pacing: 2 queries × 10 s.
        assert_eq!(result.daily_duration_per_vantage(1).as_secs(), 20);
    }

    #[test]
    fn observation_days_span_study_period() {
        let mut db = ZoneDb::new();
        db.set_static(d("x.iot.example"), vec![a(1)]);
        let campaign = ActiveCampaign::paper_defaults();
        let result = campaign.run(&db, &[d("x.iot.example")], &week());
        let first = Date::new(2022, 2, 28).epoch_days();
        let last = Date::new(2022, 3, 6).epoch_days();
        assert!(result
            .observations
            .iter()
            .all(|o| o.day >= first && o.day <= last));
        assert!(result.observations.iter().any(|o| o.day == first));
        assert!(result.observations.iter().any(|o| o.day == last));
    }
}
