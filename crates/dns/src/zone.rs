//! Authoritative zone data with answer policies.
//!
//! IoT backend providers do not answer DNS queries with a fixed record set:
//! the paper's methodology only works because providers rotate
//! load-balancer pools (so repeated daily resolution discovers more IPs,
//! §3.3) and apply geo-DNS (so vantage points in Europe and the US see
//! different regional gateways — the ≈17% coverage gain). [`Policy`]
//! captures those behaviours.

use crate::record::{RData, RrType};
use crate::resolver::ResolutionContext;
use iotmap_nettypes::{Continent, DomainName};
use std::collections::HashMap;

/// How an owner name answers queries of one record type.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Always return the full record set (also models anycast fronts,
    /// where one address set is announced everywhere).
    Static(Vec<RData>),
    /// Return `window` records from a pool, rotating deterministically with
    /// time (and weakly with resolver identity) — a DNS load balancer.
    /// Repeated resolution over days walks the pool; different resolvers
    /// see mostly-overlapping slices, so multiple vantage points add a
    /// modest coverage gain (§3.3's ≈17%). `salt` decorrelates different
    /// owner names sharing one pool.
    Rotating {
        pool: Vec<RData>,
        window: usize,
        salt: u64,
    },
    /// Geo-DNS: answer depends on the client's continent; `fallback` covers
    /// continents without an entry.
    Geo {
        by_continent: Vec<(Continent, Vec<RData>)>,
        fallback: Vec<RData>,
    },
    /// Alias to another name (CNAME); resolution follows the chain.
    Alias(DomainName),
}

impl Policy {
    /// Evaluate the policy in a resolution context.
    pub fn answer(&self, ctx: &ResolutionContext) -> Vec<RData> {
        match self {
            Policy::Static(records) => records.clone(),
            Policy::Rotating { pool, window, salt } => {
                if pool.is_empty() {
                    return Vec::new();
                }
                let w = (*window).clamp(1, pool.len());
                // Rotate by day; resolver identity only nudges the slice,
                // so vantage points overlap heavily (as in reality).
                let shift = salt
                    .wrapping_add((ctx.time.epoch_days() as u64).wrapping_mul(w as u64 * 2 + 1))
                    .wrapping_add(((ctx.resolver_id >> 1) & 1) * (w as u64 / 2).max(1))
                    % pool.len() as u64;
                (0..w)
                    .map(|i| pool[(shift as usize + i) % pool.len()].clone())
                    .collect()
            }
            Policy::Geo {
                by_continent,
                fallback,
            } => by_continent
                .iter()
                .find(|(c, _)| *c == ctx.client_continent)
                .map(|(_, r)| r.clone())
                .unwrap_or_else(|| fallback.clone()),
            Policy::Alias(target) => vec![RData::Cname(target.clone())],
        }
    }

    /// All records the policy could ever return — the ground-truth set.
    pub fn all_records(&self) -> Vec<RData> {
        match self {
            Policy::Static(r) => r.clone(),
            Policy::Rotating { pool, .. } => pool.clone(),
            Policy::Geo {
                by_continent,
                fallback,
            } => {
                let mut out: Vec<RData> = by_continent
                    .iter()
                    .flat_map(|(_, r)| r.iter().cloned())
                    .collect();
                out.extend(fallback.iter().cloned());
                out
            }
            Policy::Alias(t) => vec![RData::Cname(t.clone())],
        }
    }
}

/// Authoritative data for the whole simulated namespace.
///
/// Owner names map to per-rrtype policies. This is the structure the world
/// builder fills in and both resolution paths (devices in the traffic
/// simulator, the measurement pipeline's active campaigns) query.
#[derive(Debug, Clone, Default)]
pub struct ZoneDb {
    entries: HashMap<DomainName, HashMap<RrTypeKey, Policy>>,
}

/// Policies are stored per address family; CNAMEs apply to both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RrTypeKey {
    A,
    Aaaa,
    Cname,
}

fn key_for(rrtype: RrType) -> Option<RrTypeKey> {
    match rrtype {
        RrType::A => Some(RrTypeKey::A),
        RrType::Aaaa => Some(RrTypeKey::Aaaa),
        RrType::Cname => Some(RrTypeKey::Cname),
        RrType::Ptr => None,
    }
}

impl ZoneDb {
    /// Empty zone database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a policy for `(owner, rrtype)`. Replaces any existing one.
    /// PTR data lives in the reverse-DNS store, not here — a PTR policy
    /// is silently ignored rather than aborting the run.
    pub fn set_policy(&mut self, owner: DomainName, rrtype: RrType, policy: Policy) {
        let Some(key) = key_for(rrtype) else {
            return;
        };
        self.entries.entry(owner).or_default().insert(key, policy);
    }

    /// Convenience: install a static A/AAAA record set. Non-address
    /// records are skipped (use [`ZoneDb::set_policy`] for CNAMEs).
    pub fn set_static(&mut self, owner: DomainName, records: Vec<RData>) {
        let (mut v4, mut v6) = (Vec::new(), Vec::new());
        for r in records {
            match r {
                RData::A(_) => v4.push(r),
                RData::Aaaa(_) => v6.push(r),
                _ => continue,
            }
        }
        if !v4.is_empty() {
            self.set_policy(owner.clone(), RrType::A, Policy::Static(v4));
        }
        if !v6.is_empty() {
            self.set_policy(owner, RrType::Aaaa, Policy::Static(v6));
        }
    }

    /// Answer a single query (no CNAME chasing — see [`crate::resolver`]).
    pub fn query(&self, owner: &DomainName, rrtype: RrType, ctx: &ResolutionContext) -> Vec<RData> {
        let Some(by_type) = self.entries.get(owner) else {
            return Vec::new();
        };
        // Exact type match first; otherwise a CNAME at the owner applies.
        if let Some(k) = key_for(rrtype) {
            if let Some(policy) = by_type.get(&k) {
                return policy.answer(ctx);
            }
        }
        if rrtype != RrType::Cname {
            if let Some(policy) = by_type.get(&RrTypeKey::Cname) {
                return policy.answer(ctx);
            }
        }
        Vec::new()
    }

    /// Does the name exist at all?
    pub fn contains(&self, owner: &DomainName) -> bool {
        self.entries.contains_key(owner)
    }

    /// Number of owner names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database holds no names.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all owner names.
    pub fn owners(&self) -> impl Iterator<Item = &DomainName> {
        self.entries.keys()
    }

    /// Ground truth: every address record a name could ever resolve to.
    pub fn all_addresses(&self, owner: &DomainName) -> Vec<RData> {
        self.entries
            .get(owner)
            .map(|by_type| {
                by_type
                    .values()
                    .flat_map(|p| p.all_records())
                    .filter(|r| matches!(r, RData::A(_) | RData::Aaaa(_)))
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_nettypes::{Date, SimTime};
    use std::net::Ipv4Addr;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn a(last: u8) -> RData {
        RData::A(Ipv4Addr::new(192, 0, 2, last))
    }

    fn ctx(continent: Continent, day: u32, resolver: u64) -> ResolutionContext {
        ResolutionContext {
            client_continent: continent,
            time: Date::new(2022, 3, day).midnight(),
            resolver_id: resolver,
        }
    }

    #[test]
    fn static_policy_always_answers_fully() {
        let mut db = ZoneDb::new();
        db.set_static(d("gw.example.com"), vec![a(1), a(2)]);
        let ans = db.query(
            &d("gw.example.com"),
            RrType::A,
            &ctx(Continent::Europe, 1, 0),
        );
        assert_eq!(ans.len(), 2);
        // No AAAA policy installed.
        assert!(db
            .query(
                &d("gw.example.com"),
                RrType::Aaaa,
                &ctx(Continent::Europe, 1, 0)
            )
            .is_empty());
    }

    #[test]
    fn rotating_policy_walks_pool_over_days() {
        let mut db = ZoneDb::new();
        let pool: Vec<RData> = (1..=10).map(a).collect();
        db.set_policy(
            d("lb.example.com"),
            RrType::A,
            Policy::Rotating {
                pool,
                window: 2,
                salt: 0,
            },
        );
        let mut seen = std::collections::HashSet::new();
        for day in 1..=10 {
            for r in db.query(
                &d("lb.example.com"),
                RrType::A,
                &ctx(Continent::Europe, day, 0),
            ) {
                seen.insert(r);
            }
        }
        // Several days of resolution expose more of the pool than one day.
        let one_day: std::collections::HashSet<_> = db
            .query(
                &d("lb.example.com"),
                RrType::A,
                &ctx(Continent::Europe, 1, 0),
            )
            .into_iter()
            .collect();
        assert_eq!(one_day.len(), 2);
        assert!(seen.len() > one_day.len());
    }

    #[test]
    fn rotating_policy_varies_by_resolver() {
        let mut db = ZoneDb::new();
        let pool: Vec<RData> = (1..=20).map(a).collect();
        db.set_policy(
            d("lb.example.com"),
            RrType::A,
            Policy::Rotating {
                pool,
                window: 3,
                salt: 0,
            },
        );
        let r0: Vec<_> = db.query(
            &d("lb.example.com"),
            RrType::A,
            &ctx(Continent::Europe, 1, 0),
        );
        let r2: Vec<_> = db.query(
            &d("lb.example.com"),
            RrType::A,
            &ctx(Continent::Europe, 1, 2),
        );
        assert_ne!(r0, r2, "resolver groups see shifted slices");
    }

    #[test]
    fn geo_policy_depends_on_continent() {
        let mut db = ZoneDb::new();
        db.set_policy(
            d("geo.example.com"),
            RrType::A,
            Policy::Geo {
                by_continent: vec![
                    (Continent::Europe, vec![a(10)]),
                    (Continent::NorthAmerica, vec![a(20)]),
                ],
                fallback: vec![a(30)],
            },
        );
        let eu = db.query(
            &d("geo.example.com"),
            RrType::A,
            &ctx(Continent::Europe, 1, 0),
        );
        let us = db.query(
            &d("geo.example.com"),
            RrType::A,
            &ctx(Continent::NorthAmerica, 1, 0),
        );
        let asia = db.query(
            &d("geo.example.com"),
            RrType::A,
            &ctx(Continent::Asia, 1, 0),
        );
        assert_eq!(eu, vec![a(10)]);
        assert_eq!(us, vec![a(20)]);
        assert_eq!(asia, vec![a(30)]);
    }

    #[test]
    fn cname_answers_for_address_queries() {
        let mut db = ZoneDb::new();
        db.set_policy(
            d("alias.example.com"),
            RrType::Cname,
            Policy::Alias(d("real.example.com")),
        );
        let ans = db.query(
            &d("alias.example.com"),
            RrType::A,
            &ctx(Continent::Europe, 1, 0),
        );
        assert_eq!(ans, vec![RData::Cname(d("real.example.com"))]);
    }

    #[test]
    fn all_addresses_is_ground_truth() {
        let mut db = ZoneDb::new();
        db.set_policy(
            d("lb.example.com"),
            RrType::A,
            Policy::Rotating {
                pool: (1..=5).map(a).collect(),
                window: 1,
                salt: 9,
            },
        );
        assert_eq!(db.all_addresses(&d("lb.example.com")).len(), 5);
        assert!(db.all_addresses(&d("unknown.example.com")).is_empty());
    }

    #[test]
    fn nonexistent_name_answers_empty() {
        let db = ZoneDb::new();
        assert!(db
            .query(
                &d("nope.example.com"),
                RrType::A,
                &ctx(Continent::Europe, 1, 0)
            )
            .is_empty());
        assert!(!db.contains(&d("nope.example.com")));
    }

    #[test]
    fn simtime_used_for_rotation_is_day_granular() {
        let mut db = ZoneDb::new();
        db.set_policy(
            d("lb.example.com"),
            RrType::A,
            Policy::Rotating {
                pool: (1..=7).map(a).collect(),
                window: 1,
                salt: 3,
            },
        );
        let c = ctx(Continent::Europe, 2, 0);
        let later = ResolutionContext {
            time: SimTime(c.time.unix() + 3600),
            ..c
        };
        assert_eq!(
            db.query(&d("lb.example.com"), RrType::A, &c),
            db.query(&d("lb.example.com"), RrType::A, &later),
            "rotation is stable within a day"
        );
    }
}
