//! Passive DNS database — the DNSDB stand-in.
//!
//! DNSDB aggregates DNS answers observed at sensors co-located with
//! recursive resolvers world-wide, storing for each unique `(owner, rdata)`
//! pair the first-seen time, last-seen time, and observation count. The
//! paper queries it two ways (§3.3, Appendix A): *Flexible Search* (regex
//! over owner names, time-bounded) and *Basic Search* (wildcard owner
//! queries), and additionally inverts it (*rdata* lookups: "which domains
//! resolve to this IP?") for the shared-vs-dedicated classification of
//! §3.4.
//!
//! Coverage is inherently partial — "it does not have full coverage of all
//! DNS requests" (§3.6) — which the world model reproduces by only feeding
//! the database a sampled subset of simulated resolutions.

use crate::record::{RData, RrType};
use iotmap_dregex::query::{DnsdbQuery, DnsdbRdataQuery, RrTypeFilter};
use iotmap_faults::PassiveDnsFaults;
use iotmap_nettypes::{DomainName, SimDuration, SimTime, StudyPeriod, SuffixIndex};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::net::IpAddr;

/// One aggregated RRset observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrsetEntry {
    pub owner: DomainName,
    pub rdata: RData,
    pub time_first: SimTime,
    pub time_last: SimTime,
    pub count: u64,
}

impl RrsetEntry {
    /// Was this entry observed within the window (overlap semantics, like
    /// DNSDB's `time_first_before` / `time_last_after` filters)?
    pub fn observed_in(&self, window: &StudyPeriod) -> bool {
        self.time_first < window.end && self.time_last >= window.start
    }
}

/// The passive DNS store.
#[derive(Debug, Clone, Default)]
pub struct PassiveDnsDb {
    entries: Vec<RrsetEntry>,
    by_pair: HashMap<(DomainName, RData), usize>,
    by_ip: HashMap<IpAddr, Vec<usize>>,
    by_owner: HashMap<DomainName, Vec<usize>>,
    /// Reversed-label index over owner names; postings are entry-table
    /// indices, ascending because entries only ever append.
    by_suffix: SuffixIndex,
}

impl PassiveDnsDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a database from already-aggregated entries, preserving
    /// their order, times, and counts while reconstructing every index —
    /// the deserialization path for cached/checkpointed databases. Entries
    /// must carry distinct `(owner, rdata)` pairs, which any dump of an
    /// existing database satisfies.
    pub fn from_entries(entries: Vec<RrsetEntry>) -> Self {
        let mut db = PassiveDnsDb::new();
        db.entries.reserve(entries.len());
        for e in entries {
            db.push_entry(e);
        }
        db
    }

    /// Record one observation of `(owner, rdata)` at `time`. The common
    /// (aggregation) case is a single hash lookup with no clones; the pair
    /// is cloned only when a new entry is created.
    pub fn observe(&mut self, owner: DomainName, rdata: RData, time: SimTime) {
        match self.by_pair.entry((owner, rdata)) {
            Entry::Occupied(o) => {
                let e = &mut self.entries[*o.get()];
                e.time_first = e.time_first.min(time);
                e.time_last = e.time_last.max(time);
                e.count += 1;
            }
            Entry::Vacant(v) => {
                let idx = self.entries.len();
                let (owner, rdata) = v.key().clone();
                v.insert(idx);
                if let Some(ip) = rdata.ip() {
                    self.by_ip.entry(ip).or_default().push(idx);
                }
                self.by_owner.entry(owner.clone()).or_default().push(idx);
                self.by_suffix.insert(owner.as_str(), idx as u32);
                self.entries.push(RrsetEntry {
                    owner,
                    rdata,
                    time_first: time,
                    time_last: time,
                    count: 1,
                });
            }
        }
    }

    /// Number of unique `(owner, rdata)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Run a DNSDB query (either API type) bounded to a time window.
    pub fn search<'a>(
        &'a self,
        query: &'a DnsdbQuery,
        window: StudyPeriod,
    ) -> impl Iterator<Item = &'a RrsetEntry> {
        self.entries.iter().filter(move |e| {
            e.observed_in(&window) && query.matches(&e.owner.fqdn(), rrtype_filter_of(&e.rdata))
        })
    }

    /// Run a typed DNSDB rdata query (`rdata/ip/<addr>`).
    pub fn search_rdata(
        &self,
        query: &DnsdbRdataQuery,
        window: StudyPeriod,
    ) -> impl Iterator<Item = &RrsetEntry> {
        self.domains_for_ip(query.ip, window)
    }

    /// Inverse (rdata) lookup: all entries whose answer is `ip`, observed
    /// in the window. This powers the shared-vs-dedicated check of §3.4.
    pub fn domains_for_ip(
        &self,
        ip: IpAddr,
        window: StudyPeriod,
    ) -> impl Iterator<Item = &RrsetEntry> {
        self.by_ip
            .get(&ip)
            .into_iter()
            .flatten()
            .map(move |&idx| &self.entries[idx])
            .filter(move |e| e.observed_in(&window))
    }

    /// All entries under one owner name, observed in the window — used by
    /// the pipeline's CNAME-chain chasing (a PR backend's tenant domain
    /// aliases a cloud load-balancer name; the A records live under the
    /// LB owner).
    pub fn entries_for_owner(
        &self,
        owner: &DomainName,
        window: StudyPeriod,
    ) -> impl Iterator<Item = &RrsetEntry> {
        self.by_owner
            .get(owner)
            .into_iter()
            .flatten()
            .map(move |&idx| &self.entries[idx])
            .filter(move |e| e.observed_in(&window))
    }

    /// All distinct owner names observed in a window (for active-campaign
    /// seeding).
    pub fn owners_in(&self, window: StudyPeriod) -> Vec<DomainName> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for e in &self.entries {
            if e.observed_in(&window) && seen.insert(&e.owner) {
                out.push(e.owner.clone());
            }
        }
        out
    }

    /// Iterate over every entry (for diagnostics / exports).
    pub fn entries(&self) -> impl Iterator<Item = &RrsetEntry> {
        self.entries.iter()
    }

    /// The raw entry table as a slice, in observation-insertion order —
    /// the unit the parallel scans shard over.
    pub fn entries_slice(&self) -> &[RrsetEntry] {
        &self.entries
    }

    /// The reversed-label suffix index over owner names. Postings are
    /// indices into [`PassiveDnsDb::entries_slice`], ascending; candidates
    /// still need the caller's own time-window and pattern verification.
    pub fn owner_suffix_index(&self) -> &SuffixIndex {
        &self.by_suffix
    }

    /// Re-insert an already-aggregated entry, preserving its times and
    /// count while maintaining every index — the degraded-copy rebuild
    /// path. Assumes the `(owner, rdata)` pair is not already present.
    fn push_entry(&mut self, e: RrsetEntry) {
        let idx = self.entries.len();
        if let Some(ip) = e.rdata.ip() {
            self.by_ip.entry(ip).or_default().push(idx);
        }
        self.by_owner.entry(e.owner.clone()).or_default().push(idx);
        self.by_suffix.insert(e.owner.as_str(), idx as u32);
        self.by_pair.insert((e.owner.clone(), e.rdata.clone()), idx);
        self.entries.push(e);
    }

    /// A degraded copy of this database under a fault plan: sensor-side
    /// record loss drops whole `(owner, rdata)` entries by a pure roll on
    /// their identity, and sensor outage windows (days relative to
    /// `period.start`) erase what was observed during them — an entry
    /// wholly inside an outage disappears, an entry straddling one has
    /// its first/last-seen times clipped to the outage boundary.
    ///
    /// Entry order, aggregates, and all three indexes are rebuilt
    /// faithfully for the survivors, so consumers cannot tell a degraded
    /// database from one that simply observed less. Emits
    /// `faults.passive_dns.*` counters when the plan is active.
    pub fn degraded(
        &self,
        fault_seed: u64,
        faults: &PassiveDnsFaults,
        period: &StudyPeriod,
    ) -> PassiveDnsDb {
        let outages: Vec<(SimTime, SimTime)> = faults
            .outage_windows
            .iter()
            .map(|&(offset, len)| {
                let start = period.start + SimDuration::hours(24 * offset as u64);
                (start, start + SimDuration::hours(24 * len as u64))
            })
            .collect();
        let inside = |t: SimTime| outages.iter().find(|(ws, we)| t >= *ws && t < *we);
        let mut db = PassiveDnsDb::new();
        let (mut lost, mut outage_dropped, mut clipped) = (0u64, 0u64, 0u64);
        for e in &self.entries {
            let key = iotmap_faults::key2(
                iotmap_faults::hash_str(e.owner.as_str()),
                iotmap_faults::hash_str(&format!("{:?}", e.rdata)),
            );
            if iotmap_faults::drops(fault_seed, "pdns.record_loss", key, faults.record_loss_rate) {
                lost += 1;
                continue;
            }
            let mut e = e.clone();
            let mut was_clipped = false;
            if let Some(&(_, we)) = inside(e.time_first) {
                e.time_first = we;
                was_clipped = true;
            }
            if let Some(&(ws, _)) = inside(e.time_last) {
                e.time_last = ws;
                was_clipped = true;
            }
            if e.time_first > e.time_last {
                // The whole observed life of this entry fell inside
                // outage windows: the sensors never saw it.
                outage_dropped += 1;
                continue;
            }
            if was_clipped {
                clipped += 1;
            }
            db.push_entry(e);
        }
        if faults.is_active() {
            iotmap_obs::count!("faults.passive_dns.entries_lost", lost);
            iotmap_obs::count!("faults.passive_dns.entries_outage_dropped", outage_dropped);
            iotmap_obs::count!("faults.passive_dns.entries_clipped", clipped);
            iotmap_obs::count!("faults.passive_dns.records_dropped", lost + outage_dropped);
        }
        db
    }

    /// [`PassiveDnsDb::search`], sharded over the entry table via
    /// `iotmap-par`. Hits come back in table order — identical to the
    /// serial iterator — because shards are contiguous and merged in
    /// shard-index order.
    pub fn par_search(&self, query: &DnsdbQuery, window: StudyPeriod) -> Vec<&RrsetEntry> {
        iotmap_par::shard_fold(
            &self.entries,
            |_ctx| Vec::new(),
            |hits: &mut Vec<&RrsetEntry>, _i, e| {
                if e.observed_in(&window)
                    && query.matches(&e.owner.fqdn(), rrtype_filter_of(&e.rdata))
                {
                    hits.push(e);
                }
            },
            |a, b| a.extend(b),
        )
    }
}

fn rrtype_filter_of(rdata: &RData) -> RrTypeFilter {
    match rdata.rrtype() {
        RrType::A => RrTypeFilter::A,
        RrType::Aaaa => RrTypeFilter::Aaaa,
        RrType::Cname => RrTypeFilter::Cname,
        RrType::Ptr => RrTypeFilter::Any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_nettypes::Date;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn t(day: u32) -> SimTime {
        Date::new(2022, 3, day).midnight()
    }

    fn a(last: u8) -> RData {
        RData::A(
            format!("192.0.2.{last}")
                .parse::<std::net::Ipv4Addr>()
                .unwrap(),
        )
    }

    fn week() -> StudyPeriod {
        StudyPeriod::from_dates(Date::new(2022, 3, 1), Date::new(2022, 3, 8))
    }

    #[test]
    fn observe_aggregates_counts_and_times() {
        let mut db = PassiveDnsDb::new();
        db.observe(d("x.iot.sap"), a(1), t(3));
        db.observe(d("x.iot.sap"), a(1), t(5));
        db.observe(d("x.iot.sap"), a(1), t(2));
        assert_eq!(db.len(), 1);
        let e = db.entries().next().unwrap();
        assert_eq!(e.count, 3);
        assert_eq!(e.time_first, t(2));
        assert_eq!(e.time_last, t(5));
    }

    #[test]
    fn flexible_search_matches_pattern_and_window() {
        let mut db = PassiveDnsDb::new();
        db.observe(d("hub1.azure-devices.net"), a(1), t(2));
        db.observe(d("hub2.azure-devices.net"), a(2), t(3));
        db.observe(d("unrelated.example.com"), a(3), t(3));
        let q = DnsdbQuery::flexible(r"(.+\.|^)(azure-devices\.net\.$)/A").unwrap();
        let hits: Vec<_> = db.search(&q, week()).collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn search_respects_time_window() {
        let mut db = PassiveDnsDb::new();
        db.observe(
            d("old.azure-devices.net"),
            a(1),
            Date::new(2021, 6, 1).midnight(),
        );
        let q = DnsdbQuery::flexible(r"(.+\.|^)(azure-devices\.net\.$)/A").unwrap();
        assert_eq!(db.search(&q, week()).count(), 0);
        // Overlap: first seen before the window, last seen inside.
        db.observe(d("old.azure-devices.net"), a(1), t(4));
        assert_eq!(db.search(&q, week()).count(), 1);
    }

    #[test]
    fn rrtype_filter_applies() {
        let mut db = PassiveDnsDb::new();
        db.observe(d("h.azure-devices.net"), a(1), t(2));
        db.observe(
            d("h.azure-devices.net"),
            RData::Aaaa("2001:db8::1".parse().unwrap()),
            t(2),
        );
        let qa = DnsdbQuery::flexible(r"(.+\.|^)(azure-devices\.net\.$)/A").unwrap();
        let q6 = DnsdbQuery::flexible(r"(.+\.|^)(azure-devices\.net\.$)/AAAA").unwrap();
        assert_eq!(db.search(&qa, week()).count(), 1);
        assert_eq!(db.search(&q6, week()).count(), 1);
    }

    #[test]
    fn domains_for_ip_inverse_lookup() {
        let mut db = PassiveDnsDb::new();
        db.observe(d("iot.example.com"), a(7), t(2));
        db.observe(d("www.shop.com"), a(7), t(3));
        db.observe(d("other.example.com"), a(8), t(3));
        let hits: Vec<_> = db
            .domains_for_ip("192.0.2.7".parse().unwrap(), week())
            .map(|e| e.owner.as_str().to_string())
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&"iot.example.com".to_string()));
        assert!(hits.contains(&"www.shop.com".to_string()));
    }

    #[test]
    fn rdata_query_round_trip() {
        let mut db = PassiveDnsDb::new();
        db.observe(d("iot.example.com"), a(9), t(2));
        let q = DnsdbRdataQuery::parse("rdata/ip/192.0.2.9").unwrap();
        assert_eq!(db.search_rdata(&q, week()).count(), 1);
        let none = DnsdbRdataQuery::parse("rdata/ip/192.0.2.200").unwrap();
        assert_eq!(db.search_rdata(&none, week()).count(), 0);
    }

    #[test]
    fn par_search_matches_serial_at_any_thread_count() {
        let mut db = PassiveDnsDb::new();
        for i in 0..200u8 {
            let owner = if i % 3 == 0 {
                format!("hub{i}.azure-devices.net")
            } else {
                format!("host{i}.example.com")
            };
            db.observe(d(&owner), a(i), t(1 + (i % 7) as u32));
        }
        let q = DnsdbQuery::flexible(r"(.+\.|^)(azure-devices\.net\.$)/A").unwrap();
        let serial: Vec<_> = db.search(&q, week()).collect();
        for threads in [1, 2, 4, 8] {
            let parallel = iotmap_par::with_threads(threads, || db.par_search(&q, week()));
            assert_eq!(parallel, serial, "threads {threads}");
        }
    }

    #[test]
    fn suffix_index_tracks_observe_and_degraded_rebuilds() {
        use iotmap_nettypes::SuffixQuery;
        let mut db = PassiveDnsDb::new();
        db.observe(d("hub1.azure-devices.net"), a(1), t(2));
        db.observe(d("hub1.azure-devices.net"), a(1), t(4)); // aggregate, no new posting
        db.observe(d("hub2.azure-devices.net"), a(2), t(3));
        db.observe(d("unrelated.example.com"), a(3), t(3));
        let q = SuffixQuery::parse(".azure-devices.net.").unwrap();
        assert_eq!(db.owner_suffix_index().lookup(&q), vec![0, 1]);
        // The degraded rebuild maintains the index for survivors too.
        let copy = db.degraded(0, &PassiveDnsFaults::NONE, &week());
        assert_eq!(copy.owner_suffix_index().lookup(&q), vec![0, 1]);
        assert_eq!(copy.owner_suffix_index().len(), db.len());
    }

    #[test]
    fn owners_in_dedupes() {
        let mut db = PassiveDnsDb::new();
        db.observe(d("a.example.com"), a(1), t(2));
        db.observe(d("a.example.com"), a(2), t(2));
        db.observe(d("b.example.com"), a(3), t(2));
        assert_eq!(db.owners_in(week()).len(), 2);
    }
}
