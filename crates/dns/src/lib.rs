//! # iotmap-dns — the DNS substrate
//!
//! The paper's discovery pipeline leans on DNS twice (§3.3):
//!
//! 1. **Passive DNS** — DNSDB, "a passive DNS database that contains
//!    historical DNS queries and replies for both IPv4 and IPv6 from
//!    multiple resolvers around the globe", queried with regular expressions
//!    and time ranges. Module [`passive`].
//! 2. **Active DNS** — daily resolutions of every DNSDB-discovered domain
//!    from three vantage points (two in Europe, one in the US), which
//!    increased IP coverage by ≈17% over a single vantage point. Module
//!    [`active`].
//!
//! Underneath both sits an authoritative model ([`zone`]): IoT backend
//! providers answer queries with policies ranging from static A records to
//! geo-DNS and rotating load-balancer pools — the mechanics that make
//! multiple vantage points and repeated resolution worthwhile in the first
//! place.

pub mod active;
pub mod passive;
pub mod rdns;
pub mod record;
pub mod resolver;
pub mod zone;

pub use active::{ActiveCampaign, ActiveObservation, CampaignResult, VantagePoint};
pub use passive::{PassiveDnsDb, RrsetEntry};
pub use rdns::PtrRegistry;
pub use record::{RData, Record, RrType};
pub use resolver::{resolve, ResolutionContext};
pub use zone::{Policy, ZoneDb};
