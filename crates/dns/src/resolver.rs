//! Recursive resolution: CNAME chasing over a [`ZoneDb`].

use crate::record::{RData, RrType};
use crate::zone::ZoneDb;
use iotmap_nettypes::{Continent, DomainName, SimTime};
use std::net::IpAddr;

/// Context describing who asks and when — the inputs that authoritative
/// policies (geo-DNS, rotation) depend on.
#[derive(Debug, Clone)]
pub struct ResolutionContext {
    /// Continent of the querying resolver / client.
    pub client_continent: Continent,
    /// Query time (rotation policies are day-granular).
    pub time: SimTime,
    /// Identity of the recursive resolver (different resolvers are served
    /// different load-balancer slices).
    pub resolver_id: u64,
}

impl ResolutionContext {
    /// A fixed context for tests and simple lookups.
    pub fn simple(continent: Continent, time: SimTime) -> Self {
        ResolutionContext {
            client_continent: continent,
            time,
            resolver_id: 0,
        }
    }
}

/// Maximum CNAME chain length (RFC-ish sanity bound).
const MAX_CHAIN: usize = 8;

/// Resolve `name` to addresses of the requested type, following CNAMEs.
///
/// Returns the final address set (possibly empty). Loops and over-long
/// chains resolve to nothing, as a real resolver would SERVFAIL.
pub fn resolve(
    db: &ZoneDb,
    name: &DomainName,
    rrtype: RrType,
    ctx: &ResolutionContext,
) -> Vec<IpAddr> {
    debug_assert!(matches!(rrtype, RrType::A | RrType::Aaaa));
    let mut current = name.clone();
    for _ in 0..MAX_CHAIN {
        let answers = db.query(&current, rrtype, ctx);
        if answers.is_empty() {
            return Vec::new();
        }
        // Either all addresses or a CNAME.
        if let Some(RData::Cname(target)) = answers.iter().find(|r| matches!(r, RData::Cname(_))) {
            current = target.clone();
            continue;
        }
        return answers.iter().filter_map(|r| r.ip()).collect();
    }
    Vec::new()
}

/// Resolve both address families and merge.
pub fn resolve_all(db: &ZoneDb, name: &DomainName, ctx: &ResolutionContext) -> Vec<IpAddr> {
    let mut out = resolve(db, name, RrType::A, ctx);
    out.extend(resolve(db, name, RrType::Aaaa, ctx));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Policy;
    use iotmap_nettypes::Date;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn ctx() -> ResolutionContext {
        ResolutionContext::simple(Continent::Europe, Date::new(2022, 3, 1).midnight())
    }

    #[test]
    fn direct_resolution() {
        let mut db = ZoneDb::new();
        db.set_static(
            d("gw.example.com"),
            vec![RData::A("192.0.2.1".parse().unwrap())],
        );
        let ips = resolve(&db, &d("gw.example.com"), RrType::A, &ctx());
        assert_eq!(ips, vec!["192.0.2.1".parse::<IpAddr>().unwrap()]);
    }

    #[test]
    fn cname_chain_followed() {
        let mut db = ZoneDb::new();
        db.set_policy(
            d("a.example.com"),
            RrType::Cname,
            Policy::Alias(d("b.example.com")),
        );
        db.set_policy(
            d("b.example.com"),
            RrType::Cname,
            Policy::Alias(d("c.example.com")),
        );
        db.set_static(
            d("c.example.com"),
            vec![RData::A("192.0.2.9".parse().unwrap())],
        );
        let ips = resolve(&db, &d("a.example.com"), RrType::A, &ctx());
        assert_eq!(ips, vec!["192.0.2.9".parse::<IpAddr>().unwrap()]);
    }

    #[test]
    fn cname_loop_resolves_to_nothing() {
        let mut db = ZoneDb::new();
        db.set_policy(
            d("x.example.com"),
            RrType::Cname,
            Policy::Alias(d("y.example.com")),
        );
        db.set_policy(
            d("y.example.com"),
            RrType::Cname,
            Policy::Alias(d("x.example.com")),
        );
        assert!(resolve(&db, &d("x.example.com"), RrType::A, &ctx()).is_empty());
    }

    #[test]
    fn dangling_cname_resolves_to_nothing() {
        let mut db = ZoneDb::new();
        db.set_policy(
            d("a.example.com"),
            RrType::Cname,
            Policy::Alias(d("gone.example.com")),
        );
        assert!(resolve(&db, &d("a.example.com"), RrType::A, &ctx()).is_empty());
    }

    #[test]
    fn resolve_all_merges_families() {
        let mut db = ZoneDb::new();
        db.set_static(
            d("dual.example.com"),
            vec![
                RData::A("192.0.2.1".parse().unwrap()),
                RData::Aaaa("2001:db8::1".parse().unwrap()),
            ],
        );
        let ips = resolve_all(&db, &d("dual.example.com"), &ctx());
        assert_eq!(ips.len(), 2);
        assert!(ips.iter().any(|ip| ip.is_ipv4()));
        assert!(ips.iter().any(|ip| ip.is_ipv6()));
    }
}
