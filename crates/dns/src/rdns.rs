//! Reverse DNS (PTR records).
//!
//! §3.7: "we use best current practices to ensure that our prober IP
//! address has a meaningful DNS PTR record. We run a Web server with
//! experiment and opt-out information that responds to DNS resolution of
//! the DNS PTR domain." Scanned networks routinely look up who probed them;
//! this registry is that lookup surface.

use crate::record::RData;
use iotmap_nettypes::DomainName;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// The reverse-DNS registry: address → PTR target.
#[derive(Debug, Default)]
pub struct PtrRegistry {
    entries: HashMap<IpAddr, DomainName>,
}

impl PtrRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the PTR record for an address.
    pub fn set(&mut self, addr: IpAddr, target: DomainName) {
        self.entries.insert(addr, target);
    }

    /// Look up the PTR target for an address.
    pub fn lookup(&self, addr: IpAddr) -> Option<&DomainName> {
        self.entries.get(&addr)
    }

    /// Answer a query for the `in-addr.arpa` / `ip6.arpa` owner name, as a
    /// resolver would present it.
    pub fn query_arpa(&self, owner: &DomainName) -> Option<RData> {
        let addr = parse_arpa(owner)?;
        self.lookup(addr).cloned().map(RData::Ptr)
    }

    /// Number of registered records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no PTR records exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The `in-addr.arpa` owner name for an IPv4 address.
pub fn v4_arpa_name(addr: Ipv4Addr) -> DomainName {
    let o = addr.octets();
    format!("{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0])
        .parse()
        .expect("arpa names are valid")
}

/// The `ip6.arpa` owner name for an IPv6 address (nibble-reversed).
pub fn v6_arpa_name(addr: Ipv6Addr) -> DomainName {
    let value = u128::from(addr);
    let mut labels = Vec::with_capacity(32);
    for i in 0..32 {
        let nibble = (value >> (i * 4)) & 0xF;
        labels.push(format!("{nibble:x}"));
    }
    format!("{}.ip6.arpa", labels.join("."))
        .parse()
        .expect("arpa names are valid")
}

/// Parse an arpa owner name back to an address.
pub fn parse_arpa(owner: &DomainName) -> Option<IpAddr> {
    let s = owner.as_str();
    if let Some(prefix) = s.strip_suffix(".in-addr.arpa") {
        let octets: Vec<u8> = prefix
            .split('.')
            .map(|l| l.parse().ok())
            .collect::<Option<Vec<u8>>>()?;
        if octets.len() != 4 {
            return None;
        }
        return Some(IpAddr::V4(Ipv4Addr::new(
            octets[3], octets[2], octets[1], octets[0],
        )));
    }
    if let Some(prefix) = s.strip_suffix(".ip6.arpa") {
        let nibbles: Vec<u128> = prefix
            .split('.')
            .map(|l| u128::from_str_radix(l, 16).ok().filter(|_| l.len() == 1))
            .collect::<Option<Vec<u128>>>()?;
        if nibbles.len() != 32 {
            return None;
        }
        let mut value = 0u128;
        for (i, n) in nibbles.iter().enumerate() {
            value |= n << (i * 4);
        }
        return Some(IpAddr::V6(Ipv6Addr::from(value)));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_arpa_roundtrip() {
        let addr: Ipv4Addr = "203.0.113.7".parse().unwrap();
        let name = v4_arpa_name(addr);
        assert_eq!(name.as_str(), "7.113.0.203.in-addr.arpa");
        assert_eq!(parse_arpa(&name), Some(IpAddr::V4(addr)));
    }

    #[test]
    fn v6_arpa_roundtrip() {
        let addr: Ipv6Addr = "2001:db8::42".parse().unwrap();
        let name = v6_arpa_name(addr);
        assert!(name.as_str().ends_with(".ip6.arpa"));
        assert_eq!(name.label_count(), 34);
        assert_eq!(parse_arpa(&name), Some(IpAddr::V6(addr)));
    }

    #[test]
    fn registry_set_and_query() {
        let mut r = PtrRegistry::new();
        let prober: IpAddr = "198.51.100.77".parse().unwrap();
        r.set(
            prober,
            "research-scanner.iotmap-experiment.example"
                .parse()
                .unwrap(),
        );
        assert_eq!(
            r.lookup(prober).unwrap().as_str(),
            "research-scanner.iotmap-experiment.example"
        );
        // A scanned party resolves the arpa name and finds the experiment.
        let owner = v4_arpa_name("198.51.100.77".parse().unwrap());
        match r.query_arpa(&owner) {
            Some(RData::Ptr(target)) => {
                assert!(target.as_str().contains("experiment"));
            }
            other => panic!("expected PTR, got {other:?}"),
        }
        assert!(r
            .query_arpa(&v4_arpa_name("8.8.8.8".parse().unwrap()))
            .is_none());
    }

    #[test]
    fn malformed_arpa_names_rejected() {
        for bad in [
            "1.2.3.in-addr.arpa",     // too few labels
            "300.2.3.4.in-addr.arpa", // octet overflow
            "x.2.3.4.in-addr.arpa",   // not a number
            "1.2.3.4.example.com",    // wrong suffix
            "ff.0.0.0.ip6.arpa",      // multi-char nibble
        ] {
            let owner: DomainName = bad.parse().unwrap();
            assert_eq!(parse_arpa(&owner), None, "{bad}");
        }
    }
}
