//! DNS resource records (the subset the study needs).

use iotmap_nettypes::DomainName;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrType {
    A,
    Aaaa,
    Cname,
    Ptr,
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RrType::A => "A",
            RrType::Aaaa => "AAAA",
            RrType::Cname => "CNAME",
            RrType::Ptr => "PTR",
        })
    }
}

/// Record data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Cname(DomainName),
    Ptr(DomainName),
}

impl RData {
    /// The record type this data belongs to.
    pub fn rrtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Cname(_) => RrType::Cname,
            RData::Ptr(_) => RrType::Ptr,
        }
    }

    /// The address, for address records.
    pub fn ip(&self) -> Option<IpAddr> {
        match self {
            RData::A(a) => Some(IpAddr::V4(*a)),
            RData::Aaaa(a) => Some(IpAddr::V6(*a)),
            _ => None,
        }
    }

    /// The target name, for CNAME/PTR records.
    pub fn name(&self) -> Option<&DomainName> {
        match self {
            RData::Cname(n) | RData::Ptr(n) => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Cname(n) | RData::Ptr(n) => write!(f, "{}", n.fqdn()),
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    pub owner: DomainName,
    pub rdata: RData,
    /// Time-to-live in seconds. IoT gateways typically use short TTLs so
    /// load balancing takes effect quickly.
    pub ttl: u32,
}

impl Record {
    /// Construct a record with a default 300 s TTL.
    pub fn new(owner: DomainName, rdata: RData) -> Self {
        Record {
            owner,
            rdata,
            ttl: 300,
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.owner.fqdn(),
            self.ttl,
            self.rdata.rrtype(),
            self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn rdata_accessors() {
        let a = RData::A("192.0.2.1".parse().unwrap());
        assert_eq!(a.rrtype(), RrType::A);
        assert_eq!(a.ip(), Some("192.0.2.1".parse().unwrap()));
        assert!(a.name().is_none());

        let c = RData::Cname(d("target.example.com"));
        assert_eq!(c.rrtype(), RrType::Cname);
        assert!(c.ip().is_none());
        assert_eq!(c.name().unwrap().as_str(), "target.example.com");
    }

    #[test]
    fn display_zone_file_style() {
        let r = Record::new(
            d("host.example.com"),
            RData::A("192.0.2.1".parse().unwrap()),
        );
        assert_eq!(r.to_string(), "host.example.com. 300 A 192.0.2.1");
    }

    #[test]
    fn aaaa_record() {
        let r = RData::Aaaa("2001:db8::1".parse().unwrap());
        assert_eq!(r.rrtype(), RrType::Aaaa);
        assert!(r.ip().unwrap().is_ipv6());
    }
}
