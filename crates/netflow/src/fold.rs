//! Mergeable flow aggregation — the streaming counterpart of
//! [`FlowSink`](crate::FlowSink).
//!
//! A sink consumes the exported flow stream serially; a [`FlowFold`]
//! consumes it in **mergeable partials**, so the simulator can shard
//! each block of exported records across workers and combine the
//! per-shard accumulators in shard order. The full flow set is never
//! materialized: peak memory is one block of exported records plus the
//! aggregate state.
//!
//! Determinism contract (same as `iotmap_par::shard_fold`):
//! `merge(a, b)` must equal "continue folding b's records into a" for
//! any split of the stream — in practice every partial is built from
//! commutative joins (integer adds, set unions, map-entry adds), so a
//! sharded run is byte-identical to a serial one at any thread count.

use crate::record::FlowRecord;

/// A flow aggregation that can be computed in independent parts and
/// merged.
pub trait FlowFold {
    /// Per-shard accumulator state.
    type Partial: Send;

    /// A fresh, empty accumulator.
    fn make(&self) -> Self::Partial;

    /// Fold one exported record into an accumulator.
    fn fold(&self, acc: &mut Self::Partial, record: &FlowRecord);

    /// Combine `other` into `acc`. Must equal folding `other`'s records
    /// directly into `acc` (associative with respect to stream order).
    fn merge(&self, acc: &mut Self::Partial, other: Self::Partial);
}

/// The trivial fold: record/byte totals, for tests and smoke checks.
pub struct CountingFold;

/// Accumulator of [`CountingFold`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlowTotals {
    pub records: u64,
    pub bytes: u64,
}

impl FlowFold for CountingFold {
    type Partial = FlowTotals;

    fn make(&self) -> FlowTotals {
        FlowTotals::default()
    }

    fn fold(&self, acc: &mut FlowTotals, record: &FlowRecord) {
        acc.records += 1;
        acc.bytes += record.bytes;
    }

    fn merge(&self, acc: &mut FlowTotals, other: FlowTotals) {
        acc.records += other.records;
        acc.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Direction, LineId};
    use iotmap_nettypes::{Date, PortProto};

    #[test]
    fn counting_fold_merges_like_it_folds() {
        let mk = |bytes: u64| FlowRecord {
            time: Date::new(2022, 3, 1).midnight(),
            line: LineId(1),
            remote: "192.0.2.1".parse().unwrap(),
            port: PortProto::tcp(443),
            direction: Direction::Downstream,
            bytes,
            packets: 1,
        };
        let records: Vec<FlowRecord> = (1..=10).map(|i| mk(i * 100)).collect();
        let fold = CountingFold;
        let mut serial = fold.make();
        for r in &records {
            fold.fold(&mut serial, r);
        }
        for split in 0..=records.len() {
            let (a, b) = records.split_at(split);
            let mut left = fold.make();
            a.iter().for_each(|r| fold.fold(&mut left, r));
            let mut right = fold.make();
            b.iter().for_each(|r| fold.fold(&mut right, r));
            fold.merge(&mut left, right);
            assert_eq!(left, serial, "split at {split}");
        }
    }
}
