//! Streaming flow sinks.
//!
//! A week of ISP traffic at realistic scale is tens of millions of flow
//! records; the analyses never need them all in memory at once. Generators
//! push records into a [`FlowSink`]; analyses implement the trait and
//! accumulate exactly what they need (DESIGN.md decision #4).

use crate::record::FlowRecord;

/// A consumer of flow records.
pub trait FlowSink {
    /// Consume one record.
    fn accept(&mut self, record: &FlowRecord);

    /// Called once when the generating pass is complete.
    fn finish(&mut self) {}
}

/// Stores every record — for tests and small scales only.
#[derive(Debug, Default)]
pub struct StoringSink {
    pub records: Vec<FlowRecord>,
}

impl StoringSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlowSink for StoringSink {
    fn accept(&mut self, record: &FlowRecord) {
        self.records.push(*record);
    }
}

/// Counts records and bytes — the cheapest possible sink.
#[derive(Debug, Default)]
pub struct CountingSink {
    pub records: u64,
    pub bytes: u64,
}

impl CountingSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlowSink for CountingSink {
    fn accept(&mut self, record: &FlowRecord) {
        self.records += 1;
        self.bytes += record.bytes;
    }
}

/// Broadcasts records to several sinks in one pass.
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn FlowSink>,
}

impl<'a> MultiSink<'a> {
    /// Bundle sinks together.
    pub fn new(sinks: Vec<&'a mut dyn FlowSink>) -> Self {
        MultiSink { sinks }
    }
}

impl FlowSink for MultiSink<'_> {
    fn accept(&mut self, record: &FlowRecord) {
        for s in &mut self.sinks {
            s.accept(record);
        }
    }

    fn finish(&mut self) {
        for s in &mut self.sinks {
            s.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Direction, LineId};
    use iotmap_nettypes::{Date, PortProto};

    fn flow(bytes: u64) -> FlowRecord {
        FlowRecord {
            time: Date::new(2022, 3, 1).midnight(),
            line: LineId(1),
            remote: "192.0.2.1".parse().unwrap(),
            port: PortProto::tcp(443),
            direction: Direction::Downstream,
            bytes,
            packets: 1,
        }
    }

    #[test]
    fn storing_sink_keeps_everything() {
        let mut s = StoringSink::new();
        s.accept(&flow(10));
        s.accept(&flow(20));
        assert_eq!(s.records.len(), 2);
    }

    #[test]
    fn counting_sink_totals() {
        let mut s = CountingSink::new();
        s.accept(&flow(10));
        s.accept(&flow(20));
        assert_eq!(s.records, 2);
        assert_eq!(s.bytes, 30);
    }

    #[test]
    fn multi_sink_broadcasts() {
        let mut a = CountingSink::new();
        let mut b = StoringSink::new();
        {
            let mut m = MultiSink::new(vec![&mut a, &mut b]);
            m.accept(&flow(5));
            m.finish();
        }
        assert_eq!(a.records, 1);
        assert_eq!(b.records.len(), 1);
    }
}
