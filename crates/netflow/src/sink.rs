//! Streaming flow sinks.
//!
//! A week of ISP traffic at realistic scale is tens of millions of flow
//! records; the analyses never need them all in memory at once. Generators
//! push records into a [`FlowSink`]; analyses implement the trait and
//! accumulate exactly what they need (DESIGN.md decision #4).

use crate::record::FlowRecord;
use iotmap_faults::NetflowFaults;

/// A consumer of flow records.
pub trait FlowSink {
    /// Consume one record.
    fn accept(&mut self, record: &FlowRecord);

    /// Called once when the generating pass is complete.
    fn finish(&mut self) {}
}

/// Stores every record — for tests and small scales only.
#[derive(Debug, Default)]
pub struct StoringSink {
    pub records: Vec<FlowRecord>,
}

impl StoringSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlowSink for StoringSink {
    fn accept(&mut self, record: &FlowRecord) {
        self.records.push(*record);
    }
}

/// Counts records and bytes — the cheapest possible sink.
#[derive(Debug, Default)]
pub struct CountingSink {
    pub records: u64,
    pub bytes: u64,
}

impl CountingSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlowSink for CountingSink {
    fn accept(&mut self, record: &FlowRecord) {
        self.records += 1;
        self.bytes += record.bytes;
    }
}

/// Applies NetFlow export faults in front of another sink — the same
/// pure-roll wire-drop/reset decisions a [`crate::router::BorderRouter`]
/// makes, packaged as a wrapper for generators that feed a sink directly
/// (collector-side loss rather than router-side loss).
pub struct LossyExportSink<'a> {
    inner: &'a mut dyn FlowSink,
    faults: NetflowFaults,
    fault_seed: u64,
    /// Records lost to export faults so far.
    pub dropped: u64,
}

impl<'a> LossyExportSink<'a> {
    /// Wrap `inner` with the given export-fault plan.
    pub fn new(inner: &'a mut dyn FlowSink, fault_seed: u64, faults: NetflowFaults) -> Self {
        LossyExportSink {
            inner,
            faults,
            fault_seed,
            dropped: 0,
        }
    }
}

impl FlowSink for LossyExportSink<'_> {
    fn accept(&mut self, record: &FlowRecord) {
        if iotmap_faults::drops(
            self.fault_seed,
            "netflow.reset",
            record.time.epoch_hours(),
            self.faults.reset_rate,
        ) {
            self.dropped += 1;
            return;
        }
        let flow_key = iotmap_faults::key3(
            iotmap_faults::key2(record.time.unix(), record.line.0),
            iotmap_faults::key_ip(record.remote),
            iotmap_faults::key2(record.port.port as u64, record.direction as u64),
        );
        if iotmap_faults::drops(
            self.fault_seed,
            "netflow.export_drop",
            flow_key,
            self.faults.export_drop_rate,
        ) {
            self.dropped += 1;
            return;
        }
        self.inner.accept(record);
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

/// Broadcasts records to several sinks in one pass.
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn FlowSink>,
}

impl<'a> MultiSink<'a> {
    /// Bundle sinks together.
    pub fn new(sinks: Vec<&'a mut dyn FlowSink>) -> Self {
        MultiSink { sinks }
    }
}

impl FlowSink for MultiSink<'_> {
    fn accept(&mut self, record: &FlowRecord) {
        for s in &mut self.sinks {
            s.accept(record);
        }
    }

    fn finish(&mut self) {
        for s in &mut self.sinks {
            s.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Direction, LineId};
    use iotmap_nettypes::{Date, PortProto};

    fn flow(bytes: u64) -> FlowRecord {
        FlowRecord {
            time: Date::new(2022, 3, 1).midnight(),
            line: LineId(1),
            remote: "192.0.2.1".parse().unwrap(),
            port: PortProto::tcp(443),
            direction: Direction::Downstream,
            bytes,
            packets: 1,
        }
    }

    #[test]
    fn storing_sink_keeps_everything() {
        let mut s = StoringSink::new();
        s.accept(&flow(10));
        s.accept(&flow(20));
        assert_eq!(s.records.len(), 2);
    }

    #[test]
    fn counting_sink_totals() {
        let mut s = CountingSink::new();
        s.accept(&flow(10));
        s.accept(&flow(20));
        assert_eq!(s.records, 2);
        assert_eq!(s.bytes, 30);
    }

    #[test]
    fn lossy_sink_is_deterministic_and_monotone_in_rate() {
        let mk = |i: u8| FlowRecord {
            time: Date::new(2022, 3, 1).midnight(),
            line: LineId(i as u64),
            remote: format!("192.0.2.{i}").parse().unwrap(),
            port: PortProto::tcp(443),
            direction: Direction::Downstream,
            bytes: 10,
            packets: 1,
        };
        let run = |rate: f64| {
            let mut inner = StoringSink::new();
            let mut lossy = LossyExportSink::new(
                &mut inner,
                7,
                NetflowFaults {
                    export_drop_rate: rate,
                    reset_rate: 0.0,
                },
            );
            for i in 0..200 {
                lossy.accept(&mk(i as u8));
            }
            inner.records.iter().map(|r| r.line.0).collect::<Vec<_>>()
        };
        assert_eq!(run(0.3), run(0.3), "pure rolls: identical reruns");
        assert_eq!(run(0.0).len(), 200, "zero rate drops nothing");
        let (light, heavy) = (run(0.1), run(0.5));
        assert!(heavy.len() < light.len());
        // Nested drops: every survivor of the heavy plan survived light.
        assert!(heavy.iter().all(|l| light.contains(l)));
    }

    #[test]
    fn multi_sink_broadcasts() {
        let mut a = CountingSink::new();
        let mut b = StoringSink::new();
        {
            let mut m = MultiSink::new(vec![&mut a, &mut b]);
            m.accept(&flow(5));
            m.finish();
        }
        assert_eq!(a.records, 1);
        assert_eq!(b.records.len(), 1);
    }
}
