//! Flow records: the header-only unit of the ISP dataset.

use iotmap_nettypes::{PortProto, SimTime};
use std::net::IpAddr;

/// An (anonymized) subscriber-line identifier. The ISP cannot see users,
/// only broadband lines; all per-"household" analyses in §5 are per line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId(pub u64);

/// Flow direction relative to the subscriber line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Line → remote server (upload).
    Upstream,
    /// Remote server → line (download).
    Downstream,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(&self) -> Direction {
        match self {
            Direction::Upstream => Direction::Downstream,
            Direction::Downstream => Direction::Upstream,
        }
    }
}

/// One sampled, anonymized flow record as exported by a border router.
///
/// NetFlow exports 5-tuples; we keep the fields the analyses consume: the
/// subscriber line (anonymized), the remote endpoint and its service port,
/// direction, and the **estimated** byte/packet counts (sample-scaled, see
/// [`crate::sampler`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRecord {
    /// Start-of-flow timestamp.
    pub time: SimTime,
    /// The subscriber line.
    pub line: LineId,
    /// Remote (server-side) address.
    pub remote: IpAddr,
    /// Remote service port and transport.
    pub port: PortProto,
    /// Direction of this record.
    pub direction: Direction,
    /// Estimated bytes (scaled by the sampling rate).
    pub bytes: u64,
    /// Estimated packets (scaled by the sampling rate).
    pub packets: u64,
}

impl FlowRecord {
    /// The hour bucket this flow belongs to.
    pub fn epoch_hour(&self) -> u64 {
        self.time.epoch_hours()
    }

    /// The day (epoch days) this flow belongs to.
    pub fn epoch_day(&self) -> i64 {
        self.time.epoch_days()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_nettypes::Date;

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Upstream.flip(), Direction::Downstream);
        assert_eq!(Direction::Downstream.flip(), Direction::Upstream);
    }

    #[test]
    fn time_bucketing() {
        let r = FlowRecord {
            time: Date::new(2022, 3, 1).midnight() + iotmap_nettypes::SimDuration::hours(5),
            line: LineId(1),
            remote: "192.0.2.1".parse().unwrap(),
            port: PortProto::tcp(8883),
            direction: Direction::Downstream,
            bytes: 1000,
            packets: 10,
        };
        assert_eq!(r.epoch_day(), Date::new(2022, 3, 1).epoch_days());
        assert_eq!(r.epoch_hour() % 24, 5);
    }
}
