//! Packet sampling.
//!
//! NetFlow on high-speed border routers samples packets at a fixed rate
//! 1:N. A flow of `p` packets is *observed at all* with probability
//! `1 − (1 − 1/N)^p`, and when observed, its byte/packet counters are
//! scaled by `N` to estimate the true volume ("We estimate the exchanged
//! traffic considering the sampling rate", §5.6). Small flows are thus
//! under-represented — a bias the paper's analyses inherit and ours
//! faithfully reproduces.

use crate::record::FlowRecord;
use iotmap_nettypes::SimRng;

/// A deterministic 1:N packet sampler.
#[derive(Debug)]
pub struct PacketSampler {
    rate: u64,
    rng: SimRng,
}

impl PacketSampler {
    /// Sampling rate 1:`rate`. `rate == 1` disables sampling.
    pub fn new(rate: u64, rng: SimRng) -> Self {
        assert!(rate >= 1, "sampling rate must be at least 1:1");
        PacketSampler { rate, rng }
    }

    /// The configured rate.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Sample a true flow. Returns the **estimated** flow (counters scaled
    /// back by the rate) if at least one packet was sampled, else `None`.
    pub fn sample(&mut self, true_flow: &FlowRecord) -> Option<FlowRecord> {
        if self.rate == 1 {
            return Some(*true_flow);
        }
        let p = 1.0 / self.rate as f64;
        // Number of sampled packets ~ Binomial(packets, 1/N); approximate
        // cheaply: each packet sampled independently, but avoid a loop for
        // huge flows by using the normal approximation above a threshold.
        let sampled = if true_flow.packets <= 64 {
            (0..true_flow.packets)
                .filter(|_| self.rng.chance(p))
                .count() as u64
        } else {
            let mean = true_flow.packets as f64 * p;
            let sd = (true_flow.packets as f64 * p * (1.0 - p)).sqrt();
            let x = iotmap_nettypes::dist::normal_with(&mut self.rng, mean, sd);
            x.round().clamp(0.0, true_flow.packets as f64) as u64
        };
        if sampled == 0 {
            return None;
        }
        let bytes_per_packet = true_flow.bytes as f64 / true_flow.packets.max(1) as f64;
        Some(FlowRecord {
            bytes: (sampled as f64 * bytes_per_packet * self.rate as f64).round() as u64,
            packets: sampled * self.rate,
            ..*true_flow
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Direction, LineId};
    use iotmap_nettypes::{Date, PortProto};

    fn flow(bytes: u64, packets: u64) -> FlowRecord {
        FlowRecord {
            time: Date::new(2022, 3, 1).midnight(),
            line: LineId(1),
            remote: "192.0.2.1".parse().unwrap(),
            port: PortProto::tcp(443),
            direction: Direction::Downstream,
            bytes,
            packets,
        }
    }

    #[test]
    fn rate_one_is_identity() {
        let mut s = PacketSampler::new(1, SimRng::new(1));
        let f = flow(1234, 7);
        assert_eq!(s.sample(&f), Some(f));
    }

    #[test]
    fn tiny_flows_often_missed() {
        let mut s = PacketSampler::new(1000, SimRng::new(2));
        let missed = (0..1000)
            .filter(|_| s.sample(&flow(100, 1)).is_none())
            .count();
        // P(missed) = 1 - 1/1000 → expect ~999.
        assert!(missed > 980, "missed {missed}");
    }

    #[test]
    fn large_flows_always_observed_with_accurate_estimates() {
        let mut s = PacketSampler::new(100, SimRng::new(3));
        let f = flow(150_000_000, 100_000); // 100k packets, 1500 B each
        let mut total = 0.0;
        let n = 200;
        for _ in 0..n {
            let est = s.sample(&f).expect("must be observed");
            total += est.bytes as f64;
        }
        let mean = total / n as f64;
        // Estimator is unbiased: mean within 1% of the truth.
        assert!(
            (mean - 150_000_000.0).abs() < 1_500_000.0,
            "mean estimate {mean}"
        );
    }

    #[test]
    fn estimator_is_unbiased_for_small_flows() {
        let mut s = PacketSampler::new(10, SimRng::new(4));
        let f = flow(10_000, 20);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            if let Some(est) = s.sample(&f) {
                total += est.bytes as f64;
            }
        }
        let mean = total / n as f64;
        // E[estimate · observed] = truth.
        assert!((mean - 10_000.0).abs() < 300.0, "mean {mean}");
    }
}
