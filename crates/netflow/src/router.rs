//! Border-router collection: sampling + ingress filtering + anonymization.
//!
//! The pipeline a true flow passes before reaching any analysis:
//!
//! 1. **BCP 38 ingress filtering** (§3.7): flows claiming a source address
//!    outside the subscriber's assigned space are dropped, so remote
//!    scanners cannot spoof themselves into the subscriber-line analyses.
//! 2. **Packet sampling** at the configured rate.
//! 3. **Anonymization** of the line identity.
//!
//! What emerges is the dataset §5 works with.

use crate::anonymize::Anonymizer;
use crate::record::FlowRecord;
#[cfg(test)]
use crate::record::LineId;
use crate::sampler::PacketSampler;
use crate::sink::FlowSink;
use iotmap_faults::NetflowFaults;
use iotmap_nettypes::SimRng;

/// A border router exporting sampled, anonymized NetFlow.
pub struct BorderRouter {
    sampler: PacketSampler,
    anonymizer: Anonymizer,
    /// Highest legitimate raw line id; anything above is treated as a
    /// spoofed source and dropped (BCP 38 stand-in).
    max_line: u64,
    /// Export faults: wire drops and exporter resets, applied *after*
    /// sampling so the sampler's RNG stream is identical with or without
    /// a fault plan.
    faults: NetflowFaults,
    fault_seed: u64,
    /// Counters for drop accounting.
    pub spoofed_dropped: u64,
    pub sampled_out: u64,
    pub exported: u64,
    /// Records lost to export faults (wire drops + reset hours).
    pub export_dropped: u64,
    /// Of those, records lost because the exporter was resetting.
    pub reset_dropped: u64,
}

impl BorderRouter {
    /// Create a router with sampling rate 1:`rate` for an ISP with
    /// `max_line + 1` subscriber lines.
    pub fn new(rate: u64, max_line: u64, salt: u64, rng: SimRng) -> Self {
        Self::with_faults(rate, max_line, salt, rng, 0, NetflowFaults::NONE)
    }

    /// [`BorderRouter::new`] with an export-fault plan: a record that
    /// survives sampling can still be lost to a per-flow wire drop or to
    /// an exporter reset that blacks out a whole epoch hour. Both are
    /// pure rolls on the flow/hour identity, so export loss is
    /// deterministic and independent of processing order.
    pub fn with_faults(
        rate: u64,
        max_line: u64,
        salt: u64,
        rng: SimRng,
        fault_seed: u64,
        faults: NetflowFaults,
    ) -> Self {
        BorderRouter {
            sampler: PacketSampler::new(rate, rng),
            anonymizer: Anonymizer::new(salt),
            max_line,
            faults,
            fault_seed,
            spoofed_dropped: 0,
            sampled_out: 0,
            exported: 0,
            export_dropped: 0,
            reset_dropped: 0,
        }
    }

    /// Process one true flow and forward the exported record, if any.
    pub fn process(&mut self, true_flow: &FlowRecord, sink: &mut dyn FlowSink) {
        if true_flow.line.0 > self.max_line {
            self.spoofed_dropped += 1;
            return;
        }
        match self.sampler.sample(true_flow) {
            None => self.sampled_out += 1,
            Some(mut est) => {
                // Export faults come after the sampler so its RNG stream —
                // and therefore every surviving estimate — is unchanged by
                // the fault layer.
                if iotmap_faults::drops(
                    self.fault_seed,
                    "netflow.reset",
                    true_flow.time.epoch_hours(),
                    self.faults.reset_rate,
                ) {
                    self.export_dropped += 1;
                    self.reset_dropped += 1;
                    return;
                }
                let flow_key = iotmap_faults::key3(
                    iotmap_faults::key2(true_flow.time.unix(), true_flow.line.0),
                    iotmap_faults::key_ip(true_flow.remote),
                    iotmap_faults::key2(true_flow.port.port as u64, true_flow.direction as u64),
                );
                if iotmap_faults::drops(
                    self.fault_seed,
                    "netflow.export_drop",
                    flow_key,
                    self.faults.export_drop_rate,
                ) {
                    self.export_dropped += 1;
                    return;
                }
                est.line = self.anonymizer.anonymize(true_flow.line);
                self.exported += 1;
                sink.accept(&est);
            }
        }
    }

    /// Report this router's lifetime tallies to the observability layer
    /// (called once per simulation run, not per flow, so the per-flow hot
    /// path stays uninstrumented).
    pub fn flush_metrics(&self) {
        iotmap_obs::count!("netflow.flows_spoofed_dropped", self.spoofed_dropped);
        iotmap_obs::count!("netflow.flows_sampled_out", self.sampled_out);
        iotmap_obs::count!("netflow.flows_exported", self.exported);
        if self.faults.is_active() {
            iotmap_obs::count!("faults.netflow.reset_dropped", self.reset_dropped);
            iotmap_obs::count!("faults.netflow.records_dropped", self.export_dropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Direction;
    use crate::sink::StoringSink;
    use iotmap_nettypes::{Date, PortProto};

    fn flow(line: u64, bytes: u64, packets: u64) -> FlowRecord {
        FlowRecord {
            time: Date::new(2022, 3, 1).midnight(),
            line: LineId(line),
            remote: "192.0.2.1".parse().unwrap(),
            port: PortProto::tcp(8883),
            direction: Direction::Upstream,
            bytes,
            packets,
        }
    }

    #[test]
    fn spoofed_sources_dropped() {
        let mut r = BorderRouter::new(1, 99, 7, SimRng::new(1));
        let mut sink = StoringSink::new();
        r.process(&flow(100, 10, 1), &mut sink);
        r.process(&flow(99, 10, 1), &mut sink);
        assert_eq!(r.spoofed_dropped, 1);
        assert_eq!(sink.records.len(), 1);
    }

    #[test]
    fn lines_are_anonymized_consistently() {
        let mut r = BorderRouter::new(1, 99, 7, SimRng::new(1));
        let mut sink = StoringSink::new();
        r.process(&flow(5, 10, 1), &mut sink);
        r.process(&flow(5, 20, 1), &mut sink);
        r.process(&flow(6, 30, 1), &mut sink);
        assert_ne!(sink.records[0].line, LineId(5));
        assert_eq!(sink.records[0].line, sink.records[1].line);
        assert_ne!(sink.records[0].line, sink.records[2].line);
    }

    #[test]
    fn sampling_accounted() {
        let mut r = BorderRouter::new(1000, 99, 7, SimRng::new(2));
        let mut sink = StoringSink::new();
        for _ in 0..500 {
            r.process(&flow(1, 100, 1), &mut sink);
        }
        assert_eq!(r.exported + r.sampled_out, 500);
        assert!(r.sampled_out > 450, "sampled_out {}", r.sampled_out);
        assert_eq!(sink.records.len() as u64, r.exported);
    }

    #[test]
    fn unsampled_router_exports_everything() {
        let mut r = BorderRouter::new(1, 99, 7, SimRng::new(3));
        let mut sink = StoringSink::new();
        for i in 0..50 {
            r.process(&flow(i % 10, 100, 5), &mut sink);
        }
        assert_eq!(r.exported, 50);
        assert_eq!(sink.records.len(), 50);
        assert_eq!(sink.records[0].bytes, 100);
    }
}
