//! Subscriber-line anonymization.
//!
//! §3.7: "the data is anonymized by the BGP prefix before the data hits the
//! disc." The analyses still need a *stable* per-line key (to count lines
//! and accumulate per-line volumes), so the anonymizer is a keyed,
//! deterministic, non-invertible mapping from raw line identity to an
//! opaque identifier — the moral equivalent of prefix-preserving hashing.

use crate::record::LineId;

/// A keyed anonymizer for line identities.
#[derive(Debug, Clone)]
pub struct Anonymizer {
    salt: u64,
}

impl Anonymizer {
    /// Create with a secret salt (chosen by the ISP, never exported).
    pub fn new(salt: u64) -> Self {
        Anonymizer { salt }
    }

    /// Map a raw line to its anonymized identity. Deterministic per salt;
    /// infeasible to invert without the salt.
    pub fn anonymize(&self, raw: LineId) -> LineId {
        // One round of SplitMix64 keyed by the salt: a bijection on u64,
        // so distinct lines can never collide.
        let mut x = raw.0 ^ self.salt;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        LineId(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_salt() {
        let a = Anonymizer::new(42);
        assert_eq!(a.anonymize(LineId(7)), a.anonymize(LineId(7)));
    }

    #[test]
    fn different_salts_give_different_mappings() {
        let a = Anonymizer::new(1);
        let b = Anonymizer::new(2);
        let same = (0..100)
            .filter(|&i| a.anonymize(LineId(i)) == b.anonymize(LineId(i)))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mapping_hides_raw_identity() {
        let a = Anonymizer::new(0xDEADBEEF);
        // The anonymized id should not equal (or trivially relate to) the
        // raw id for essentially all inputs.
        let trivial = (0..1000).filter(|&i| a.anonymize(LineId(i)).0 == i).count();
        assert_eq!(trivial, 0);
    }

    #[test]
    fn no_collisions_at_realistic_scale() {
        let a = Anonymizer::new(99);
        let mut seen = HashSet::new();
        for i in 0..200_000u64 {
            assert!(seen.insert(a.anonymize(LineId(i))), "collision at {i}");
        }
    }
}
