//! # iotmap-netflow — the flow-monitoring substrate
//!
//! §5.1 of the paper: "The ISP uses NetFlow to monitor the traffic flows at
//! all border routers of its network, using a consistent sampling rate
//! across all routers." §3.7 adds the privacy machinery: header data only,
//! anonymization by BGP prefix before the data hits the disk, BCP 38
//! ingress filtering against spoofing.
//!
//! This crate models exactly that: [`FlowRecord`]s, a packet
//! [`sampler`], [`router`]-side collection with ingress filtering, line
//! [`anonymize`]ation, and streaming [`sink`]s so week-long traffic
//! simulations never need to materialize the full flow table.

pub mod anonymize;
pub mod fold;
pub mod record;
pub mod router;
pub mod sampler;
pub mod sink;

pub use anonymize::Anonymizer;
pub use fold::{CountingFold, FlowFold, FlowTotals};
pub use record::{Direction, FlowRecord, LineId};
pub use router::BorderRouter;
pub use sampler::PacketSampler;
pub use sink::{CountingSink, FlowSink, MultiSink, StoringSink};
