//! Histograms: linear and logarithmic bucketing.

/// A fixed-width histogram over `[lo, hi)` with under/overflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create with `n` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts (excluding under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Under/overflow counts.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// The `(lo, hi)` bounds of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

/// A base-10 logarithmic histogram: bucket `i` covers
/// `[10^(min_exp+i), 10^(min_exp+i+1))`. Natural for traffic volumes that
/// span six orders of magnitude (bytes … gigabytes).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    min_exp: i32,
    buckets: Vec<u64>,
    zero_or_negative: u64,
    count: u64,
}

impl LogHistogram {
    /// Buckets covering `10^min_exp … 10^(min_exp + n)`.
    pub fn new(min_exp: i32, n: usize) -> Self {
        assert!(n > 0);
        LogHistogram {
            min_exp,
            buckets: vec![0; n],
            zero_or_negative: 0,
            count: 0,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x <= 0.0 {
            self.zero_or_negative += 1;
            return;
        }
        let exp = x.log10().floor() as i32;
        let idx = exp - self.min_exp;
        let idx = idx.clamp(0, self.buckets.len() as i32 - 1) as usize;
        self.buckets[idx] += 1;
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of non-positive samples (parked outside the log scale).
    pub fn zero_count(&self) -> u64 {
        self.zero_or_negative
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Lower bound of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        10f64.powi(self.min_exp + i as i32)
    }

    /// Fraction of samples in bucket `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.buckets[i] as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.record(x);
        }
        assert_eq!(h.buckets(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.outliers(), (0, 0));
    }

    #[test]
    fn linear_histogram_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(-1.0);
        h.record(10.0);
        h.record(1e9);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.buckets(), &[0, 0]);
    }

    #[test]
    fn bucket_bounds() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bucket_bounds(0), (0.0, 2.0));
        assert_eq!(h.bucket_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn log_histogram_decades() {
        // Buckets: [1,10), [10,100), [100,1000).
        let mut h = LogHistogram::new(0, 3);
        for x in [1.0, 5.0, 50.0, 500.0, 999.0] {
            h.record(x);
        }
        assert_eq!(h.buckets(), &[2, 1, 2]);
        assert_eq!(h.bucket_lo(1), 10.0);
    }

    #[test]
    fn log_histogram_clamps_and_zeroes() {
        let mut h = LogHistogram::new(0, 2);
        h.record(0.0);
        h.record(-5.0);
        h.record(0.001); // below min_exp → clamped into bucket 0
        h.record(1e9); // above → clamped into last bucket
        assert_eq!(h.zero_count(), 2);
        assert_eq!(h.buckets(), &[1, 1]);
    }

    #[test]
    fn log_histogram_fraction() {
        let mut h = LogHistogram::new(0, 2);
        h.record(1.0);
        h.record(2.0);
        h.record(20.0);
        assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-9);
    }
}
