//! Empirical cumulative distribution functions.
//!
//! Figures 12a–c of the paper plot ECDFs of per-subscriber-line daily
//! traffic. The key read-offs are of the form "more than 99% of the lines
//! exchange less than 10 MB per day" — i.e. evaluating the ECDF at a value —
//! and "18% of lines exchange between 100 MB and 1 GB" — i.e. mass of an
//! interval.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are rejected).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `P(lo < X <= hi)`.
    pub fn fraction_in(&self, lo: f64, hi: f64) -> f64 {
        (self.fraction_at_or_below(hi) - self.fraction_at_or_below(lo)).max(0.0)
    }

    /// Quantile `q` in `[0, 1]` (nearest-rank). Panics on empty ECDF.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum and maximum.
    pub fn range(&self) -> Option<(f64, f64)> {
        match (self.sorted.first(), self.sorted.last()) {
            (Some(&lo), Some(&hi)) => Some((lo, hi)),
            _ => None,
        }
    }

    /// Evaluate the ECDF at a ladder of points — the series a plot would
    /// show. Returns `(x, P(X<=x))` pairs.
    pub fn curve(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&x| (x, self.fraction_at_or_below(x)))
            .collect()
    }

    /// A logarithmic ladder of evaluation points covering the data range,
    /// convenient for traffic-volume ECDF plots (log x-axis).
    pub fn log_ladder(&self, per_decade: usize) -> Vec<f64> {
        let Some((lo, hi)) = self.range() else {
            return Vec::new();
        };
        let lo = lo.max(1e-9);
        let hi = hi.max(lo * 1.0001);
        let start = lo.log10().floor();
        let end = hi.log10().ceil();
        let steps = ((end - start) * per_decade as f64).ceil() as usize;
        (0..=steps)
            .map(|i| 10f64.powf(start + i as f64 / per_decade as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_at_or_below_basics() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.5), 0.5);
        assert_eq!(e.fraction_at_or_below(4.0), 1.0);
        assert_eq!(e.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn fraction_in_interval() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let f = e.fraction_in(10.0, 20.0);
        assert!((f - 0.10).abs() < 1e-9);
        assert_eq!(e.fraction_in(200.0, 300.0), 0.0);
        assert_eq!(e.fraction_in(20.0, 10.0), 0.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.median(), 50.0);
        assert_eq!(e.quantile(0.99), 99.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.range(), Some((1.0, 3.0)));
        assert_eq!(e.median(), 2.0);
    }

    #[test]
    fn empty_ecdf() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert_eq!(e.range(), None);
        assert!(e.log_ladder(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn curve_evaluation() {
        let e = Ecdf::new(vec![1.0, 10.0, 100.0]);
        let c = e.curve(&[0.5, 5.0, 50.0, 500.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].1, 0.0);
        assert!((c[1].1 - 1.0 / 3.0).abs() < 1e-9);
        assert!((c[2].1 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(c[3].1, 1.0);
    }

    #[test]
    fn log_ladder_spans_range() {
        let e = Ecdf::new(vec![2.0, 20_000.0]);
        let ladder = e.log_ladder(2);
        assert!(*ladder.first().unwrap() <= 2.0);
        assert!(*ladder.last().unwrap() >= 20_000.0);
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
    }
}
