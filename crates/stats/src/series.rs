//! Hourly time series over a study period.
//!
//! Figures 8, 9, 15 and 16 of the paper are hourly series across a week:
//! subscriber-line counts and normalized traffic volumes, with day/night
//! shading and min-of-previous-week reference lines. [`HourlySeries`] is
//! the accumulator those figures are produced from.

/// A series of per-hour values, indexed by epoch-hour offsets from a fixed
/// start hour.
#[derive(Debug, Clone)]
pub struct HourlySeries {
    start_hour: u64,
    values: Vec<f64>,
}

impl HourlySeries {
    /// A zeroed series covering `hours` hourly buckets from `start_hour`
    /// (epoch hours, i.e. `unix_seconds / 3600`).
    pub fn new(start_hour: u64, hours: usize) -> Self {
        HourlySeries {
            start_hour,
            values: vec![0.0; hours],
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the series has no buckets.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// First bucket's epoch hour.
    pub fn start_hour(&self) -> u64 {
        self.start_hour
    }

    /// Add `value` to the bucket containing `epoch_hour`; out-of-range
    /// hours are ignored (flows straddling the window edges).
    pub fn add(&mut self, epoch_hour: u64, value: f64) {
        if epoch_hour < self.start_hour {
            return;
        }
        let idx = (epoch_hour - self.start_hour) as usize;
        if let Some(v) = self.values.get_mut(idx) {
            *v += value;
        }
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at bucket index.
    pub fn get(&self, idx: usize) -> f64 {
        self.values[idx]
    }

    /// Maximum value (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Minimum value (0 for an empty series).
    pub fn min(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
    }

    /// Sum of all buckets.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Normalize so the maximum is 1 (the paper's "normalized volume"
    /// y-axes). A zero series stays zero.
    pub fn normalized(&self) -> HourlySeries {
        let max = self.max();
        let values = if max > 0.0 {
            self.values.iter().map(|v| v / max).collect()
        } else {
            self.values.clone()
        };
        HourlySeries {
            start_hour: self.start_hour,
            values,
        }
    }

    /// Mean over a sub-range of buckets `[from, to)`.
    pub fn mean_over(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.values.len());
        if from >= to {
            return 0.0;
        }
        self.values[from..to].iter().sum::<f64>() / (to - from) as f64
    }

    /// Minimum over a sub-range of buckets `[from, to)` — used for the
    /// "minimum of the previous week" reference line in Figures 15/16.
    pub fn min_over(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.values.len());
        self.values[from..to]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    /// Peak-hour index within each 24-hour day; returns one index per
    /// complete day. Used to classify diurnal vs constant activity.
    pub fn daily_peak_hours(&self) -> Vec<usize> {
        self.values
            .chunks_exact(24)
            .map(|day| {
                day.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Pearson correlation with another series of the same length.
    /// Returns `None` when lengths differ or either series is constant.
    pub fn correlation(&self, other: &HourlySeries) -> Option<f64> {
        if self.values.len() != other.values.len() || self.values.is_empty() {
            return None;
        }
        let n = self.values.len() as f64;
        let mean_a = self.total() / n;
        let mean_b = other.total() / n;
        let mut cov = 0.0;
        let mut var_a = 0.0;
        let mut var_b = 0.0;
        for (a, b) in self.values.iter().zip(other.values.iter()) {
            let da = a - mean_a;
            let db = b - mean_b;
            cov += da * db;
            var_a += da * da;
            var_b += db * db;
        }
        if var_a <= 0.0 || var_b <= 0.0 {
            return None;
        }
        Some(cov / (var_a.sqrt() * var_b.sqrt()))
    }

    /// Ratio of the mean value in the top-activity 6 hours of the day to
    /// the bottom 6, averaged across days — a simple diurnality score.
    /// ≈1 means flat, larger means strongly diurnal.
    pub fn diurnality(&self) -> f64 {
        let mut by_hour = [0.0f64; 24];
        let mut days = 0usize;
        for day in self.values.chunks_exact(24) {
            for (h, v) in day.iter().enumerate() {
                by_hour[h] += v;
            }
            days += 1;
        }
        if days == 0 {
            return 1.0;
        }
        let mut sorted = by_hour;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let bottom: f64 = sorted[..6].iter().sum();
        let top: f64 = sorted[18..].iter().sum();
        if bottom <= 0.0 {
            if top > 0.0 {
                f64::INFINITY
            } else {
                1.0
            }
        } else {
            top / bottom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_totals() {
        let mut s = HourlySeries::new(100, 48);
        s.add(100, 1.0);
        s.add(100, 2.0);
        s.add(147, 5.0);
        s.add(99, 100.0); // before window: ignored
        s.add(148, 100.0); // after window: ignored
        assert_eq!(s.get(0), 3.0);
        assert_eq!(s.get(47), 5.0);
        assert_eq!(s.total(), 8.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn normalization() {
        let mut s = HourlySeries::new(0, 3);
        s.add(0, 2.0);
        s.add(1, 4.0);
        let n = s.normalized();
        assert_eq!(n.values(), &[0.5, 1.0, 0.0]);
        // Zero series normalizes to itself.
        let z = HourlySeries::new(0, 2).normalized();
        assert_eq!(z.values(), &[0.0, 0.0]);
    }

    #[test]
    fn min_over_range() {
        let mut s = HourlySeries::new(0, 5);
        for (i, v) in [5.0, 3.0, 8.0, 1.0, 9.0].iter().enumerate() {
            s.add(i as u64, *v);
        }
        assert_eq!(s.min_over(0, 3), 3.0);
        assert_eq!(s.min_over(2, 5), 1.0);
    }

    #[test]
    fn daily_peaks() {
        let mut s = HourlySeries::new(0, 48);
        s.add(20, 10.0); // day 0 peak at hour 20
        s.add(24 + 9, 7.0); // day 1 peak at hour 9
        assert_eq!(s.daily_peak_hours(), vec![20, 9]);
    }

    #[test]
    fn diurnality_flat_vs_peaky() {
        let mut flat = HourlySeries::new(0, 24 * 7);
        let mut peaky = HourlySeries::new(0, 24 * 7);
        for h in 0..24 * 7 {
            flat.add(h as u64, 1.0);
            let hod = h % 24;
            peaky.add(h as u64, if (18..22).contains(&hod) { 10.0 } else { 0.5 });
        }
        assert!((flat.diurnality() - 1.0).abs() < 1e-9);
        assert!(peaky.diurnality() > 3.0);
    }

    #[test]
    fn correlation_behaviour() {
        let mut a = HourlySeries::new(0, 24);
        let mut b = HourlySeries::new(0, 24);
        let mut inv = HourlySeries::new(0, 24);
        let mut flat = HourlySeries::new(0, 24);
        for h in 0..24u64 {
            a.add(h, h as f64);
            b.add(h, 2.0 * h as f64 + 5.0);
            inv.add(h, 24.0 - h as f64);
            flat.add(h, 3.0);
        }
        assert!((a.correlation(&b).unwrap() - 1.0).abs() < 1e-9);
        assert!((a.correlation(&inv).unwrap() + 1.0).abs() < 1e-9);
        assert_eq!(a.correlation(&flat), None, "constant series");
        let short = HourlySeries::new(0, 10);
        assert_eq!(a.correlation(&short), None, "length mismatch");
    }

    #[test]
    fn mean_over_subrange() {
        let mut s = HourlySeries::new(0, 4);
        for (i, v) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            s.add(i as u64, *v);
        }
        assert_eq!(s.mean_over(1, 3), 2.5);
        assert_eq!(s.mean_over(3, 3), 0.0);
    }
}
