//! # iotmap-stats — the statistics toolkit
//!
//! Small, dependency-free statistical machinery used by the traffic
//! analyses: empirical CDFs (Figures 12a–c), histograms and log-scale
//! bucketing, hourly time series (Figures 8, 9, 15, 16), and summary
//! statistics.

pub mod ecdf;
pub mod hist;
pub mod series;
pub mod summary;

pub use ecdf::Ecdf;
pub use hist::{Histogram, LogHistogram};
pub use series::HourlySeries;
pub use summary::Summary;
