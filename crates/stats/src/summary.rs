//! Streaming summary statistics (Welford's algorithm).

/// Streaming mean/variance/min/max accumulator.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel-combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::new();
        a.record(1.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());

        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 1.0);
    }
}
