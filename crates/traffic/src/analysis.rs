//! The main flow-analysis pass: everything behind Figures 8–16.
//!
//! The aggregation is expressed as a mergeable [`AnalysisFold`]
//! (see [`iotmap_netflow::FlowFold`]): every accumulator in
//! [`AnalysisPartial`] is a commutative join — integer adds, set
//! unions, map-entry adds — so per-shard partials merged in shard order
//! are byte-identical to a serial pass at any thread count, and the
//! simulator can stream blocks of exported flows through it without
//! ever materializing the full flow set. Byte volumes accumulate as
//! exact `u64` sums and convert to `f64` only at report time, so no
//! float-rounding order dependence can creep in.
//!
//! [`AnalysisSink`] remains the serial front: a thin wrapper folding
//! into a single partial, for callers that drive a
//! [`FlowSink`](iotmap_netflow::FlowSink).

use crate::index::IpIndex;
use iotmap_netflow::{Direction, FlowFold, FlowRecord, FlowSink, LineId};
use iotmap_nettypes::{Continent, PortProto, StudyPeriod};
use iotmap_stats::{Ecdf, HourlySeries};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Region grouping for the outage analysis (Fig. 15/16): the affected
/// region vs. the provider's European regions vs. everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionGroup {
    UsEast1,
    Europe,
    Other,
}

impl RegionGroup {
    const ALL: [RegionGroup; 3] = [
        RegionGroup::UsEast1,
        RegionGroup::Europe,
        RegionGroup::Other,
    ];

    fn of(index: &IpIndex, meta: &crate::index::IpMeta) -> RegionGroup {
        if index.is_us_east1(meta.region) {
            RegionGroup::UsEast1
        } else if meta.continent == Some(Continent::Europe) {
            RegionGroup::Europe
        } else {
            RegionGroup::Other
        }
    }

    fn ordinal(&self) -> usize {
        match self {
            RegionGroup::UsEast1 => 0,
            RegionGroup::Europe => 1,
            RegionGroup::Other => 2,
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            RegionGroup::UsEast1 => "US-East",
            RegionGroup::Europe => "EU",
            RegionGroup::Other => "Other",
        }
    }
}

/// Continent buckets of §5.7 (EU / US / Asia / Other).
fn bucket_of(continent: Option<Continent>) -> usize {
    match continent.map(|c| c.paper_bucket()) {
        Some("EU") => 0,
        Some("US") => 1,
        Some("Asia") => 2,
        _ => 3,
    }
}

/// Bucket labels, ordinal order.
pub const BUCKET_LABELS: [&str; 4] = ["EU", "US", "Asia", "Other"];

/// One shard's accumulated aggregates. Every field joins commutatively
/// under [`AnalysisPartial::merge`], which is what keeps sharded runs
/// byte-identical to serial ones.
#[derive(Debug, Clone)]
pub struct AnalysisPartial {
    // Fig. 8: distinct lines per (provider, hour).
    hourly_lines: Vec<HashSet<LineId>>,
    // Fig. 9 / 15: downstream bytes per (provider, hour). Exact integer
    // sums; the report converts to f64 once.
    hourly_dn: Vec<u64>,
    // Fig. 15/16: per (provider, region group, hour).
    hourly_dn_region: Vec<u64>,
    hourly_lines_region: Vec<HashSet<LineId>>,
    // Fig. 10.
    total_dn: Vec<u64>,
    total_up: Vec<u64>,
    // Fig. 11.
    port_bytes: HashMap<(usize, PortProto), u64>,
    // Fig. 12.
    line_day_dn: HashMap<(LineId, i64), u64>,
    line_day_up: HashMap<(LineId, i64), u64>,
    line_day_prov_dn: HashMap<(LineId, i64, u16), u64>,
    line_day_port_dn: HashMap<(LineId, i64, PortProto), u64>,
    // Fig. 13/14.
    line_buckets: HashMap<LineId, u8>,
    bucket_bytes: [u64; 4],
    // Daily active lines per address family (§5.2's 2.32M / 202k).
    daily_v4: HashMap<i64, HashSet<LineId>>,
    daily_v6: HashMap<i64, HashSet<LineId>>,
}

impl AnalysisPartial {
    fn new(providers: usize, hours: usize) -> AnalysisPartial {
        AnalysisPartial {
            hourly_lines: vec![HashSet::new(); providers * hours],
            hourly_dn: vec![0; providers * hours],
            hourly_dn_region: vec![0; providers * 3 * hours],
            hourly_lines_region: vec![HashSet::new(); providers * 3 * hours],
            total_dn: vec![0; providers],
            total_up: vec![0; providers],
            port_bytes: HashMap::new(),
            line_day_dn: HashMap::new(),
            line_day_up: HashMap::new(),
            line_day_prov_dn: HashMap::new(),
            line_day_port_dn: HashMap::new(),
            line_buckets: HashMap::new(),
            bucket_bytes: [0; 4],
            daily_v4: HashMap::new(),
            daily_v6: HashMap::new(),
        }
    }

    fn merge(&mut self, other: AnalysisPartial) {
        for (a, b) in self.hourly_lines.iter_mut().zip(other.hourly_lines) {
            a.extend(b);
        }
        for (a, b) in self.hourly_dn.iter_mut().zip(other.hourly_dn) {
            *a += b;
        }
        for (a, b) in self.hourly_dn_region.iter_mut().zip(other.hourly_dn_region) {
            *a += b;
        }
        for (a, b) in self
            .hourly_lines_region
            .iter_mut()
            .zip(other.hourly_lines_region)
        {
            a.extend(b);
        }
        for (a, b) in self.total_dn.iter_mut().zip(other.total_dn) {
            *a += b;
        }
        for (a, b) in self.total_up.iter_mut().zip(other.total_up) {
            *a += b;
        }
        for (k, v) in other.port_bytes {
            *self.port_bytes.entry(k).or_default() += v;
        }
        for (k, v) in other.line_day_dn {
            *self.line_day_dn.entry(k).or_default() += v;
        }
        for (k, v) in other.line_day_up {
            *self.line_day_up.entry(k).or_default() += v;
        }
        for (k, v) in other.line_day_prov_dn {
            *self.line_day_prov_dn.entry(k).or_default() += v;
        }
        for (k, v) in other.line_day_port_dn {
            *self.line_day_port_dn.entry(k).or_default() += v;
        }
        for (k, v) in other.line_buckets {
            *self.line_buckets.entry(k).or_default() |= v;
        }
        for (a, b) in self.bucket_bytes.iter_mut().zip(other.bucket_bytes) {
            *a += b;
        }
        for (k, v) in other.daily_v4 {
            self.daily_v4.entry(k).or_default().extend(v);
        }
        for (k, v) in other.daily_v6 {
            self.daily_v6.entry(k).or_default().extend(v);
        }
    }
}

/// The mergeable flow-analysis aggregation over a study period.
pub struct AnalysisFold<'a> {
    index: &'a IpIndex,
    excluded: &'a HashSet<LineId>,
    start_hour: u64,
    hours: usize,
}

impl<'a> AnalysisFold<'a> {
    /// Fold covering a study period.
    pub fn new(index: &'a IpIndex, excluded: &'a HashSet<LineId>, period: StudyPeriod) -> Self {
        AnalysisFold {
            index,
            excluded,
            start_hour: period.start.epoch_hours(),
            hours: period.hours().count(),
        }
    }

    /// Consume a folded partial into a report.
    pub fn into_report(&self, partial: AnalysisPartial) -> AnalysisReport {
        let _span = iotmap_obs::span!("traffic.analysis.into_report");
        let p = partial;
        // Per-day family counts, sorted by day so the report is a pure
        // function of the flow stream (HashMap iteration order is not).
        let day_counts = |m: &HashMap<i64, HashSet<LineId>>| {
            let by_day: BTreeMap<i64, usize> = m.iter().map(|(d, s)| (*d, s.len())).collect();
            by_day.into_values().collect::<Vec<usize>>()
        };
        AnalysisReport {
            providers: self.index.providers().to_vec(),
            server_buckets: {
                let mut counts = [0usize; 4];
                for (_, meta) in self.index.iter() {
                    counts[bucket_of(meta.continent)] += 1;
                }
                counts
            },
            start_hour: self.start_hour,
            hours: self.hours,
            hourly_lines: p.hourly_lines.iter().map(|s| s.len() as f64).collect(),
            hourly_dn: p.hourly_dn.iter().map(|&b| b as f64).collect(),
            hourly_dn_region: p.hourly_dn_region.iter().map(|&b| b as f64).collect(),
            hourly_lines_region: p
                .hourly_lines_region
                .iter()
                .map(|s| s.len() as f64)
                .collect(),
            daily_v4: day_counts(&p.daily_v4),
            daily_v6: day_counts(&p.daily_v6),
            total_dn: p.total_dn,
            total_up: p.total_up,
            port_bytes: p.port_bytes,
            line_day_dn: p.line_day_dn,
            line_day_up: p.line_day_up,
            line_day_prov_dn: p.line_day_prov_dn,
            line_day_port_dn: p.line_day_port_dn,
            line_buckets: p.line_buckets,
            bucket_bytes: p.bucket_bytes,
        }
    }
}

impl FlowFold for AnalysisFold<'_> {
    type Partial = AnalysisPartial;

    fn make(&self) -> AnalysisPartial {
        AnalysisPartial::new(self.index.providers().len(), self.hours)
    }

    fn fold(&self, acc: &mut AnalysisPartial, r: &FlowRecord) {
        if self.excluded.contains(&r.line) {
            return;
        }
        let Some(meta) = self.index.get(r.remote) else {
            return;
        };
        iotmap_obs::count!("traffic.analysis.flows_analyzed");
        iotmap_obs::observe!("traffic.analysis.flow_bytes", r.bytes);
        let p = meta.provider;
        let hour = r.time.epoch_hours();
        if hour < self.start_hour {
            return;
        }
        let h = (hour - self.start_hour) as usize;
        if h >= self.hours {
            return;
        }
        let day = r.time.epoch_days();
        let group = RegionGroup::of(self.index, meta);

        acc.hourly_lines[p * self.hours + h].insert(r.line);
        let region_idx = (p * 3 + group.ordinal()) * self.hours + h;
        acc.hourly_lines_region[region_idx].insert(r.line);

        match r.direction {
            Direction::Downstream => {
                acc.hourly_dn[p * self.hours + h] += r.bytes;
                acc.hourly_dn_region[region_idx] += r.bytes;
                acc.total_dn[p] += r.bytes;
                *acc.line_day_dn.entry((r.line, day)).or_default() += r.bytes;
                *acc.line_day_prov_dn
                    .entry((r.line, day, p as u16))
                    .or_default() += r.bytes;
                *acc.line_day_port_dn
                    .entry((r.line, day, r.port))
                    .or_default() += r.bytes;
            }
            Direction::Upstream => {
                acc.total_up[p] += r.bytes;
                *acc.line_day_up.entry((r.line, day)).or_default() += r.bytes;
            }
        }
        *acc.port_bytes.entry((p, r.port)).or_default() += r.bytes;

        let bucket = bucket_of(meta.continent);
        *acc.line_buckets.entry(r.line).or_default() |= 1 << bucket;
        acc.bucket_bytes[bucket] += r.bytes;

        if r.remote.is_ipv4() {
            acc.daily_v4.entry(day).or_default().insert(r.line);
        } else {
            acc.daily_v6.entry(day).or_default().insert(r.line);
        }
    }

    fn merge(&self, acc: &mut AnalysisPartial, other: AnalysisPartial) {
        acc.merge(other);
    }
}

/// The serial accumulating sink: one partial driven by a
/// [`FlowSink`] stream.
pub struct AnalysisSink<'a> {
    fold: AnalysisFold<'a>,
    partial: AnalysisPartial,
}

impl<'a> AnalysisSink<'a> {
    /// Sink covering a study period.
    pub fn new(index: &'a IpIndex, excluded: &'a HashSet<LineId>, period: StudyPeriod) -> Self {
        let fold = AnalysisFold::new(index, excluded, period);
        let partial = fold.make();
        AnalysisSink { fold, partial }
    }

    /// Consume the sink into a report.
    pub fn into_report(self) -> AnalysisReport {
        self.fold.into_report(self.partial)
    }
}

impl FlowSink for AnalysisSink<'_> {
    fn accept(&mut self, r: &FlowRecord) {
        self.fold.fold(&mut self.partial, r);
    }
}

/// The finished aggregates, with one accessor per figure.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    providers: Vec<String>,
    server_buckets: [usize; 4],
    start_hour: u64,
    hours: usize,
    hourly_lines: Vec<f64>,
    hourly_dn: Vec<f64>,
    hourly_dn_region: Vec<f64>,
    hourly_lines_region: Vec<f64>,
    total_dn: Vec<u64>,
    total_up: Vec<u64>,
    port_bytes: HashMap<(usize, PortProto), u64>,
    line_day_dn: HashMap<(LineId, i64), u64>,
    line_day_up: HashMap<(LineId, i64), u64>,
    line_day_prov_dn: HashMap<(LineId, i64, u16), u64>,
    line_day_port_dn: HashMap<(LineId, i64, PortProto), u64>,
    line_buckets: HashMap<LineId, u8>,
    bucket_bytes: [u64; 4],
    daily_v4: Vec<usize>,
    daily_v6: Vec<usize>,
}

impl AnalysisReport {
    /// Provider names (index order).
    pub fn providers(&self) -> &[String] {
        &self.providers
    }

    fn pidx(&self, provider: &str) -> Option<usize> {
        self.providers.iter().position(|p| p == provider)
    }

    /// Fig. 8: hourly subscriber-line counts for one provider.
    pub fn fig8_lines(&self, provider: &str) -> Option<HourlySeries> {
        let p = self.pidx(provider)?;
        let mut s = HourlySeries::new(self.start_hour, self.hours);
        for h in 0..self.hours {
            s.add(
                self.start_hour + h as u64,
                self.hourly_lines[p * self.hours + h],
            );
        }
        Some(s)
    }

    /// Fig. 9 / 15: hourly downstream bytes for one provider.
    pub fn fig9_downstream(&self, provider: &str) -> Option<HourlySeries> {
        let p = self.pidx(provider)?;
        let mut s = HourlySeries::new(self.start_hour, self.hours);
        for h in 0..self.hours {
            s.add(
                self.start_hour + h as u64,
                self.hourly_dn[p * self.hours + h],
            );
        }
        Some(s)
    }

    /// Fig. 15/16 region-resolved series.
    pub fn region_series(
        &self,
        provider: &str,
        group: RegionGroup,
        lines: bool,
    ) -> Option<HourlySeries> {
        let p = self.pidx(provider)?;
        let mut s = HourlySeries::new(self.start_hour, self.hours);
        let base = (p * 3 + group.ordinal()) * self.hours;
        for h in 0..self.hours {
            let v = if lines {
                self.hourly_lines_region[base + h]
            } else {
                self.hourly_dn_region[base + h]
            };
            s.add(self.start_hour + h as u64, v);
        }
        Some(s)
    }

    /// All region groups (for iteration).
    pub fn region_groups() -> [RegionGroup; 3] {
        RegionGroup::ALL
    }

    /// Fig. 10: downstream/upstream byte ratio.
    pub fn fig10_ratio(&self, provider: &str) -> Option<f64> {
        let p = self.pidx(provider)?;
        let up = self.total_up[p];
        if up == 0 {
            return None;
        }
        Some(self.total_dn[p] as f64 / up as f64)
    }

    /// Total downstream bytes of one provider.
    pub fn total_downstream(&self, provider: &str) -> u64 {
        self.pidx(provider).map_or(0, |p| self.total_dn[p])
    }

    /// Fig. 11: per-provider port mix, as `(port, byte fraction)` sorted
    /// by share.
    pub fn fig11_port_mix(&self, provider: &str) -> Vec<(PortProto, f64)> {
        let Some(p) = self.pidx(provider) else {
            return Vec::new();
        };
        let total: u64 = self
            .port_bytes
            .iter()
            .filter(|((pp, _), _)| *pp == p)
            .map(|(_, b)| *b)
            .sum();
        if total == 0 {
            return Vec::new();
        }
        let mut mix: Vec<(PortProto, f64)> = self
            .port_bytes
            .iter()
            .filter(|((pp, _), _)| *pp == p)
            .map(|((_, port), b)| (*port, *b as f64 / total as f64))
            .collect();
        mix.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
        mix
    }

    /// Fig. 12a: ECDF of daily per-line traffic, down or up.
    pub fn fig12a_ecdf(&self, downstream: bool) -> Ecdf {
        let src = if downstream {
            &self.line_day_dn
        } else {
            &self.line_day_up
        };
        Ecdf::new(src.values().map(|&b| b as f64).collect())
    }

    /// Fig. 12b: per-provider ECDF of daily per-line download.
    pub fn fig12b_ecdf(&self, provider: &str) -> Option<Ecdf> {
        let p = self.pidx(provider)? as u16;
        let samples: Vec<f64> = self
            .line_day_prov_dn
            .iter()
            .filter(|((_, _, pp), _)| *pp == p)
            .map(|(_, &b)| b as f64)
            .collect();
        Some(Ecdf::new(samples))
    }

    /// Fig. 12c: per-port ECDF of daily per-line download.
    pub fn fig12c_ecdf(&self, port: PortProto) -> Ecdf {
        let samples: Vec<f64> = self
            .line_day_port_dn
            .iter()
            .filter(|((_, _, pp), _)| *pp == port)
            .map(|(_, &b)| b as f64)
            .collect();
        Ecdf::new(samples)
    }

    /// The top ports by total downstream bytes.
    pub fn top_ports(&self, k: usize) -> Vec<(PortProto, u64)> {
        let mut by_port: BTreeMap<PortProto, u64> = BTreeMap::new();
        for ((_, _, port), b) in &self.line_day_port_dn {
            *by_port.entry(*port).or_default() += b;
        }
        let mut v: Vec<_> = by_port.into_iter().collect();
        v.sort_by_key(|(_, b)| std::cmp::Reverse(*b));
        v.truncate(k);
        v
    }

    /// Fig. 13 (left): line distribution over contacted-continent
    /// combinations. Returns `(eu_only, us_any, eu_us_mix, asia_other_only)`
    /// fractions.
    pub fn fig13_line_buckets(&self) -> (f64, f64, f64, f64) {
        let total = self.line_buckets.len().max(1) as f64;
        let (mut eu_only, mut us_any, mut mix, mut no_eu_us) = (0usize, 0usize, 0usize, 0usize);
        for &mask in self.line_buckets.values() {
            let eu = mask & 0b0001 != 0;
            let us = mask & 0b0010 != 0;
            if mask == 0b0001 {
                eu_only += 1;
            }
            if us {
                us_any += 1;
            }
            if eu && us {
                mix += 1;
            }
            if !eu && !us {
                no_eu_us += 1;
            }
        }
        (
            eu_only as f64 / total,
            us_any as f64 / total,
            mix as f64 / total,
            no_eu_us as f64 / total,
        )
    }

    /// Fig. 13 (right): fraction of backend servers per continent bucket
    /// (EU, US, Asia, Other).
    pub fn fig13_server_buckets(&self) -> [f64; 4] {
        let total: usize = self.server_buckets.iter().sum();
        let mut out = [0.0; 4];
        if total > 0 {
            for (o, n) in out.iter_mut().zip(self.server_buckets.iter()) {
                *o = *n as f64 / total as f64;
            }
        }
        out
    }

    /// Fig. 14: traffic-volume share per server continent bucket.
    pub fn fig14_traffic_buckets(&self) -> [f64; 4] {
        let total: u64 = self.bucket_bytes.iter().sum();
        let mut out = [0.0; 4];
        if total > 0 {
            for (o, n) in out.iter_mut().zip(self.bucket_bytes.iter()) {
                *o = *n as f64 / total as f64;
            }
        }
        out
    }

    /// Mean daily active lines, per address family.
    pub fn daily_active_lines(&self) -> (f64, f64) {
        let mean = |v: &[usize]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<usize>() as f64 / v.len() as f64
            }
        };
        (mean(&self.daily_v4), mean(&self.daily_v6))
    }

    /// Total lines observed with IoT traffic.
    pub fn total_lines(&self) -> usize {
        self.line_buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_core::{DiscoveryResult, Footprint, IpEvidence, ProviderDiscovery};
    use iotmap_nettypes::{Date, Location, SimDuration};
    use std::net::IpAddr;

    fn index() -> IpIndex {
        let mut a = ProviderDiscovery {
            name: "alpha".to_string(),
            ..Default::default()
        };
        a.ips
            .insert("10.0.0.1".parse().unwrap(), IpEvidence::default());
        a.ips
            .insert("10.0.0.2".parse().unwrap(), IpEvidence::default());
        let mut fp = Footprint::default();
        fp.per_ip.insert(
            "10.0.0.1".parse().unwrap(),
            iotmap_core::footprint::IpLocation {
                label: "eu-central-1".into(),
                location: Location::new("Frankfurt", "DE", Continent::Europe, 50.1, 8.7),
                contested: false,
            },
        );
        fp.per_ip.insert(
            "10.0.0.2".parse().unwrap(),
            iotmap_core::footprint::IpLocation {
                label: "us-east-1".into(),
                location: Location::new("Ashburn", "US", Continent::NorthAmerica, 39.0, -77.5),
                contested: false,
            },
        );
        let mut fps = HashMap::new();
        fps.insert("alpha".to_string(), fp);
        IpIndex::build(
            &DiscoveryResult::from_providers(vec![a]),
            &fps,
            &HashSet::new(),
        )
    }

    fn record(line: u64, ip: &str, hour: u64, dir: Direction, bytes: u64, port: u16) -> FlowRecord {
        FlowRecord {
            time: Date::new(2022, 2, 28).midnight() + SimDuration::hours(hour),
            line: LineId(line),
            remote: ip.parse::<IpAddr>().unwrap(),
            port: PortProto::tcp(port),
            direction: dir,
            bytes,
            packets: bytes / 1000 + 1,
        }
    }

    fn run(records: &[FlowRecord]) -> AnalysisReport {
        let idx = index();
        let excluded = HashSet::new();
        let mut sink = AnalysisSink::new(&idx, &excluded, StudyPeriod::main_week());
        for r in records {
            sink.accept(r);
        }
        sink.into_report()
    }

    #[test]
    fn hourly_series_and_totals() {
        let report = run(&[
            record(1, "10.0.0.1", 10, Direction::Downstream, 5000, 8883),
            record(1, "10.0.0.1", 10, Direction::Upstream, 1000, 8883),
            record(2, "10.0.0.1", 11, Direction::Downstream, 3000, 443),
        ]);
        let lines = report.fig8_lines("alpha").unwrap();
        assert_eq!(lines.get(10), 1.0);
        assert_eq!(lines.get(11), 1.0);
        assert_eq!(lines.get(12), 0.0);
        let dn = report.fig9_downstream("alpha").unwrap();
        assert_eq!(dn.get(10), 5000.0);
        assert_eq!(report.fig10_ratio("alpha"), Some(8.0));
        assert_eq!(report.total_downstream("alpha"), 8000);
    }

    #[test]
    fn port_mix_fractions() {
        let report = run(&[
            record(1, "10.0.0.1", 1, Direction::Downstream, 9000, 8883),
            record(1, "10.0.0.1", 2, Direction::Downstream, 1000, 443),
        ]);
        let mix = report.fig11_port_mix("alpha");
        assert_eq!(mix[0].0, PortProto::tcp(8883));
        assert!((mix[0].1 - 0.9).abs() < 1e-9);
        assert!((mix[1].1 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn ecdfs_by_line_day() {
        let report = run(&[
            record(1, "10.0.0.1", 1, Direction::Downstream, 1_000, 8883),
            record(1, "10.0.0.1", 2, Direction::Downstream, 2_000, 8883),
            record(2, "10.0.0.1", 1, Direction::Downstream, 50_000, 8883),
        ]);
        let e = report.fig12a_ecdf(true);
        // Two line-days: 3000 and 50000.
        assert_eq!(e.len(), 2);
        assert!((e.fraction_at_or_below(10_000.0) - 0.5).abs() < 1e-9);
        let per_port = report.fig12c_ecdf(PortProto::tcp(8883));
        assert_eq!(per_port.len(), 2);
        let top = report.top_ports(5);
        assert_eq!(top[0].0, PortProto::tcp(8883));
    }

    #[test]
    fn region_groups_and_buckets() {
        let report = run(&[
            record(1, "10.0.0.1", 1, Direction::Downstream, 1000, 443), // EU
            record(1, "10.0.0.2", 1, Direction::Downstream, 3000, 443), // us-east-1
            record(2, "10.0.0.1", 2, Direction::Downstream, 500, 443),  // EU only
        ]);
        let us = report
            .region_series("alpha", RegionGroup::UsEast1, false)
            .unwrap();
        assert_eq!(us.get(1), 3000.0);
        let eu = report
            .region_series("alpha", RegionGroup::Europe, false)
            .unwrap();
        assert_eq!(eu.total(), 1500.0);
        let lines_us = report
            .region_series("alpha", RegionGroup::UsEast1, true)
            .unwrap();
        assert_eq!(lines_us.get(1), 1.0);

        let (eu_only, us_any, mix, _) = report.fig13_line_buckets();
        assert!((eu_only - 0.5).abs() < 1e-9, "line 2 is EU-only");
        assert!((us_any - 0.5).abs() < 1e-9, "line 1 touches the US");
        assert!((mix - 0.5).abs() < 1e-9, "line 1 touches both");

        let servers = report.fig13_server_buckets();
        assert!((servers[0] - 0.5).abs() < 1e-9);
        assert!((servers[1] - 0.5).abs() < 1e-9);

        let traffic = report.fig14_traffic_buckets();
        assert!((traffic[1] - 3000.0 / 4500.0).abs() < 1e-9);
    }

    #[test]
    fn excluded_lines_and_unknown_remotes_ignored() {
        let idx = index();
        let excluded: HashSet<LineId> = [LineId(9)].into_iter().collect();
        let mut sink = AnalysisSink::new(&idx, &excluded, StudyPeriod::main_week());
        sink.accept(&record(9, "10.0.0.1", 1, Direction::Downstream, 1000, 443));
        sink.accept(&record(1, "99.9.9.9", 1, Direction::Downstream, 1000, 443));
        let report = sink.into_report();
        assert_eq!(report.total_lines(), 0);
        assert_eq!(report.total_downstream("alpha"), 0);
    }

    #[test]
    fn daily_family_counts() {
        let report = run(&[
            record(1, "10.0.0.1", 1, Direction::Downstream, 1000, 443),
            record(2, "10.0.0.1", 30, Direction::Downstream, 1000, 443),
        ]);
        let (v4, v6) = report.daily_active_lines();
        assert!((v4 - 1.0).abs() < 1e-9, "one line per day on two days");
        assert_eq!(v6, 0.0);
    }

    #[test]
    fn out_of_window_flows_dropped() {
        let idx = index();
        let excluded = HashSet::new();
        let mut sink = AnalysisSink::new(&idx, &excluded, StudyPeriod::main_week());
        // A flow from December (outage week) must not land in the main
        // week's buckets.
        sink.accept(&FlowRecord {
            time: Date::new(2021, 12, 5).midnight(),
            line: LineId(1),
            remote: "10.0.0.1".parse().unwrap(),
            port: PortProto::tcp(443),
            direction: Direction::Downstream,
            bytes: 1000,
            packets: 1,
        });
        let report = sink.into_report();
        assert_eq!(report.fig9_downstream("alpha").unwrap().total(), 0.0);
    }

    /// The fold law behind the streaming path: folding any split of the
    /// stream into two partials and merging equals the serial pass, and
    /// so does the resulting report.
    #[test]
    fn split_fold_and_merge_match_serial() {
        let records = [
            record(1, "10.0.0.1", 10, Direction::Downstream, 5000, 8883),
            record(1, "10.0.0.2", 10, Direction::Upstream, 1000, 8883),
            record(2, "10.0.0.1", 11, Direction::Downstream, 3000, 443),
            record(3, "10.0.0.2", 30, Direction::Downstream, 700, 443),
            record(1, "10.0.0.1", 31, Direction::Upstream, 50, 1883),
        ];
        let idx = index();
        let excluded = HashSet::new();
        let fold = AnalysisFold::new(&idx, &excluded, StudyPeriod::main_week());
        let mut serial = fold.make();
        for r in &records {
            fold.fold(&mut serial, r);
        }
        let serial_report = fold.into_report(serial);
        for split in 0..=records.len() {
            let (a, b) = records.split_at(split);
            let mut left = fold.make();
            a.iter().for_each(|r| fold.fold(&mut left, r));
            let mut right = fold.make();
            b.iter().for_each(|r| fold.fold(&mut right, r));
            fold.merge(&mut left, right);
            assert_eq!(
                fold.into_report(left),
                serial_report,
                "split at {split} must merge to the serial report"
            );
        }
    }
}
