//! # iotmap-traffic — the ISP-side traffic analyses (§5, §6.1)
//!
//! Everything in this crate consumes two things and nothing else:
//!
//! 1. the **discovered backend map** produced by `iotmap-core` (dedicated
//!    IPs only, §3.4), distilled into an [`IpIndex`], and
//! 2. **anonymized, sampled NetFlow records** streamed through
//!    [`iotmap_netflow::FlowSink`]s.
//!
//! The analyses mirror the paper section by section: scanner exclusion
//! (§5.2, Fig. 5), backend visibility (Fig. 6) and per-source line
//! ablation (Fig. 7), subscriber-line activity (Fig. 8), traffic volumes
//! and asymmetry (Figs. 9–10), port usage (Fig. 11), per-line ECDFs
//! (Figs. 12a–c), region crossing (Figs. 13–14), and the AWS outage
//! (Figs. 15–16). Provider names are anonymized per §3.7 ([`anonymize`]).

pub mod analysis;
pub mod anonymize;
pub mod index;
pub mod scanners;
pub mod visibility;
pub mod whatif;

pub use analysis::{AnalysisFold, AnalysisPartial, AnalysisReport, AnalysisSink, RegionGroup};
pub use anonymize::Anonymization;
pub use index::{IpIndex, IpMeta};
pub use scanners::{ContactFold, ContactSink, ScannerAnalysis, ScannerCurvePoint};
pub use visibility::{source_ablation, visibility_per_provider, ProviderVisibility};
pub use whatif::{cascade_impact, CloudDependence};
