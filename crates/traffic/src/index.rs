//! The backend-IP index: discovered map → per-flow lookup table.
//!
//! §3.4: the traffic analysis uses only infrastructure "exclusively used
//! for IoT" — shared IPs (Google's HTTPS set, Akamai edges) are excluded
//! before any flow is attributed.
//!
//! Provider and region labels are **interned** ([`iotmap_nettypes::Interner`]):
//! the per-IP metadata carries compact u32 symbols instead of owned
//! strings, so the per-flow hot path (millions of lookups per simulated
//! day) compares integers, and the region-group classification of the
//! outage analysis is a symbol comparison instead of a string compare
//! per record.

use iotmap_core::{DiscoveryResult, Footprint};
use iotmap_nettypes::{Continent, Interner, Sym};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// Per-IP metadata carried into the flow analyses.
#[derive(Debug, Clone)]
pub struct IpMeta {
    /// Index into [`IpIndex::providers`].
    pub provider: usize,
    /// Continent of the backend server (from footprint inference).
    pub continent: Option<Continent>,
    /// Site/region label (e.g. `us-east-1`) from footprint inference,
    /// interned in the index's region table.
    pub region: Sym,
}

/// The lookup table from remote address to backend metadata.
#[derive(Debug, Default)]
pub struct IpIndex {
    providers: Interner,
    regions: Interner,
    /// Symbol of the outage-struck region, when any indexed IP sits there.
    us_east1: Option<Sym>,
    map: HashMap<IpAddr, IpMeta>,
}

impl IpIndex {
    /// Build from a discovery result and per-provider footprints,
    /// excluding `shared` IPs.
    ///
    /// `footprints` maps provider name → footprint; providers without an
    /// entry get IPs with unknown location.
    pub fn build(
        discovery: &DiscoveryResult,
        footprints: &HashMap<String, Footprint>,
        shared: &HashSet<IpAddr>,
    ) -> IpIndex {
        let _span = iotmap_obs::span!("traffic.index_build");
        let mut shared_excluded = 0u64;
        let mut index = IpIndex::default();
        for (name, disc) in discovery.per_provider() {
            let pidx = index.providers.intern(name).index();
            let fp = footprints.get(name);
            for &ip in disc.ips.keys() {
                if shared.contains(&ip) {
                    shared_excluded += 1;
                    continue;
                }
                let (continent, region) = fp
                    .and_then(|f| f.per_ip.get(&ip))
                    .map(|l| (Some(l.location.continent), l.label.as_str()))
                    .unwrap_or((None, ""));
                let region = index.regions.intern(region);
                index.map.insert(
                    ip,
                    IpMeta {
                        provider: pidx,
                        continent,
                        region,
                    },
                );
            }
        }
        index.us_east1 = index.regions.get("us-east-1");
        iotmap_obs::count!("traffic.index.ips_indexed", index.map.len() as u64);
        iotmap_obs::count!("traffic.index.shared_excluded", shared_excluded);
        index
    }

    /// Provider names, in index order.
    pub fn providers(&self) -> &[String] {
        self.providers.names()
    }

    /// Resolve a region symbol back to its label.
    pub fn region_name(&self, region: Sym) -> &str {
        self.regions.resolve(region)
    }

    /// Is this the outage-struck `us-east-1` region?
    pub fn is_us_east1(&self, region: Sym) -> bool {
        self.us_east1 == Some(region)
    }

    /// Look up a remote address.
    pub fn get(&self, ip: IpAddr) -> Option<&IpMeta> {
        self.map.get(&ip)
    }

    /// Number of indexed backend IPs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Indexed IPv4 count.
    pub fn v4_count(&self) -> usize {
        self.map.keys().filter(|ip| ip.is_ipv4()).count()
    }

    /// Indexed IPv6 count.
    pub fn v6_count(&self) -> usize {
        self.map.keys().filter(|ip| ip.is_ipv6()).count()
    }

    /// All indexed IPs of one provider (by index).
    pub fn ips_of(&self, provider: usize) -> HashSet<IpAddr> {
        self.map
            .iter()
            .filter(|(_, m)| m.provider == provider)
            .map(|(ip, _)| *ip)
            .collect()
    }

    /// Index of a provider by name.
    pub fn provider_index(&self, name: &str) -> Option<usize> {
        self.providers.get(name).map(|s| s.index())
    }

    /// Iterate over all `(ip, meta)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&IpAddr, &IpMeta)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_core::{IpEvidence, ProviderDiscovery};

    fn discovery() -> DiscoveryResult {
        let mut a = ProviderDiscovery {
            name: "amazon".to_string(),
            ..Default::default()
        };
        a.ips
            .insert("52.0.0.1".parse().unwrap(), IpEvidence::default());
        a.ips
            .insert("52.0.0.2".parse().unwrap(), IpEvidence::default());
        let mut g = ProviderDiscovery {
            name: "google".to_string(),
            ..Default::default()
        };
        g.ips
            .insert("60.0.0.1".parse().unwrap(), IpEvidence::default());
        g.ips
            .insert("2a09::1".parse().unwrap(), IpEvidence::default());
        DiscoveryResult::from_providers(vec![a, g])
    }

    #[test]
    fn build_and_lookup() {
        let disc = discovery();
        let idx = IpIndex::build(&disc, &HashMap::new(), &HashSet::new());
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.v4_count(), 3);
        assert_eq!(idx.v6_count(), 1);
        let meta = idx.get("52.0.0.1".parse().unwrap()).unwrap();
        assert_eq!(idx.providers()[meta.provider], "amazon");
        assert!(idx.get("9.9.9.9".parse().unwrap()).is_none());
        assert_eq!(idx.ips_of(idx.provider_index("google").unwrap()).len(), 2);
    }

    #[test]
    fn shared_ips_excluded() {
        let disc = discovery();
        let shared: HashSet<IpAddr> = ["60.0.0.1".parse().unwrap()].into_iter().collect();
        let idx = IpIndex::build(&disc, &HashMap::new(), &shared);
        assert_eq!(idx.len(), 3);
        assert!(idx.get("60.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn regions_are_interned_with_us_east1_cached() {
        let disc = discovery();
        let mut fp = Footprint::default();
        fp.per_ip.insert(
            "52.0.0.1".parse().unwrap(),
            iotmap_core::footprint::IpLocation {
                label: "us-east-1".into(),
                location: iotmap_nettypes::Location::new(
                    "Ashburn",
                    "US",
                    Continent::NorthAmerica,
                    39.0,
                    -77.5,
                ),
                contested: false,
            },
        );
        let mut fps = HashMap::new();
        fps.insert("amazon".to_string(), fp);
        let idx = IpIndex::build(&disc, &fps, &HashSet::new());
        let meta = idx.get("52.0.0.1".parse().unwrap()).unwrap();
        assert_eq!(idx.region_name(meta.region), "us-east-1");
        assert!(idx.is_us_east1(meta.region));
        let unlocated = idx.get("52.0.0.2".parse().unwrap()).unwrap();
        assert_eq!(idx.region_name(unlocated.region), "");
        assert!(!idx.is_us_east1(unlocated.region));
    }
}
