//! The backend-IP index: discovered map → per-flow lookup table.
//!
//! §3.4: the traffic analysis uses only infrastructure "exclusively used
//! for IoT" — shared IPs (Google's HTTPS set, Akamai edges) are excluded
//! before any flow is attributed.

use iotmap_core::{DiscoveryResult, Footprint};
use iotmap_nettypes::Continent;
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// Per-IP metadata carried into the flow analyses.
#[derive(Debug, Clone)]
pub struct IpMeta {
    /// Index into [`IpIndex::providers`].
    pub provider: usize,
    /// Continent of the backend server (from footprint inference).
    pub continent: Option<Continent>,
    /// Site/region label (e.g. `us-east-1`) from footprint inference.
    pub region: String,
}

/// The lookup table from remote address to backend metadata.
#[derive(Debug, Default)]
pub struct IpIndex {
    providers: Vec<String>,
    map: HashMap<IpAddr, IpMeta>,
}

impl IpIndex {
    /// Build from a discovery result and per-provider footprints,
    /// excluding `shared` IPs.
    ///
    /// `footprints` maps provider name → footprint; providers without an
    /// entry get IPs with unknown location.
    pub fn build(
        discovery: &DiscoveryResult,
        footprints: &HashMap<String, Footprint>,
        shared: &HashSet<IpAddr>,
    ) -> IpIndex {
        let _span = iotmap_obs::span!("traffic.index_build");
        let mut shared_excluded = 0u64;
        let mut index = IpIndex::default();
        for (name, disc) in discovery.per_provider() {
            let pidx = index.providers.len();
            index.providers.push(name.to_string());
            let fp = footprints.get(name);
            for &ip in disc.ips.keys() {
                if shared.contains(&ip) {
                    shared_excluded += 1;
                    continue;
                }
                let (continent, region) = fp
                    .and_then(|f| f.per_ip.get(&ip))
                    .map(|l| (Some(l.location.continent), l.label.clone()))
                    .unwrap_or((None, String::new()));
                index.map.insert(
                    ip,
                    IpMeta {
                        provider: pidx,
                        continent,
                        region,
                    },
                );
            }
        }
        iotmap_obs::count!("traffic.index.ips_indexed", index.map.len() as u64);
        iotmap_obs::count!("traffic.index.shared_excluded", shared_excluded);
        index
    }

    /// Provider names, in index order.
    pub fn providers(&self) -> &[String] {
        &self.providers
    }

    /// Look up a remote address.
    pub fn get(&self, ip: IpAddr) -> Option<&IpMeta> {
        self.map.get(&ip)
    }

    /// Number of indexed backend IPs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Indexed IPv4 count.
    pub fn v4_count(&self) -> usize {
        self.map.keys().filter(|ip| ip.is_ipv4()).count()
    }

    /// Indexed IPv6 count.
    pub fn v6_count(&self) -> usize {
        self.map.keys().filter(|ip| ip.is_ipv6()).count()
    }

    /// All indexed IPs of one provider (by index).
    pub fn ips_of(&self, provider: usize) -> HashSet<IpAddr> {
        self.map
            .iter()
            .filter(|(_, m)| m.provider == provider)
            .map(|(ip, _)| *ip)
            .collect()
    }

    /// Index of a provider by name.
    pub fn provider_index(&self, name: &str) -> Option<usize> {
        self.providers.iter().position(|p| p == name)
    }

    /// Iterate over all `(ip, meta)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&IpAddr, &IpMeta)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_core::{IpEvidence, ProviderDiscovery};

    fn discovery() -> DiscoveryResult {
        let mut a = ProviderDiscovery {
            name: "amazon".to_string(),
            ..Default::default()
        };
        a.ips
            .insert("52.0.0.1".parse().unwrap(), IpEvidence::default());
        a.ips
            .insert("52.0.0.2".parse().unwrap(), IpEvidence::default());
        let mut g = ProviderDiscovery {
            name: "google".to_string(),
            ..Default::default()
        };
        g.ips
            .insert("60.0.0.1".parse().unwrap(), IpEvidence::default());
        g.ips
            .insert("2a09::1".parse().unwrap(), IpEvidence::default());
        DiscoveryResult::from_providers(vec![a, g])
    }

    #[test]
    fn build_and_lookup() {
        let disc = discovery();
        let idx = IpIndex::build(&disc, &HashMap::new(), &HashSet::new());
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.v4_count(), 3);
        assert_eq!(idx.v6_count(), 1);
        let meta = idx.get("52.0.0.1".parse().unwrap()).unwrap();
        assert_eq!(idx.providers()[meta.provider], "amazon");
        assert!(idx.get("9.9.9.9".parse().unwrap()).is_none());
        assert_eq!(idx.ips_of(idx.provider_index("google").unwrap()).len(), 2);
    }

    #[test]
    fn shared_ips_excluded() {
        let disc = discovery();
        let shared: HashSet<IpAddr> = ["60.0.0.1".parse().unwrap()].into_iter().collect();
        let idx = IpIndex::build(&disc, &HashMap::new(), &shared);
        assert_eq!(idx.len(), 3);
        assert!(idx.get("60.0.0.1".parse().unwrap()).is_none());
    }
}
