//! What-if cascade analysis (§6's closing question: "outages that occur
//! unexpectedly can have cascading effects").
//!
//! Six of the backends lease from public clouds; a full outage of one
//! cloud operator would take down the corresponding share of each
//! dependent backend's footprint. This extension experiment quantifies
//! that dependency graph from the *measured* map: per provider, the
//! fraction of discovered backend IPs announced by each cloud
//! organization.

use iotmap_core::{DataSources, DiscoveryResult};
use std::collections::BTreeMap;

/// One provider's dependence on cloud organizations.
#[derive(Debug, Clone)]
pub struct CloudDependence {
    pub provider: String,
    /// Cloud org → fraction of the provider's backend IPs it announces.
    pub share_by_org: BTreeMap<String, f64>,
}

impl CloudDependence {
    /// Fraction of this provider's footprint lost if `org` disappears.
    pub fn loss_if_down(&self, org: &str) -> f64 {
        self.share_by_org.get(org).copied().unwrap_or(0.0)
    }
}

/// Compute every provider's cloud dependence from announcements.
pub fn cascade_impact(
    discovery: &DiscoveryResult,
    sources: &DataSources<'_>,
    cloud_orgs: &[&str],
) -> Vec<CloudDependence> {
    let mut out = Vec::new();
    for (name, disc) in discovery.per_provider() {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut total = 0usize;
        for &ip in disc.ips.keys() {
            let Some(origin) = sources.routeviews.origin(ip) else {
                continue;
            };
            total += 1;
            if cloud_orgs.contains(&origin.org.as_str()) {
                *counts.entry(origin.org.clone()).or_default() += 1;
            }
        }
        let share_by_org = counts
            .into_iter()
            .map(|(org, c)| (org, c as f64 / total.max(1) as f64))
            .collect();
        out.push(CloudDependence {
            provider: name.to_string(),
            share_by_org,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_core::{IpEvidence, ProviderDiscovery};
    use iotmap_dns::{PassiveDnsDb, ZoneDb};
    use iotmap_nettypes::{Asn, BgpOrigin, BgpTable};

    #[test]
    fn dependence_fractions() {
        let mut bgp = BgpTable::new();
        bgp.announce_v4(
            "52.0.0.0/13".parse().unwrap(),
            BgpOrigin {
                asn: Asn(16509),
                org: "Amazon Web Services".into(),
                location_label: String::new(),
                location: None,
            },
        );
        bgp.announce_v4(
            "60.0.0.0/16".parse().unwrap(),
            BgpOrigin {
                asn: Asn(777),
                org: "Own DC".into(),
                location_label: String::new(),
                location: None,
            },
        );
        let pdns = PassiveDnsDb::new();
        let zones = ZoneDb::new();
        let sources = DataSources {
            censys: &[],
            zgrab_v6: &[],
            passive_dns: &pdns,
            zones: &zones,
            routeviews: &bgp,
            latency: None,
        };
        let mut p = ProviderDiscovery {
            name: "mixedco".to_string(),
            ..Default::default()
        };
        p.ips
            .insert("52.0.0.1".parse().unwrap(), IpEvidence::default());
        p.ips
            .insert("52.0.0.2".parse().unwrap(), IpEvidence::default());
        p.ips
            .insert("60.0.0.1".parse().unwrap(), IpEvidence::default());
        p.ips
            .insert("60.0.0.2".parse().unwrap(), IpEvidence::default());
        let disc = DiscoveryResult::from_providers(vec![p]);

        let deps = cascade_impact(&disc, &sources, &["Amazon Web Services"]);
        assert_eq!(deps.len(), 1);
        let d = &deps[0];
        assert!((d.loss_if_down("Amazon Web Services") - 0.5).abs() < 1e-9);
        assert_eq!(d.loss_if_down("Microsoft Azure"), 0.0);
    }
}
