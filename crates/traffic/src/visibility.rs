//! Backend visibility (Fig. 6) and the data-source line ablation (Fig. 7).

use crate::index::IpIndex;
use crate::scanners::ContactSink;
use iotmap_netflow::LineId;
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// Per-provider visibility from the vantage point.
#[derive(Debug, Clone)]
pub struct ProviderVisibility {
    pub provider: String,
    /// Fraction of the provider's discovered IPv4 backends contacted by
    /// (non-scanner) subscriber lines.
    pub v4: f64,
    /// Same for IPv6 (`None` when the provider has no IPv6 backends).
    pub v6: Option<f64>,
    /// Distinct subscriber lines with traffic to this provider.
    pub lines: usize,
}

/// Figure 6: per-provider visible-server fractions, from non-scanner
/// contact sets.
pub fn visibility_per_provider(
    index: &IpIndex,
    contacts: &ContactSink<'_>,
    excluded: &HashSet<LineId>,
) -> Vec<ProviderVisibility> {
    let mut seen: Vec<HashSet<IpAddr>> = vec![HashSet::new(); index.providers().len()];
    let mut lines: Vec<HashSet<LineId>> = vec![HashSet::new(); index.providers().len()];
    for (line, ips) in &contacts.per_line {
        if excluded.contains(line) {
            continue;
        }
        for &ip in ips {
            if let Some(meta) = index.get(ip) {
                seen[meta.provider].insert(ip);
                lines[meta.provider].insert(*line);
            }
        }
    }
    index
        .providers()
        .iter()
        .enumerate()
        .map(|(pi, name)| {
            let all = index.ips_of(pi);
            let v4_total = all.iter().filter(|ip| ip.is_ipv4()).count();
            let v6_total = all.iter().filter(|ip| ip.is_ipv6()).count();
            let v4_seen = seen[pi].iter().filter(|ip| ip.is_ipv4()).count();
            let v6_seen = seen[pi].iter().filter(|ip| ip.is_ipv6()).count();
            ProviderVisibility {
                provider: name.clone(),
                v4: if v4_total == 0 {
                    0.0
                } else {
                    v4_seen as f64 / v4_total as f64
                },
                v6: (v6_total > 0).then(|| v6_seen as f64 / v6_total as f64),
                lines: lines[pi].len(),
            }
        })
        .collect()
}

/// Figure 7: per provider, the relative decrease in detected IoT
/// subscriber lines when only a subset of the backend map (e.g.
/// TLS-certificate discoveries) is available.
///
/// `restricted[p]` is the backend IP subset per provider name.
pub fn source_ablation(
    index: &IpIndex,
    contacts: &ContactSink<'_>,
    excluded: &HashSet<LineId>,
    restricted: &HashMap<String, HashSet<IpAddr>>,
) -> Vec<(String, f64)> {
    let n = index.providers().len();
    let mut full: Vec<HashSet<LineId>> = vec![HashSet::new(); n];
    let mut limited: Vec<HashSet<LineId>> = vec![HashSet::new(); n];
    for (line, ips) in &contacts.per_line {
        if excluded.contains(line) {
            continue;
        }
        for &ip in ips {
            if let Some(meta) = index.get(ip) {
                full[meta.provider].insert(*line);
                if restricted
                    .get(&index.providers()[meta.provider])
                    .is_some_and(|s| s.contains(&ip))
                {
                    limited[meta.provider].insert(*line);
                }
            }
        }
    }
    index
        .providers()
        .iter()
        .enumerate()
        .map(|(pi, name)| {
            let f = full[pi].len();
            let l = limited[pi].len();
            let decrease = if f == 0 {
                0.0
            } else {
                1.0 - l as f64 / f as f64
            };
            (name.clone(), decrease)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_core::{DiscoveryResult, IpEvidence, ProviderDiscovery};
    use iotmap_netflow::{Direction, FlowRecord, FlowSink};
    use iotmap_nettypes::{Date, PortProto};

    fn index() -> IpIndex {
        let mut a = ProviderDiscovery {
            name: "alpha".to_string(),
            ..Default::default()
        };
        for i in 1..=4u8 {
            a.ips.insert(
                format!("10.0.0.{i}").parse().unwrap(),
                IpEvidence::default(),
            );
        }
        let mut b = ProviderDiscovery {
            name: "beta".to_string(),
            ..Default::default()
        };
        b.ips
            .insert("10.1.0.1".parse().unwrap(), IpEvidence::default());
        b.ips
            .insert("2a09::1".parse().unwrap(), IpEvidence::default());
        IpIndex::build(
            &DiscoveryResult::from_providers(vec![a, b]),
            &HashMap::new(),
            &HashSet::new(),
        )
    }

    fn feed(sink: &mut ContactSink<'_>, line: u64, ip: &str) {
        sink.accept(&FlowRecord {
            time: Date::new(2022, 3, 1).midnight(),
            line: LineId(line),
            remote: ip.parse().unwrap(),
            port: PortProto::tcp(443),
            direction: Direction::Downstream,
            bytes: 1000,
            packets: 2,
        });
    }

    #[test]
    fn per_provider_visibility() {
        let idx = index();
        let mut sink = ContactSink::new(&idx);
        feed(&mut sink, 1, "10.0.0.1");
        feed(&mut sink, 1, "10.0.0.2");
        feed(&mut sink, 2, "10.1.0.1");
        feed(&mut sink, 2, "2a09::1");
        let vis = visibility_per_provider(&idx, &sink, &HashSet::new());
        let alpha = vis.iter().find(|v| v.provider == "alpha").unwrap();
        assert!((alpha.v4 - 0.5).abs() < 1e-9);
        assert_eq!(alpha.v6, None);
        assert_eq!(alpha.lines, 1);
        let beta = vis.iter().find(|v| v.provider == "beta").unwrap();
        assert!((beta.v4 - 1.0).abs() < 1e-9);
        assert_eq!(beta.v6, Some(1.0));
        assert_eq!(beta.lines, 1);
    }

    #[test]
    fn excluded_lines_do_not_count() {
        let idx = index();
        let mut sink = ContactSink::new(&idx);
        feed(&mut sink, 7, "10.0.0.1");
        let excluded: HashSet<LineId> = [LineId(7)].into_iter().collect();
        let vis = visibility_per_provider(&idx, &sink, &excluded);
        assert_eq!(vis[0].v4, 0.0);
        assert_eq!(vis[0].lines, 0);
    }

    #[test]
    fn ablation_measures_line_loss() {
        let idx = index();
        let mut sink = ContactSink::new(&idx);
        // Line 1 contacts an IP that certificates would discover;
        // line 2 contacts one that only DNS finds.
        feed(&mut sink, 1, "10.0.0.1");
        feed(&mut sink, 2, "10.0.0.2");
        let mut restricted = HashMap::new();
        restricted.insert(
            "alpha".to_string(),
            [IpAddr::from([10, 0, 0, 1])]
                .into_iter()
                .collect::<HashSet<_>>(),
        );
        let ablation = source_ablation(&idx, &sink, &HashSet::new(), &restricted);
        let alpha = ablation.iter().find(|(n, _)| n == "alpha").unwrap();
        assert!((alpha.1 - 0.5).abs() < 1e-9, "half the lines lost");
        // Beta has no restricted set: total loss when lines exist.
        feed(&mut sink, 3, "10.1.0.1");
        let ablation = source_ablation(&idx, &sink, &HashSet::new(), &restricted);
        let beta = ablation.iter().find(|(n, _)| n == "beta").unwrap();
        assert!((beta.1 - 1.0).abs() < 1e-9);
    }
}
