//! Provider-name anonymization for ISP analyses (§3.7).
//!
//! "To avoid IoT backend provider blocklisting and any leakage of
//! information…, we anonymize the names of all IoT backend providers when
//! discussing ISP traffic." The paper's label families: `T1–T4` for the
//! top-4 providers by revenue, `D1–D6` for the cloud-dependent providers,
//! `O1–O6` for the rest. The concrete assignment below satisfies every
//! constraint the paper's prose implies (T1 is the AWS-outage-affected
//! platform, O3/O5 are the China-only backends with no EU residential
//! activity, D4 runs ActiveMQ on TCP/61616, …) and is documented in
//! EXPERIMENTS.md.

use std::collections::BTreeMap;

/// The anonymization table.
#[derive(Debug, Clone)]
pub struct Anonymization {
    forward: BTreeMap<&'static str, &'static str>,
}

impl Anonymization {
    /// The fixed assignment used throughout the experiments.
    pub fn paper() -> Self {
        let pairs: [(&'static str, &'static str); 16] = [
            // Top-4 by revenue.
            ("amazon", "T1"),
            ("google", "T2"),
            ("microsoft", "T3"),
            ("alibaba", "T4"),
            // Cloud-dependent.
            ("bosch", "D1"),
            ("sap", "D2"),
            ("cisco", "D3"),
            ("siemens", "D4"),
            ("ptc", "D5"),
            ("sierra", "D6"),
            // The rest.
            ("ibm", "O1"),
            ("tencent", "O2"),
            ("huawei", "O3"),
            ("oracle", "O4"),
            ("baidu", "O5"),
            ("fujitsu", "O6"),
        ];
        Anonymization {
            forward: pairs.into_iter().collect(),
        }
    }

    /// Anonymized label of a provider.
    pub fn label(&self, provider: &str) -> &'static str {
        self.forward.get(provider).copied().unwrap_or("??")
    }

    /// Provider behind a label (experiment-harness use only — the real
    /// analysts could not invert this).
    pub fn deanonymize(&self, label: &str) -> Option<&'static str> {
        self.forward
            .iter()
            .find(|(_, l)| **l == label)
            .map(|(p, _)| *p)
    }

    /// All `(provider, label)` pairs, label-sorted.
    pub fn pairs(&self) -> Vec<(&'static str, &'static str)> {
        let mut v: Vec<_> = self.forward.iter().map(|(p, l)| (*p, *l)).collect();
        v.sort_by_key(|(_, l)| *l);
        v
    }

    /// Labels of the top-4 group.
    pub fn top4(&self) -> Vec<&'static str> {
        vec!["T1", "T2", "T3", "T4"]
    }

    /// Labels of the cloud-dependent group.
    pub fn cloud_dependent(&self) -> Vec<&'static str> {
        vec!["D1", "D2", "D3", "D4", "D5", "D6"]
    }

    /// Labels of the remaining providers.
    pub fn others(&self) -> Vec<&'static str> {
        vec!["O1", "O2", "O3", "O4", "O5", "O6"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_from_the_paper_hold() {
        let a = Anonymization::paper();
        // T1 is the platform directly hit by the AWS us-east-1 outage.
        assert_eq!(a.label("amazon"), "T1");
        // O3 and O5 are the China-only providers excluded from §5.
        assert_eq!(a.label("huawei"), "O3");
        assert_eq!(a.label("baidu"), "O5");
        // D4 is the ActiveMQ (TCP/61616) platform.
        assert_eq!(a.label("siemens"), "D4");
        // D-group is exactly the six cloud-dependent providers.
        for p in ["bosch", "sap", "cisco", "siemens", "ptc", "sierra"] {
            assert!(a.label(p).starts_with('D'), "{p}");
        }
    }

    #[test]
    fn bijection() {
        let a = Anonymization::paper();
        assert_eq!(a.pairs().len(), 16);
        let labels: std::collections::BTreeSet<_> = a.pairs().iter().map(|(_, l)| *l).collect();
        assert_eq!(labels.len(), 16);
        assert_eq!(a.deanonymize("T2"), Some("google"));
        assert_eq!(a.deanonymize("ZZ"), None);
        assert_eq!(a.label("unknown-provider"), "??");
    }

    #[test]
    fn groups_cover_everything() {
        let a = Anonymization::paper();
        let mut all = a.top4();
        all.extend(a.cloud_dependent());
        all.extend(a.others());
        assert_eq!(all.len(), 16);
    }
}
