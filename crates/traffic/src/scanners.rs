//! Scanner exclusion (§5.2, Figure 5).
//!
//! "To identify scanners, we follow the method proposed by Richter et al.
//! For each day…, we compute the fraction of IoT backend server IPs that a
//! subscriber line contacts. A subscriber line is said to host a scanner
//! if it contacts more than a threshold of the server IPs."

use crate::index::IpIndex;
use iotmap_netflow::{FlowFold, FlowRecord, FlowSink, LineId};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// The contact pass as a mergeable fold: per-line contact sets are
/// pure set unions, so per-shard partials merged in any split of the
/// stream equal the serial pass.
pub struct ContactFold<'a> {
    index: &'a IpIndex,
}

impl<'a> ContactFold<'a> {
    /// New fold over an index.
    pub fn new(index: &'a IpIndex) -> Self {
        ContactFold { index }
    }
}

impl FlowFold for ContactFold<'_> {
    type Partial = HashMap<LineId, HashSet<IpAddr>>;

    fn make(&self) -> Self::Partial {
        HashMap::new()
    }

    fn fold(&self, acc: &mut Self::Partial, record: &FlowRecord) {
        if self.index.get(record.remote).is_some() {
            iotmap_obs::count!("traffic.contact.flows_matched");
            acc.entry(record.line).or_default().insert(record.remote);
        }
    }

    fn merge(&self, acc: &mut Self::Partial, other: Self::Partial) {
        for (line, ips) in other {
            acc.entry(line).or_default().extend(ips);
        }
    }
}

/// First pass over the flows: per-line backend contact sets.
pub struct ContactSink<'a> {
    fold: ContactFold<'a>,
    /// Per line: distinct backend IPs contacted (both families).
    pub per_line: HashMap<LineId, HashSet<IpAddr>>,
}

impl<'a> ContactSink<'a> {
    /// New sink over an index.
    pub fn new(index: &'a IpIndex) -> Self {
        ContactSink {
            fold: ContactFold::new(index),
            per_line: HashMap::new(),
        }
    }

    /// Wrap an already-folded contact partial (e.g. from a streaming
    /// [`ContactFold`] pass) so the scanner analysis can consume it.
    pub fn from_parts(index: &'a IpIndex, per_line: HashMap<LineId, HashSet<IpAddr>>) -> Self {
        ContactSink {
            fold: ContactFold::new(index),
            per_line,
        }
    }
}

impl FlowSink for ContactSink<'_> {
    fn accept(&mut self, record: &FlowRecord) {
        self.fold.fold(&mut self.per_line, record);
    }
}

/// One point of the Figure 5 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScannerCurvePoint {
    /// Scanner threshold (backend IPs contacted).
    pub threshold: usize,
    /// Lines flagged (and excluded) at this threshold.
    pub lines_excluded: usize,
    /// Fraction of all IPv4 backend IPs still visible from the remaining
    /// lines.
    pub v4_visibility: f64,
}

/// The scanner analysis over contact sets.
pub struct ScannerAnalysis<'a> {
    index: &'a IpIndex,
    contacts: &'a ContactSink<'a>,
}

impl<'a> ScannerAnalysis<'a> {
    /// Analyse a completed contact pass.
    pub fn new(index: &'a IpIndex, contacts: &'a ContactSink<'a>) -> Self {
        ScannerAnalysis { index, contacts }
    }

    /// Lines contacting at least `threshold` distinct backend IPs.
    pub fn flagged_lines(&self, threshold: usize) -> HashSet<LineId> {
        self.contacts
            .per_line
            .iter()
            .filter(|(_, s)| s.len() >= threshold)
            .map(|(l, _)| *l)
            .collect()
    }

    /// Visibility of the IPv4 backend space from lines *below* the
    /// threshold.
    pub fn v4_visibility(&self, threshold: usize) -> f64 {
        let total = self.index.v4_count();
        if total == 0 {
            return 0.0;
        }
        let mut seen: HashSet<IpAddr> = HashSet::new();
        for (_, contacts) in self
            .contacts
            .per_line
            .iter()
            .filter(|(_, s)| s.len() < threshold)
        {
            seen.extend(contacts.iter().filter(|ip| ip.is_ipv4()));
        }
        seen.len() as f64 / total as f64
    }

    /// IPv6 visibility from non-scanner lines.
    pub fn v6_visibility(&self, threshold: usize) -> f64 {
        let total = self.index.v6_count();
        if total == 0 {
            return 0.0;
        }
        let mut seen: HashSet<IpAddr> = HashSet::new();
        for (_, contacts) in self
            .contacts
            .per_line
            .iter()
            .filter(|(_, s)| s.len() < threshold)
        {
            seen.extend(contacts.iter().filter(|ip| ip.is_ipv6()));
        }
        seen.len() as f64 / total as f64
    }

    /// The Figure 5 curve over a threshold ladder.
    pub fn curve(&self, thresholds: &[usize]) -> Vec<ScannerCurvePoint> {
        thresholds
            .iter()
            .map(|&t| ScannerCurvePoint {
                threshold: t,
                lines_excluded: self.flagged_lines(t).len(),
                v4_visibility: self.v4_visibility(t),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_core::{DiscoveryResult, IpEvidence, ProviderDiscovery};
    use iotmap_netflow::Direction;
    use iotmap_nettypes::{Date, PortProto};

    fn index(n_ips: usize) -> IpIndex {
        let mut p = ProviderDiscovery {
            name: "x".to_string(),
            ..Default::default()
        };
        for i in 0..n_ips {
            let ip: IpAddr = format!("10.0.{}.{}", i / 250, 1 + i % 250).parse().unwrap();
            p.ips.insert(ip, IpEvidence::default());
        }
        IpIndex::build(
            &DiscoveryResult::from_providers(vec![p]),
            &HashMap::new(),
            &HashSet::new(),
        )
    }

    fn flow(line: u64, ip: &str) -> FlowRecord {
        FlowRecord {
            time: Date::new(2022, 3, 1).midnight(),
            line: LineId(line),
            remote: ip.parse().unwrap(),
            port: PortProto::tcp(8883),
            direction: Direction::Upstream,
            bytes: 100,
            packets: 1,
        }
    }

    fn contact_ips(sink: &mut ContactSink<'_>, line: u64, n: usize) {
        for i in 0..n {
            sink.accept(&flow(line, &format!("10.0.{}.{}", i / 250, 1 + i % 250)));
        }
    }

    #[test]
    fn threshold_separates_scanners_from_households() {
        let idx = index(500);
        let mut sink = ContactSink::new(&idx);
        contact_ips(&mut sink, 1, 3); // household
        contact_ips(&mut sink, 2, 5); // bigger household
        contact_ips(&mut sink, 3, 400); // scanner
        let analysis = ScannerAnalysis::new(&idx, &sink);
        assert_eq!(analysis.flagged_lines(100).len(), 1);
        assert!(analysis.flagged_lines(100).contains(&LineId(3)));
        assert_eq!(analysis.flagged_lines(4).len(), 2);
    }

    #[test]
    fn visibility_excludes_scanner_contacts() {
        let idx = index(100);
        let mut sink = ContactSink::new(&idx);
        contact_ips(&mut sink, 1, 10); // household contacting 10 of 100
        contact_ips(&mut sink, 2, 90); // scanner
        let analysis = ScannerAnalysis::new(&idx, &sink);
        // With a high threshold the scanner is kept: full visibility.
        assert!((analysis.v4_visibility(1000) - 0.9).abs() < 1e-9);
        // With threshold 50 the scanner is dropped: only the household.
        assert!((analysis.v4_visibility(50) - 0.10).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone_in_lines() {
        let idx = index(300);
        let mut sink = ContactSink::new(&idx);
        for line in 0..20 {
            contact_ips(&mut sink, line, 3 + (line as usize) * 10);
        }
        let analysis = ScannerAnalysis::new(&idx, &sink);
        let curve = analysis.curve(&[10, 50, 100, 200]);
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[0].lines_excluded >= w[1].lines_excluded);
            assert!(w[0].v4_visibility <= w[1].v4_visibility + 1e-12);
        }
    }

    #[test]
    fn contact_fold_merges_like_it_folds() {
        let idx = index(50);
        let records: Vec<FlowRecord> = (0..30)
            .map(|i| flow(1 + i % 4, &format!("10.0.0.{}", 1 + i % 50)))
            .collect();
        let fold = ContactFold::new(&idx);
        let mut serial = fold.make();
        records.iter().for_each(|r| fold.fold(&mut serial, r));
        for split in 0..=records.len() {
            let (a, b) = records.split_at(split);
            let mut left = fold.make();
            a.iter().for_each(|r| fold.fold(&mut left, r));
            let mut right = fold.make();
            b.iter().for_each(|r| fold.fold(&mut right, r));
            fold.merge(&mut left, right);
            assert_eq!(left, serial, "split at {split}");
        }
    }

    #[test]
    fn non_backend_remotes_ignored() {
        let idx = index(10);
        let mut sink = ContactSink::new(&idx);
        sink.accept(&flow(1, "99.99.99.99"));
        assert!(sink.per_line.is_empty());
    }
}
