//! # iotmap-scan — the active-scanning substrate
//!
//! §3.3 of the paper uses two scanning instruments:
//!
//! * **Censys**, which "continuously scans the IPv4 address space … performs
//!   protocol-specific handshakes to collect banners; and it provides
//!   metadata, e.g., geolocation. These results are published on a daily
//!   basis." Module [`censys`] reproduces the daily-snapshot service.
//! * **ZGrab2** against **IPv6 hitlists** for addresses "that showed
//!   activity for popular IoT ports, i.e., 443 (HTTPS), 8883 (MQTT),
//!   1883 (MQTT), and 5671 (AMQP)". Modules [`zgrab`] and [`hitlist`].
//!
//! The scanners observe the Internet only through the [`target::ScanView`]
//! trait — the measurement code never touches ground truth directly, which
//! is what lets the same pipeline run against a real Internet or the
//! synthetic one.
//!
//! [`ethics`] implements the §3.7 controls (single probe per destination,
//! randomized spread, opt-out lists, PTR self-identification), and
//! [`lookingglass`] the RTT-based location estimation used as a footprint
//! fallback in §4.2.

pub mod censys;
pub mod corpus;
pub mod ethics;
pub mod hitlist;
pub mod lookingglass;
pub mod target;
pub mod zgrab;

pub use censys::{CensysRecord, CensysService, CensysSnapshot};
pub use corpus::{CorpusReader, CorpusRecord, ScaledCorpus};
pub use ethics::ProbePolicy;
pub use hitlist::Ipv6Hitlist;
pub use lookingglass::{estimate_location, LatencyProber, LookingGlassSite};
pub use target::ScanView;
pub use zgrab::{Zgrab2Scanner, ZgrabRecord};
