//! Scanning ethics controls (§3.7).
//!
//! "First, the load measurement is very low, i.e., a single packet per
//! destination. We also performed a randomized spread of load at each
//! target… We run a Web server with experiment and opt-out information that
//! responds to DNS resolution of the DNS PTR domain."

use iotmap_nettypes::{Ipv4Prefix, SimRng};
use std::net::{IpAddr, Ipv4Addr};

/// Probe policy enforced by every scanner in this crate.
#[derive(Debug, Clone)]
pub struct ProbePolicy {
    /// PTR name published for the prober's source address, pointing at the
    /// experiment/opt-out page.
    pub prober_ptr: String,
    /// Networks that asked to be excluded.
    opt_out: Vec<Ipv4Prefix>,
    /// Maximum probes per destination per scan run.
    pub max_probes_per_destination: u32,
    probes_sent: u64,
}

impl ProbePolicy {
    /// The defaults the paper describes.
    pub fn paper_defaults() -> Self {
        ProbePolicy {
            prober_ptr: "research-scanner.iotmap-experiment.example".to_string(),
            opt_out: Vec::new(),
            max_probes_per_destination: 1,
            probes_sent: 0,
        }
    }

    /// Register an opt-out request for a network.
    pub fn add_opt_out(&mut self, prefix: Ipv4Prefix) {
        self.opt_out.push(prefix);
    }

    /// May this destination be probed?
    pub fn allows(&self, addr: IpAddr) -> bool {
        match addr {
            IpAddr::V4(a) => !self.opt_out.iter().any(|p| p.contains(a)),
            IpAddr::V6(_) => true, // opt-outs tracked for v4 sweeps
        }
    }

    /// Account for one probe.
    pub fn record_probe(&mut self) {
        self.record_probes(1);
    }

    /// Account for a batch of probes at once (parallel scan shards report
    /// their per-shard totals after the join).
    pub fn record_probes(&mut self, n: u64) {
        self.probes_sent += n;
    }

    /// Total probes sent under this policy.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    /// Randomize target order ("randomized spread of load"): probes to the
    /// same network are spread out in time instead of arriving in a burst.
    pub fn randomize_order<T>(&self, rng: &mut SimRng, targets: &mut [T]) {
        rng.shuffle(targets);
    }
}

/// A convenience predicate: does a destination fall in special-use space a
/// responsible scanner must never probe (loopback, RFC 1918, multicast…)?
pub fn is_unscannable(addr: Ipv4Addr) -> bool {
    addr.is_loopback()
        || addr.is_private()
        || addr.is_link_local()
        || addr.is_multicast()
        || addr.is_broadcast()
        || addr.is_unspecified()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_out_respected() {
        let mut p = ProbePolicy::paper_defaults();
        p.add_opt_out("203.0.113.0/24".parse().unwrap());
        assert!(!p.allows("203.0.113.7".parse().unwrap()));
        assert!(p.allows("198.51.100.1".parse().unwrap()));
        assert!(p.allows("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn probe_accounting() {
        let mut p = ProbePolicy::paper_defaults();
        p.record_probe();
        p.record_probe();
        assert_eq!(p.probes_sent(), 2);
        assert_eq!(p.max_probes_per_destination, 1);
    }

    #[test]
    fn randomize_order_permutes() {
        let p = ProbePolicy::paper_defaults();
        let mut rng = SimRng::new(5);
        let mut targets: Vec<u32> = (0..100).collect();
        p.randomize_order(&mut rng, &mut targets);
        let mut sorted = targets.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(targets, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn unscannable_space() {
        assert!(is_unscannable("127.0.0.1".parse().unwrap()));
        assert!(is_unscannable("10.1.2.3".parse().unwrap()));
        assert!(is_unscannable("224.0.0.1".parse().unwrap()));
        assert!(!is_unscannable("8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn ptr_identifies_experiment() {
        let p = ProbePolicy::paper_defaults();
        assert!(p.prober_ptr.contains("experiment"));
    }
}
