//! Looking-glass latency probes for location inference.
//!
//! §4.2: for providers whose domains carry no location hints (Oracle, and a
//! small subset of IPs), the paper triangulates with "pings from traceroute
//! looking glasses". Latency from several known sites bounds where a host
//! can physically be; the nearest-site heuristic picks the candidate
//! location most consistent with the observed RTTs.

use iotmap_nettypes::geo::rtt_ms_for_distance;
use iotmap_nettypes::Location;
use std::net::IpAddr;

/// A looking-glass vantage site.
#[derive(Debug, Clone)]
pub struct LookingGlassSite {
    pub name: String,
    pub location: Location,
}

/// Something that can measure RTTs from looking-glass sites to hosts — the
/// world implements this with geometry + noise; a real implementation would
/// drive actual looking-glass APIs. `Sync` so a probe handle can be shared
/// across the parallel pipeline's worker shards.
pub trait LatencyProber: Sync {
    /// RTT in ms from `site` to `target`, or `None` if unreachable.
    fn rtt_ms(&self, site: &LookingGlassSite, target: IpAddr) -> Option<f64>;
}

/// Estimate which of `candidates` a target most plausibly sits in, given
/// RTT measurements from `sites`.
///
/// Scoring: for each candidate location, compute the expected RTT from
/// every site (speed-of-light-in-fibre model) and take the mean squared
/// error against measurements. Smallest error wins. Returns `None` when no
/// site can reach the target.
pub fn estimate_location<'a>(
    prober: &dyn LatencyProber,
    sites: &[LookingGlassSite],
    target: IpAddr,
    candidates: &'a [Location],
) -> Option<&'a Location> {
    let measured: Vec<(usize, f64)> = sites
        .iter()
        .enumerate()
        .filter_map(|(i, s)| prober.rtt_ms(s, target).map(|rtt| (i, rtt)))
        .collect();
    if measured.is_empty() || candidates.is_empty() {
        return None;
    }
    let mut best: Option<(&Location, f64)> = None;
    for cand in candidates {
        let mut err = 0.0;
        for (i, rtt) in &measured {
            let expected = rtt_ms_for_distance(sites[*i].location.distance_km(cand));
            err += (expected - rtt) * (expected - rtt);
        }
        err /= measured.len() as f64;
        if best.is_none_or(|(_, e)| err < e) {
            best = Some((cand, err));
        }
    }
    best.map(|(l, _)| l)
}

/// The default looking-glass deployment used by the experiments: one site
/// per major region.
pub fn default_sites() -> Vec<LookingGlassSite> {
    use iotmap_nettypes::Continent::*;
    vec![
        LookingGlassSite {
            name: "lg-frankfurt".to_string(),
            location: Location::new("Frankfurt", "DE", Europe, 50.11, 8.68),
        },
        LookingGlassSite {
            name: "lg-ashburn".to_string(),
            location: Location::new("Ashburn", "US", NorthAmerica, 39.04, -77.49),
        },
        LookingGlassSite {
            name: "lg-singapore".to_string(),
            location: Location::new("Singapore", "SG", Asia, 1.35, 103.82),
        },
        LookingGlassSite {
            name: "lg-saopaulo".to_string(),
            location: Location::new("Sao Paulo", "BR", SouthAmerica, -23.55, -46.63),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotmap_nettypes::Continent;

    /// Ideal prober: RTT is exactly the fibre model to a hidden true
    /// location.
    struct IdealProber {
        truth: Location,
    }

    impl LatencyProber for IdealProber {
        fn rtt_ms(&self, site: &LookingGlassSite, _target: IpAddr) -> Option<f64> {
            Some(rtt_ms_for_distance(site.location.distance_km(&self.truth)))
        }
    }

    struct DeadProber;

    impl LatencyProber for DeadProber {
        fn rtt_ms(&self, _site: &LookingGlassSite, _target: IpAddr) -> Option<f64> {
            None
        }
    }

    fn candidates() -> Vec<Location> {
        vec![
            Location::new("Amsterdam", "NL", Continent::Europe, 52.37, 4.9),
            Location::new("Portland", "US", Continent::NorthAmerica, 45.52, -122.68),
            Location::new("Tokyo", "JP", Continent::Asia, 35.68, 139.69),
        ]
    }

    #[test]
    fn triangulation_picks_nearest_candidate() {
        let sites = default_sites();
        let cands = candidates();
        for truth_idx in 0..cands.len() {
            let prober = IdealProber {
                truth: cands[truth_idx].clone(),
            };
            let est = estimate_location(&prober, &sites, "192.0.2.1".parse().unwrap(), &cands)
                .expect("estimate");
            assert_eq!(est.city, cands[truth_idx].city);
        }
    }

    #[test]
    fn unreachable_target_gives_none() {
        let sites = default_sites();
        let cands = candidates();
        assert!(
            estimate_location(&DeadProber, &sites, "192.0.2.1".parse().unwrap(), &cands).is_none()
        );
    }

    #[test]
    fn empty_candidates_give_none() {
        let sites = default_sites();
        let prober = IdealProber {
            truth: candidates()[0].clone(),
        };
        assert!(estimate_location(&prober, &sites, "192.0.2.1".parse().unwrap(), &[]).is_none());
    }

    #[test]
    fn works_with_a_single_site() {
        let sites = vec![default_sites().remove(0)]; // Frankfurt only
        let cands = candidates();
        let prober = IdealProber {
            truth: cands[0].clone(), // Amsterdam
        };
        let est = estimate_location(&prober, &sites, "192.0.2.1".parse().unwrap(), &cands).unwrap();
        // One European site cannot confuse Amsterdam with Tokyo.
        assert_eq!(est.city, "Amsterdam");
    }
}
