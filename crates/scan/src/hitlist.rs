//! IPv6 hitlists.
//!
//! The IPv6 space cannot be swept; scanners need candidate lists. The paper
//! uses the IPv6 Hitlist service (§3.3) restricted to "addresses that
//! showed activity for popular IoT ports", and notes that "our ability to
//! discover IPv6 addresses is directly influenced by the coverage of the
//! chosen IPv6 hitlists" (§3.6).

use iotmap_nettypes::{Ipv6Prefix, PortProto};
use std::collections::BTreeSet;
use std::net::Ipv6Addr;

/// A list of candidate IPv6 addresses.
#[derive(Debug, Clone, Default)]
pub struct Ipv6Hitlist {
    addrs: BTreeSet<Ipv6Addr>,
}

impl Ipv6Hitlist {
    /// Empty hitlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a candidate address.
    pub fn add(&mut self, addr: Ipv6Addr) {
        self.addrs.insert(addr);
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        self.addrs.contains(&addr)
    }

    /// Iterate in address order (deterministic scans).
    pub fn iter(&self) -> impl Iterator<Item = Ipv6Addr> + '_ {
        self.addrs.iter().copied()
    }

    /// Candidates within a prefix (e.g. one provider's announcement).
    pub fn in_prefix<'a>(&'a self, prefix: &'a Ipv6Prefix) -> impl Iterator<Item = Ipv6Addr> + 'a {
        self.addrs
            .iter()
            .copied()
            .filter(move |a| prefix.contains(*a))
    }

    /// Number of distinct /56 blocks covered — the Table 1 unit.
    pub fn slash56_count(&self) -> usize {
        self.addrs
            .iter()
            .map(|a| Ipv6Prefix::slash56_of(*a))
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// The default IoT port set the paper probes on IPv6 candidates.
pub fn iot_probe_ports() -> Vec<PortProto> {
    use iotmap_nettypes::ports::well_known as wk;
    vec![wk::HTTPS, wk::MQTT_TLS, wk::MQTT, wk::AMQP_TLS]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn add_and_query() {
        let mut h = Ipv6Hitlist::new();
        h.add(a("2001:db8::1"));
        h.add(a("2001:db8::1")); // duplicate ignored
        h.add(a("2001:db8:0:100::1"));
        assert_eq!(h.len(), 2);
        assert!(h.contains(a("2001:db8::1")));
        assert!(!h.contains(a("2001:db8::2")));
    }

    #[test]
    fn prefix_filter() {
        let mut h = Ipv6Hitlist::new();
        h.add(a("2001:db8::1"));
        h.add(a("2001:db9::1"));
        let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(h.in_prefix(&p).count(), 1);
    }

    #[test]
    fn slash56_counting() {
        let mut h = Ipv6Hitlist::new();
        h.add(a("2001:db8::1"));
        h.add(a("2001:db8::2")); // same /56
        h.add(a("2001:db8:0:100::1")); // different /56
        assert_eq!(h.slash56_count(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut h = Ipv6Hitlist::new();
        h.add(a("2001:db9::1"));
        h.add(a("2001:db8::1"));
        let v: Vec<_> = h.iter().collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn probe_ports_match_paper() {
        let ports = iot_probe_ports();
        let nums: Vec<u16> = ports.iter().map(|p| p.port).collect();
        assert_eq!(nums, vec![443, 8883, 1883, 5671]);
    }
}
