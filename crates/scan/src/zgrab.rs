//! ZGrab2-style application-layer banner grabs.
//!
//! "We add support for these IoT protocols to ZGrab2 and we use it to
//! collect TLS certificates from these IPv6 addresses. We perform this data
//! collection from a server located in Europe." (§3.3)

use crate::ethics::ProbePolicy;
use crate::hitlist::Ipv6Hitlist;
use crate::target::ScanView;
use iotmap_dregex::Regex;
use iotmap_faults::ZgrabFaults;
use iotmap_nettypes::{PortProto, SimDuration, SimRng, SimTime, StudyPeriod, SuffixIndex};
use iotmap_tls::{handshake, Certificate, ClientHello};
use std::net::{IpAddr, Ipv6Addr};
use std::sync::Arc;

/// One grabbed banner.
#[derive(Debug, Clone, PartialEq)]
pub struct ZgrabRecord {
    pub ip: Ipv6Addr,
    pub port: PortProto,
    pub certificate: Arc<Certificate>,
}

/// The ZGrab2-like scanner: hitlist × port set, one probe per target.
pub struct Zgrab2Scanner {
    pub ports: Vec<PortProto>,
    pub policy: ProbePolicy,
}

impl Zgrab2Scanner {
    /// Scanner for the paper's IoT port set.
    pub fn new(ports: Vec<PortProto>) -> Self {
        Zgrab2Scanner {
            ports,
            policy: ProbePolicy::paper_defaults(),
        }
    }

    /// Probe every hitlist address on every configured port. Targets are
    /// shuffled (randomized load spread, §3.7) but the result is sorted, so
    /// output is deterministic regardless.
    pub fn scan(
        &mut self,
        view: &dyn ScanView,
        hitlist: &Ipv6Hitlist,
        when: SimTime,
        rng: &mut SimRng,
    ) -> Vec<ZgrabRecord> {
        self.scan_with(view, hitlist, when, rng, 0, &ZgrabFaults::NONE)
    }

    /// [`Zgrab2Scanner::scan`] under a fault plan: each target's
    /// handshake may time out (transient — retried with seeded backoff up
    /// to `max_attempts` times, every attempt counted against the probe
    /// budget), and a completed handshake may still return a truncated
    /// banner whose certificate cannot be parsed. All decisions are pure
    /// rolls on the target identity, independent of the shuffle order and
    /// shard layout.
    pub fn scan_with(
        &mut self,
        view: &dyn ScanView,
        hitlist: &Ipv6Hitlist,
        when: SimTime,
        rng: &mut SimRng,
        fault_seed: u64,
        faults: &ZgrabFaults,
    ) -> Vec<ZgrabRecord> {
        let _span = iotmap_obs::span!("scan.zgrab.v6_scan");
        let mut targets: Vec<(Ipv6Addr, PortProto)> = Vec::new();
        for addr in hitlist.iter() {
            if !self.policy.allows(IpAddr::V6(addr)) {
                continue;
            }
            let open = view.ipv6_ports(addr);
            for port in &self.ports {
                if open.contains(port) {
                    targets.push((addr, *port));
                }
            }
        }
        self.policy.randomize_order(rng, &mut targets);

        // The grab itself shards over the (already shuffled) target list;
        // the final sort makes the output independent of both the shuffle
        // and the sharding, so parallel runs stay byte-identical. Probe
        // and fault accounting is summed per shard, applied after the
        // join: (records, probes, timed_out, partial, retried, recovered).
        let (mut records, probes, timed_out, partial, retried, recovered) = iotmap_par::shard_fold(
            &targets,
            |_ctx| (Vec::new(), 0u64, 0u64, 0u64, 0u64, 0u64),
            |acc: &mut (Vec<ZgrabRecord>, u64, u64, u64, u64, u64), _i, (addr, port)| {
                let (records, probes, timed_out, partial, retried, recovered) = acc;
                let target_key =
                    iotmap_faults::key2(iotmap_faults::key_ip(IpAddr::V6(*addr)), port.port as u64);
                let outcome = iotmap_faults::retry(
                    fault_seed,
                    "zgrab.timeout",
                    target_key,
                    faults.timeout_rate,
                    faults.max_attempts,
                );
                *probes += outcome.attempts as u64;
                if outcome.attempts > 1 {
                    *retried += 1;
                    if outcome.succeeded {
                        *recovered += 1;
                    }
                }
                if !outcome.succeeded {
                    *timed_out += 1;
                    return;
                }
                let Some(endpoint) = view.tls_endpoint(IpAddr::V6(*addr), *port) else {
                    return;
                };
                let outcome = handshake(&endpoint, &ClientHello::anonymous(), when);
                if let Some(cert) = outcome.observed_certificate_shared() {
                    if iotmap_faults::drops(
                        fault_seed,
                        "zgrab.partial_banner",
                        target_key,
                        faults.partial_banner_rate,
                    ) {
                        *partial += 1;
                        return;
                    }
                    records.push(ZgrabRecord {
                        ip: *addr,
                        port: *port,
                        certificate: cert.clone(),
                    });
                }
            },
            |a, b| {
                a.0.extend(b.0);
                a.1 += b.1;
                a.2 += b.2;
                a.3 += b.3;
                a.4 += b.4;
                a.5 += b.5;
            },
        );
        self.policy.record_probes(probes);
        records.sort_by_key(|r| (r.ip, r.port.port));
        iotmap_obs::count!("scan.zgrab.certs_parsed", records.len() as u64);
        if faults.is_active() {
            iotmap_obs::count!("faults.zgrab.targets_timed_out", timed_out);
            iotmap_obs::count!("faults.zgrab.banners_partial", partial);
            iotmap_obs::count!("faults.zgrab.records_dropped", timed_out + partial);
            iotmap_obs::count!("faults.zgrab.records_retried", retried);
            iotmap_obs::count!("faults.zgrab.records_recovered", recovered);
        }
        records
    }
}

/// Filter grabbed records by a domain-pattern regex and validity window.
pub fn filter_records<'a>(
    records: &'a [ZgrabRecord],
    pattern: &'a Regex,
    validity_window: StudyPeriod,
) -> impl Iterator<Item = &'a ZgrabRecord> {
    records.iter().filter(move |r| {
        r.certificate.valid_during(&validity_window)
            && r.certificate.all_names().any(|n| pattern.is_match(&n))
    })
}

/// Build a reversed-label [`SuffixIndex`] over grabbed certificate names:
/// one posting per `(record, SAN)` keyed by the record's slice position.
/// Records failing the validity window are skipped, mirroring
/// [`filter_records`]'s first clause, so the single-pass matcher only has
/// to verify the pattern clause on index hits.
pub fn san_suffix_index(records: &[ZgrabRecord], validity_window: StudyPeriod) -> SuffixIndex {
    let mut index = SuffixIndex::new();
    let mut buf = String::new();
    for (row, record) in records.iter().enumerate() {
        if !record.certificate.valid_during(&validity_window) {
            continue;
        }
        record
            .certificate
            .for_each_name(&mut buf, |name| index.insert(name, row as u32));
    }
    index
}

/// The simulated duration of a scan honouring single-probe pacing: one
/// probe per destination, spread over the day.
pub fn scan_duration(targets: usize) -> SimDuration {
    // One packet per destination at a conservative 100 pps.
    SimDuration::seconds((targets as u64).div_ceil(100))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitlist::iot_probe_ports;
    use crate::target::fixtures::{cert, FakeInternet};
    use iotmap_nettypes::ports::well_known as wk;
    use iotmap_nettypes::Date;
    use iotmap_tls::TlsEndpoint;

    fn when() -> SimTime {
        Date::new(2022, 2, 28).midnight() + SimDuration::hours(3)
    }

    #[test]
    fn scans_only_hitlist_members() {
        let mut net = FakeInternet::new();
        net.add_v6(
            "2001:db8::1",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["*.iot-v6.example.com"])),
        );
        net.add_v6(
            "2001:db8::2",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["*.iot-v6.example.com"])),
        );
        let mut hitlist = Ipv6Hitlist::new();
        hitlist.add("2001:db8::1".parse().unwrap()); // ::2 is missing

        let mut scanner = Zgrab2Scanner::new(iot_probe_ports());
        let mut rng = SimRng::new(1);
        let records = scanner.scan(&net, &hitlist, when(), &mut rng);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].ip, "2001:db8::1".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn respects_port_set() {
        let mut net = FakeInternet::new();
        net.add_v6(
            "2001:db8::1",
            PortProto::tcp(8943), // Huawei HTTPS — not in the v6 probe set
            TlsEndpoint::plain(cert(&["*.iot-v6.example.com"])),
        );
        let mut hitlist = Ipv6Hitlist::new();
        hitlist.add("2001:db8::1".parse().unwrap());
        let mut scanner = Zgrab2Scanner::new(iot_probe_ports());
        let mut rng = SimRng::new(2);
        assert!(scanner.scan(&net, &hitlist, when(), &mut rng).is_empty());
    }

    #[test]
    fn probe_accounting_one_per_target() {
        let mut net = FakeInternet::new();
        net.add_v6(
            "2001:db8::1",
            wk::HTTPS,
            TlsEndpoint::plain(cert(&["a.example.com"])),
        );
        net.add_v6(
            "2001:db8::1",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["a.example.com"])),
        );
        let mut hitlist = Ipv6Hitlist::new();
        hitlist.add("2001:db8::1".parse().unwrap());
        let mut scanner = Zgrab2Scanner::new(iot_probe_ports());
        let mut rng = SimRng::new(3);
        let records = scanner.scan(&net, &hitlist, when(), &mut rng);
        assert_eq!(records.len(), 2);
        assert_eq!(scanner.policy.probes_sent(), 2); // one per (addr, port)
    }

    #[test]
    fn filter_by_pattern_and_validity() {
        let mut net = FakeInternet::new();
        net.add_v6(
            "2001:db8::5",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["*.iot.tencentdevices.com"])),
        );
        net.add_v6(
            "2001:db8::6",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["www.unrelated.example"])),
        );
        let mut hitlist = Ipv6Hitlist::new();
        hitlist.add("2001:db8::5".parse().unwrap());
        hitlist.add("2001:db8::6".parse().unwrap());
        let mut scanner = Zgrab2Scanner::new(iot_probe_ports());
        let mut rng = SimRng::new(4);
        let records = scanner.scan(&net, &hitlist, when(), &mut rng);
        let re = Regex::new(r"tencentdevices\.com$").unwrap();
        let hits: Vec<_> = filter_records(&records, &re, StudyPeriod::main_week()).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].ip, "2001:db8::5".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn suffix_index_agrees_with_filter_records() {
        let mut net = FakeInternet::new();
        net.add_v6(
            "2001:db8::5",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["*.iot.tencentdevices.com"])),
        );
        net.add_v6(
            "2001:db8::6",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["www.unrelated.example"])),
        );
        let mut hitlist = Ipv6Hitlist::new();
        hitlist.add("2001:db8::5".parse().unwrap());
        hitlist.add("2001:db8::6".parse().unwrap());
        let mut scanner = Zgrab2Scanner::new(iot_probe_ports());
        let mut rng = SimRng::new(7);
        let records = scanner.scan(&net, &hitlist, when(), &mut rng);

        let index = san_suffix_index(&records, StudyPeriod::main_week());
        let q = iotmap_nettypes::SuffixQuery::parse("tencentdevices.com").unwrap();
        let re = Regex::new(r"tencentdevices\.com$").unwrap();
        let via_filter: Vec<usize> = records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.certificate.valid_during(&StudyPeriod::main_week())
                    && r.certificate.all_names().any(|n| re.is_match(&n))
            })
            .map(|(i, _)| i)
            .collect();
        let via_index: Vec<usize> = index.lookup(&q).into_iter().map(|i| i as usize).collect();
        assert_eq!(via_index, via_filter);
        assert!(!via_index.is_empty());
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let mut net = FakeInternet::new();
        for host in ["2001:db8::9", "2001:db8::3", "2001:db8::7"] {
            net.add_v6(
                host,
                wk::HTTPS,
                TlsEndpoint::plain(cert(&["x.example.com"])),
            );
        }
        let mut hitlist = Ipv6Hitlist::new();
        for host in ["2001:db8::9", "2001:db8::3", "2001:db8::7"] {
            hitlist.add(host.parse().unwrap());
        }
        let run = |seed| {
            let mut scanner = Zgrab2Scanner::new(iot_probe_ports());
            let mut rng = SimRng::new(seed);
            scanner
                .scan(&net, &hitlist, when(), &mut rng)
                .iter()
                .map(|r| r.ip)
                .collect::<Vec<_>>()
        };
        let a = run(1);
        let b = run(999); // different shuffle seed, same sorted output
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn scan_duration_paces_probes() {
        assert_eq!(scan_duration(0).as_secs(), 0);
        assert_eq!(scan_duration(100).as_secs(), 1);
        assert_eq!(scan_duration(101).as_secs(), 2);
    }
}
