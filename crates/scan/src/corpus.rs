//! Out-of-core scaled scan corpora.
//!
//! The 100×-scale harness needs certificate corpora far larger than the
//! materialized world's snapshots — too large to keep resident. A
//! [`ScaledCorpus`] replicates a base snapshot's records `scale` times
//! into an [`iotmap_super::Spool`] (length-prefixed, checksummed
//! batches), keeping only the **unique certificate pool** in memory:
//! every spooled record is `(ip, cert id)`, a handle into that pool.
//! Reading is strictly sequential through a reusable batch buffer, so
//! peak RSS is one batch of decoded records plus the cert pool —
//! independent of `scale`.
//!
//! The shape mirrors the discovery hot path's cert-identity interning
//! (`iotmap_core::certid`): scan data shares certificates massively, so
//! a corpus is "many cheap rows pointing at few expensive certs", and
//! scaling multiplies rows, never certs.

use crate::censys::CensysSnapshot;
use iotmap_super::{ByteReader, ByteWriter, Spool, SpoolReader, SpoolWriter};
use iotmap_tls::Certificate;
use std::collections::HashMap;
use std::net::IpAddr;
use std::path::Path;
use std::sync::Arc;

/// One decoded corpus row: an observation of a pooled certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusRecord {
    pub ip: IpAddr,
    /// Index into [`ScaledCorpus::certs`].
    pub cert: u32,
}

/// A spooled, replicated scan corpus with an in-memory cert pool.
#[derive(Debug)]
pub struct ScaledCorpus {
    spool: Spool,
    certs: Vec<Arc<Certificate>>,
    records: u64,
}

impl ScaledCorpus {
    /// Spool `scale` replicas of `base`'s records to `path`, in
    /// `batch_rows`-row batches. Record order is replica-major and
    /// snapshot-ordered within each replica, so streaming consumers see
    /// a deterministic sequence.
    pub fn replicate(
        base: &CensysSnapshot,
        scale: u64,
        path: &Path,
        batch_rows: usize,
    ) -> Result<ScaledCorpus, String> {
        assert!(scale >= 1, "at least one replica");
        assert!(batch_rows >= 1, "batches must hold rows");
        let _span = iotmap_obs::span!("scan.corpus.replicate");
        // Dedupe the base snapshot's certs by pointer identity.
        let mut ids: HashMap<*const Certificate, u32> = HashMap::new();
        let mut certs: Vec<Arc<Certificate>> = Vec::new();
        let base_rows: Vec<(IpAddr, u32)> = base
            .records
            .iter()
            .map(|r| {
                let next = certs.len() as u32;
                let id = *ids.entry(Arc::as_ptr(&r.certificate)).or_insert_with(|| {
                    certs.push(Arc::clone(&r.certificate));
                    next
                });
                (r.ip, id)
            })
            .collect();

        let mut writer = SpoolWriter::create(path)
            .map_err(|e| format!("corpus {}: create failed: {e}", path.display()))?;
        let mut records = 0u64;
        let mut enc = ByteWriter::new();
        let mut pending = 0usize;
        for _rep in 0..scale {
            for &(ip, cert) in &base_rows {
                enc.put_ip(ip);
                enc.put_u32(cert);
                pending += 1;
                records += 1;
                if pending == batch_rows {
                    writer
                        .append(&std::mem::take(&mut enc).into_bytes())
                        .map_err(|e| format!("corpus {}: write failed: {e}", path.display()))?;
                    pending = 0;
                }
            }
        }
        if pending > 0 {
            writer
                .append(&enc.into_bytes())
                .map_err(|e| format!("corpus {}: write failed: {e}", path.display()))?;
        }
        let spool = writer
            .finish()
            .map_err(|e| format!("corpus {}: finish failed: {e}", path.display()))?;
        iotmap_obs::count!("scan.corpus.records_spooled", records);
        iotmap_obs::count!("scan.corpus.bytes_spooled", spool.bytes());
        Ok(ScaledCorpus {
            spool,
            certs,
            records,
        })
    }

    /// Total spooled records (`scale × base records`).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Spooled batches.
    pub fn batches(&self) -> u64 {
        self.spool.batches()
    }

    /// On-disk size in bytes.
    pub fn spool_bytes(&self) -> u64 {
        self.spool.bytes()
    }

    /// The shared certificate pool, in first-observation order.
    pub fn certs(&self) -> &[Arc<Certificate>] {
        &self.certs
    }

    /// Open a sequential streaming reader.
    pub fn stream(&self) -> Result<CorpusReader, String> {
        Ok(CorpusReader {
            reader: self.spool.reader()?,
            buf: Vec::new(),
            batch: Vec::new(),
        })
    }

    /// Delete the backing spool file (the corpus is derived state).
    pub fn remove(&self) {
        self.spool.remove();
    }
}

/// Sequential batch reader over a [`ScaledCorpus`]; both the raw and
/// decoded buffers are reused across batches.
#[derive(Debug)]
pub struct CorpusReader {
    reader: SpoolReader,
    buf: Vec<u8>,
    batch: Vec<CorpusRecord>,
}

impl CorpusReader {
    /// Decode the next batch, replacing the previous one. Returns `None`
    /// once the corpus is exhausted.
    pub fn next_batch(&mut self) -> Result<Option<&[CorpusRecord]>, String> {
        if !self.reader.next_batch(&mut self.buf)? {
            return Ok(None);
        }
        self.batch.clear();
        let mut dec = ByteReader::new(&self.buf);
        while !dec.is_empty() {
            let ip = dec.get_ip()?;
            let cert = dec.get_u32()?;
            self.batch.push(CorpusRecord { ip, cert });
        }
        Ok(Some(&self.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::censys::CensysRecord;
    use iotmap_nettypes::{Date, PortProto, StudyPeriod};
    use iotmap_tls::SanName;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("iotmap-corpus-test-{}-{name}", std::process::id()));
        p
    }

    fn snapshot() -> CensysSnapshot {
        let shared = Arc::new(Certificate::new(
            "gw.example.com",
            vec![SanName::parse("gw.example.com").unwrap()],
            StudyPeriod::main_week(),
        ));
        let lone = Arc::new(Certificate::new(
            "solo.example.com",
            vec![SanName::parse("solo.example.com").unwrap()],
            StudyPeriod::main_week(),
        ));
        let record = |i: u8, cert: &Arc<Certificate>| CensysRecord {
            ip: format!("192.0.2.{i}").parse().unwrap(),
            port: PortProto::tcp(8883),
            certificate: Arc::clone(cert),
            location: None,
        };
        CensysSnapshot {
            date: Date::new(2022, 3, 1),
            records: vec![
                record(1, &shared),
                record(2, &shared),
                record(3, &lone),
                record(4, &shared),
            ],
            host_ports: Vec::new(),
        }
    }

    #[test]
    fn replicates_and_streams_in_order() {
        let path = temp_path("stream");
        let base = snapshot();
        let corpus = ScaledCorpus::replicate(&base, 5, &path, 3).unwrap();
        assert_eq!(corpus.records(), 20);
        assert_eq!(corpus.certs().len(), 2, "two unique certs pooled");
        assert_eq!(corpus.batches(), 7, "ceil(20 / 3)");

        let mut reader = corpus.stream().unwrap();
        let mut seen: Vec<CorpusRecord> = Vec::new();
        while let Some(batch) = reader.next_batch().unwrap() {
            assert!(batch.len() <= 3);
            seen.extend_from_slice(batch);
        }
        assert_eq!(seen.len(), 20);
        // Replica-major, snapshot order within each replica.
        for rep in 0..5 {
            for (i, r) in base.records.iter().enumerate() {
                assert_eq!(seen[rep * 4 + i].ip, r.ip);
            }
        }
        // Cert ids are first-observation order: shared=0, solo=2nd.
        assert_eq!(seen[0].cert, 0);
        assert_eq!(seen[1].cert, 0);
        assert_eq!(seen[2].cert, 1);
        assert_eq!(
            corpus.certs()[0].subject,
            "gw.example.com",
            "pool order is first observation"
        );
        corpus.remove();
    }

    #[test]
    fn streaming_twice_yields_the_same_sequence() {
        let path = temp_path("twice");
        let corpus = ScaledCorpus::replicate(&snapshot(), 2, &path, 5).unwrap();
        let collect = || {
            let mut reader = corpus.stream().unwrap();
            let mut all = Vec::new();
            while let Some(batch) = reader.next_batch().unwrap() {
                all.extend_from_slice(batch);
            }
            all
        };
        assert_eq!(collect(), collect());
        corpus.remove();
    }
}
