//! The Censys-like daily snapshot service.
//!
//! Censys sweeps the IPv4 space, performs protocol handshakes on open
//! ports, stores the harvested certificates with geolocation metadata, and
//! publishes daily snapshots. The paper searches those snapshots for
//! certificate names matching the IoT domain patterns and keeps only
//! certificates valid during the study period (§3.3).

use crate::target::ScanView;
use iotmap_dregex::query::CensysNameQuery;
use iotmap_dregex::Regex;
use iotmap_faults::CensysFaults;
use iotmap_nettypes::{Date, Location, PortProto, SimDuration, StudyPeriod, SuffixIndex};
use iotmap_tls::{handshake, Certificate, ClientHello};
use std::net::IpAddr;
use std::sync::Arc;

/// One harvested certificate observation.
#[derive(Debug, Clone, PartialEq)]
pub struct CensysRecord {
    pub ip: IpAddr,
    pub port: PortProto,
    pub certificate: Arc<Certificate>,
    /// Censys's geolocation of the host (its own database — may disagree
    /// with other sources).
    pub location: Option<Location>,
}

/// One day's published scan results.
#[derive(Debug, Clone, PartialEq)]
pub struct CensysSnapshot {
    pub date: Date,
    pub records: Vec<CensysRecord>,
    /// Raw port-scan results: every responsive host and its open ports,
    /// whether or not a TLS handshake succeeded there. (Censys publishes
    /// this banner-level view alongside certificates; §4.4's observed-port
    /// analysis needs it because plaintext MQTT and custom TCP services
    /// never yield a certificate.)
    pub host_ports: Vec<(std::net::Ipv4Addr, Vec<PortProto>)>,
}

impl CensysSnapshot {
    /// String search over certificate names (the paper's
    /// `*.iot.us-east-2.amazonaws.com`-style queries), restricted to
    /// certificates valid throughout `validity_window`.
    pub fn search_names<'a>(
        &'a self,
        query: &'a CensysNameQuery,
        validity_window: StudyPeriod,
    ) -> impl Iterator<Item = &'a CensysRecord> {
        self.records.iter().filter(move |r| {
            r.certificate.valid_during(&validity_window)
                && r.certificate.all_names().any(|n| query.matches_name(&n))
        })
    }

    /// Regex search over certificate names, same validity rule.
    pub fn search_regex<'a>(
        &'a self,
        regex: &'a Regex,
        validity_window: StudyPeriod,
    ) -> impl Iterator<Item = &'a CensysRecord> {
        self.records.iter().filter(move |r| {
            r.certificate.valid_during(&validity_window)
                && r.certificate.all_names().any(|n| regex.is_match(&n))
        })
    }

    /// All records for one IP.
    pub fn records_for_ip(&self, ip: IpAddr) -> impl Iterator<Item = &CensysRecord> {
        self.records.iter().filter(move |r| r.ip == ip)
    }
}

/// Build a reversed-label [`SuffixIndex`] over certificate names: one
/// posting per `(record, SAN)` keyed by the record's position in the
/// iteration order. Records whose certificate is not valid throughout
/// `validity_window` are skipped entirely, so every posting already
/// satisfies the §3.3 validity rule and index hits only need per-pattern
/// verification. This is the prefilter behind the single-pass matcher: the
/// provider patterns' literal suffixes become index lookups instead of
/// per-provider scans over every record.
pub fn san_suffix_index<'a>(
    records: impl IntoIterator<Item = &'a CensysRecord>,
    validity_window: StudyPeriod,
) -> SuffixIndex {
    let mut index = SuffixIndex::new();
    let mut buf = String::new();
    for (row, record) in records.into_iter().enumerate() {
        if !record.certificate.valid_during(&validity_window) {
            continue;
        }
        record
            .certificate
            .for_each_name(&mut buf, |name| index.insert(name, row as u32));
    }
    index
}

/// The scanning service itself.
pub struct CensysService {
    /// TCP ports handshaked during the sweep. Censys scans a broad port
    /// set; this list covers the study's relevant ports.
    pub ports: Vec<PortProto>,
}

impl Default for CensysService {
    fn default() -> Self {
        use iotmap_nettypes::ports::well_known as wk;
        CensysService {
            ports: vec![
                wk::HTTPS,
                wk::HTTPS_ALT,
                wk::HTTPS_HUAWEI,
                wk::MQTT,
                wk::MQTT_ALT,
                wk::MQTT_TLS,
                wk::AMQP_TLS,
                wk::ACTIVEMQ,
                wk::OPC_UA,
                wk::KINETIC_A,
                wk::KINETIC_B,
            ],
        }
    }
}

impl CensysService {
    /// Service with the default port set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run one daily sweep over the scanner's view of the Internet.
    ///
    /// For every `(host, open port)` pair in our port set, attempt an
    /// anonymous TLS handshake (no SNI, no client certificate — a scanner
    /// does not know the right name). Record whatever certificate the
    /// server volunteers.
    pub fn daily_sweep(&self, view: &dyn ScanView, date: Date) -> CensysSnapshot {
        self.daily_sweep_with(view, date, 0, &CensysFaults::NONE)
    }

    /// [`CensysService::daily_sweep`] under a fault plan: a sweep-gap
    /// roll per `(host, day)` may skip a responsive host entirely
    /// (omitted from both the certificate records and the banner-level
    /// host/port view, like a ZMap probe lost on the wire), and a
    /// truncation roll per `(host, port, day)` may lose an individual
    /// harvested certificate to daily-snapshot truncation. Fault
    /// decisions are pure rolls keyed on the target identity, so the
    /// snapshot stays byte-identical at any thread count, and an
    /// inactive plan takes no rolls at all.
    pub fn daily_sweep_with(
        &self,
        view: &dyn ScanView,
        date: Date,
        fault_seed: u64,
        faults: &CensysFaults,
    ) -> CensysSnapshot {
        let _span = iotmap_obs::span!("scan.censys.daily_sweep");
        // Handshakes happen over the course of the day; noon is
        // representative for validity checks.
        let when = date.midnight() + SimDuration::hours(12);
        let day = date.epoch_days() as u64;
        // ZMap-style sharded sweep: the host list is split into contiguous
        // shards probed by worker threads, and the shard outputs are
        // concatenated in shard order, so the snapshot is byte-identical
        // to a serial sweep at any thread count (handshake outcomes and
        // geolocation depend only on the target, never on the shard).
        let hosts = view.ipv4_hosts();
        let (records, host_ports, gapped, truncated) = iotmap_par::shard_fold(
            &hosts,
            |_ctx| (Vec::new(), Vec::new(), 0u64, 0u64),
            |(records, host_ports, gapped, truncated): &mut (
                Vec<CensysRecord>,
                Vec<_>,
                u64,
                u64,
            ),
             _i,
             (addr, open_ports)| {
                let ip = IpAddr::V4(*addr);
                let host_key = iotmap_faults::key2(iotmap_faults::key_ip(ip), day);
                if iotmap_faults::drops(
                    fault_seed,
                    "censys.sweep_gap",
                    host_key,
                    faults.sweep_gap_rate,
                ) {
                    *gapped += 1;
                    return;
                }
                for port in open_ports {
                    if !self.ports.contains(port) {
                        continue;
                    }
                    let Some(endpoint) = view.tls_endpoint(ip, *port) else {
                        continue;
                    };
                    let outcome = handshake(&endpoint, &ClientHello::anonymous(), when);
                    if let Some(cert) = outcome.observed_certificate_shared() {
                        if iotmap_faults::drops(
                            fault_seed,
                            "censys.truncation",
                            iotmap_faults::key2(host_key, port.port as u64),
                            faults.truncation_rate,
                        ) {
                            *truncated += 1;
                            continue;
                        }
                        records.push(CensysRecord {
                            ip,
                            port: *port,
                            certificate: cert.clone(),
                            location: view.geolocate(ip),
                        });
                    }
                }
                host_ports.push((*addr, open_ports.clone()));
            },
            |a, b| {
                a.0.extend(b.0);
                a.1.extend(b.1);
                a.2 += b.2;
                a.3 += b.3;
            },
        );
        iotmap_obs::count!("scan.censys.certs_parsed", records.len() as u64);
        if faults.is_active() {
            iotmap_obs::count!("faults.censys.hosts_gapped", gapped);
            iotmap_obs::count!("faults.censys.records_truncated", truncated);
            iotmap_obs::count!("faults.censys.records_dropped", gapped + truncated);
        }
        CensysSnapshot {
            date,
            records,
            host_ports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::fixtures::{cert, FakeInternet};
    use iotmap_nettypes::ports::well_known as wk;
    use iotmap_tls::TlsEndpoint;

    fn study_week() -> StudyPeriod {
        StudyPeriod::main_week()
    }

    #[test]
    fn sweep_harvests_default_certificates() {
        let mut net = FakeInternet::new();
        net.add_v4(
            "198.51.100.1",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["*.azure-devices.net"])),
        );
        let snap = CensysService::new().daily_sweep(&net, Date::new(2022, 2, 28));
        assert_eq!(snap.records.len(), 1);
        let q = CensysNameQuery::new("*.azure-devices.net").unwrap();
        assert_eq!(snap.search_names(&q, study_week()).count(), 1);
    }

    #[test]
    fn sni_gated_hosts_yield_only_fallback_cert() {
        let mut net = FakeInternet::new();
        net.add_v4(
            "198.51.100.2",
            wk::HTTPS,
            TlsEndpoint::sni_gated(cert(&["mqtt.googleapis.com"]), cert(&["*.google.com"])),
        );
        let snap = CensysService::new().daily_sweep(&net, Date::new(2022, 2, 28));
        // A certificate was recorded — but it is the generic one.
        assert_eq!(snap.records.len(), 1);
        let q = CensysNameQuery::new("mqtt.googleapis.com").unwrap();
        assert_eq!(snap.search_names(&q, study_week()).count(), 0);
    }

    #[test]
    fn mutual_tls_hosts_yield_nothing() {
        let mut net = FakeInternet::new();
        net.add_v4(
            "198.51.100.3",
            wk::MQTT_TLS,
            TlsEndpoint::mutual_tls(cert(&["*.iot.us-east-1.amazonaws.com"])),
        );
        let snap = CensysService::new().daily_sweep(&net, Date::new(2022, 2, 28));
        assert!(snap.records.is_empty());
    }

    #[test]
    fn expired_certificates_filtered_by_search() {
        let mut net = FakeInternet::new();
        let mut c = cert(&["*.iot.sap"]);
        c.not_after = Date::new(2022, 3, 2).midnight(); // expires mid-study
        net.add_v4("198.51.100.4", wk::HTTPS, TlsEndpoint::plain(c));
        let snap = CensysService::new().daily_sweep(&net, Date::new(2022, 2, 28));
        assert_eq!(snap.records.len(), 1); // harvested on the 28th…
        let q = CensysNameQuery::new("*.iot.sap").unwrap();
        // …but not *valid during the study period*, so the search drops it.
        assert_eq!(snap.search_names(&q, study_week()).count(), 0);
    }

    #[test]
    fn regex_search_over_sans() {
        let mut net = FakeInternet::new();
        net.add_v4(
            "198.51.100.5",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["*.iot.eu-west-1.amazonaws.com"])),
        );
        let snap = CensysService::new().daily_sweep(&net, Date::new(2022, 2, 28));
        let re = Regex::new(r"\.iot\.[a-z0-9-]+\.amazonaws\.com$").unwrap();
        assert_eq!(snap.search_regex(&re, study_week()).count(), 1);
    }

    #[test]
    fn ports_outside_the_set_not_handshaked() {
        let mut net = FakeInternet::new();
        net.add_v4(
            "198.51.100.6",
            PortProto::tcp(2222),
            TlsEndpoint::plain(cert(&["*.iot.sap"])),
        );
        let snap = CensysService::new().daily_sweep(&net, Date::new(2022, 2, 28));
        assert!(snap.records.is_empty());
    }

    #[test]
    fn host_ports_include_plaintext_services() {
        let mut net = FakeInternet::new();
        net.add_v4(
            "198.51.100.8",
            PortProto::tcp(1883), // plaintext MQTT — no certificate possible
            TlsEndpoint::plain(cert(&["x.example.com"])),
        );
        let snap = CensysService::new().daily_sweep(&net, Date::new(2022, 2, 28));
        let (_, ports) = snap
            .host_ports
            .iter()
            .find(|(a, _)| *a == "198.51.100.8".parse::<std::net::Ipv4Addr>().unwrap())
            .expect("host recorded");
        assert!(ports.contains(&PortProto::tcp(1883)));
    }

    #[test]
    fn san_suffix_index_covers_valid_records_only() {
        let mut net = FakeInternet::new();
        net.add_v4(
            "198.51.100.10",
            wk::MQTT_TLS,
            TlsEndpoint::plain(cert(&["*.azure-devices.net", "mgmt.example.com"])),
        );
        let mut expired = cert(&["*.iot.eu-west-1.amazonaws.com"]);
        expired.not_after = Date::new(2022, 3, 2).midnight();
        net.add_v4("198.51.100.11", wk::HTTPS, TlsEndpoint::plain(expired));
        let snap = CensysService::new().daily_sweep(&net, Date::new(2022, 2, 28));
        assert_eq!(snap.records.len(), 2);

        let index = san_suffix_index(&snap.records, study_week());
        let q = iotmap_nettypes::SuffixQuery::parse(".azure-devices.net").unwrap();
        let azure_row = snap
            .records
            .iter()
            .position(|r| {
                r.certificate
                    .covers(&"h.azure-devices.net".parse().unwrap())
            })
            .unwrap() as u32;
        assert_eq!(index.lookup(&q), vec![azure_row]);
        // The expired amazon certificate never made it into the index.
        let amazon = iotmap_nettypes::SuffixQuery::parse(".amazonaws.com").unwrap();
        assert!(index.lookup(&amazon).is_empty());
    }

    #[test]
    fn geolocation_metadata_included() {
        let mut net = FakeInternet::new();
        net.add_v4(
            "198.51.100.7",
            wk::HTTPS,
            TlsEndpoint::plain(cert(&["*.iot.sap"])),
        );
        let snap = CensysService::new().daily_sweep(&net, Date::new(2022, 2, 28));
        assert_eq!(snap.records[0].location.as_ref().unwrap().city, "Frankfurt");
    }
}
