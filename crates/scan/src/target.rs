//! The scanner's view of the Internet.
//!
//! Scanners cannot see ground truth; they can only (a) enumerate responsive
//! hosts, (b) attempt handshakes, and (c) consult their own (imperfect)
//! geolocation database. [`ScanView`] is that interface; the synthetic
//! world implements it, and a future adapter over real scan data could too.

use iotmap_nettypes::{Location, PortProto};
use iotmap_tls::TlsEndpoint;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// What scanning instruments can observe about the network.
///
/// `Sync` because the parallel sweep shards (`iotmap-par`) probe one
/// shared view from several worker threads; implementations answer
/// through `&self` over plain data, so this costs them nothing.
pub trait ScanView: Sync {
    /// All responsive IPv4 hosts and the TCP/UDP ports each listens on.
    /// (A real zmap sweep discovers exactly this, one SYN at a time.)
    fn ipv4_hosts(&self) -> Vec<(Ipv4Addr, Vec<PortProto>)>;

    /// Open ports of a specific IPv6 host, if it is responsive at all.
    /// IPv6 cannot be swept; callers must bring a hitlist.
    fn ipv6_ports(&self, addr: Ipv6Addr) -> Vec<PortProto>;

    /// The TLS endpoint behind `(addr, port)`, if that port speaks TLS.
    fn tls_endpoint(&self, addr: IpAddr, port: PortProto) -> Option<TlsEndpoint>;

    /// The scanner's geolocation database entry for an address. Commercial
    /// geo databases are imperfect; implementations should reflect that
    /// (the paper reconciles disagreeing sources by majority vote, §4.2).
    fn geolocate(&self, addr: IpAddr) -> Option<Location>;
}

#[cfg(test)]
pub(crate) mod fixtures {
    //! A tiny hand-built `ScanView` shared by the scanner tests.

    use super::*;
    use iotmap_nettypes::{Continent, Date, StudyPeriod};
    use iotmap_tls::{Certificate, SanName};
    use std::collections::HashMap;

    pub struct FakeInternet {
        pub v4: Vec<(Ipv4Addr, Vec<PortProto>)>,
        pub v6: HashMap<Ipv6Addr, Vec<PortProto>>,
        pub endpoints: HashMap<(IpAddr, PortProto), TlsEndpoint>,
        pub locations: HashMap<IpAddr, Location>,
    }

    pub fn cert(names: &[&str]) -> Certificate {
        Certificate::new(
            names[0],
            names.iter().map(|n| SanName::parse(n).unwrap()).collect(),
            StudyPeriod::from_dates(Date::new(2022, 1, 1), Date::new(2023, 1, 1)),
        )
    }

    impl FakeInternet {
        pub fn new() -> Self {
            FakeInternet {
                v4: Vec::new(),
                v6: HashMap::new(),
                endpoints: HashMap::new(),
                locations: HashMap::new(),
            }
        }

        /// Add an IPv4 host serving `cert_names` on `port`.
        pub fn add_v4(&mut self, addr: &str, port: PortProto, endpoint: TlsEndpoint) {
            let a: Ipv4Addr = addr.parse().unwrap();
            self.v4.push((a, vec![port]));
            self.endpoints.insert((IpAddr::V4(a), port), endpoint);
            self.locations.insert(
                IpAddr::V4(a),
                Location::new("Frankfurt", "DE", Continent::Europe, 50.1, 8.68),
            );
        }

        /// Add an IPv6 host.
        pub fn add_v6(&mut self, addr: &str, port: PortProto, endpoint: TlsEndpoint) {
            let a: Ipv6Addr = addr.parse().unwrap();
            self.v6.entry(a).or_default().push(port);
            self.endpoints.insert((IpAddr::V6(a), port), endpoint);
        }
    }

    impl ScanView for FakeInternet {
        fn ipv4_hosts(&self) -> Vec<(Ipv4Addr, Vec<PortProto>)> {
            self.v4.clone()
        }

        fn ipv6_ports(&self, addr: Ipv6Addr) -> Vec<PortProto> {
            self.v6.get(&addr).cloned().unwrap_or_default()
        }

        fn tls_endpoint(&self, addr: IpAddr, port: PortProto) -> Option<TlsEndpoint> {
            self.endpoints.get(&(addr, port)).cloned()
        }

        fn geolocate(&self, addr: IpAddr) -> Option<Location> {
            self.locations.get(&addr).cloned()
        }
    }
}
