//! Run reports: the span tree + metrics serialised to markdown (for
//! humans) and JSON-lines (for machines; hand-rolled writer, no serde).

use crate::metrics::HistogramSnapshot;
use std::collections::BTreeMap;

/// One node of the closed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The name passed at `span_enter`.
    pub name: String,
    /// Monotonic wall-clock duration (0 if the span never closed).
    pub nanos: u64,
    /// Attribution metadata, in insertion order: shard identity stamped
    /// by the parallel layer's attributed merge, plus anything recorded
    /// through `annotate!` while the span was open.
    pub meta: Vec<(String, u64)>,
    /// Child spans, in entry order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time spent in this span itself, excluding its children —
    /// saturating, since a child recorded on another thread can
    /// (rarely) overlap its parent's clock.
    pub fn self_nanos(&self) -> u64 {
        self.nanos
            .saturating_sub(self.children.iter().map(|c| c.nanos).sum())
    }

    /// Look up one metadata value by key.
    pub fn meta_value(&self, key: &str) -> Option<u64> {
        self.meta.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Everything one instrumented run recorded.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Root spans, in entry order.
    pub spans: Vec<SpanNode>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Human-readable duration, scaled to ns/µs/ms/s.
pub(crate) fn fmt_nanos(nanos: u64) -> String {
    match nanos {
        0..=999 => format!("{nanos}ns"),
        1_000..=999_999 => format!("{:.1}µs", nanos as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", nanos as f64 / 1e6),
        _ => format!("{:.2}s", nanos as f64 / 1e9),
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_u64_array(values: &[u64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", cells.join(","))
}

/// One `(event, provider)` row of the scenario-resilience summary,
/// derived from the `scenario.<event>.<provider>.*` gauges the
/// resilience measurement publishes. Deltas are scenario-minus-baseline
/// in permille; stability is a permille Jaccard similarity (1000 =
/// footprint unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventResilienceRow {
    pub event: String,
    pub provider: String,
    pub precision_delta_pm: i64,
    pub recall_delta_pm: i64,
    pub footprint_stability_pm: i64,
}

/// Per-source completeness under a fault plan, derived from the
/// `faults.<source>.*` counters the instruments emit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceCompleteness {
    /// The source key (`censys`, `zgrab`, `passive_dns`, `active_dns`,
    /// `netflow`).
    pub source: String,
    /// Records lost to persistent faults (`…records_dropped`).
    pub dropped: u64,
    /// Operations that needed at least one retry (`…records_retried`).
    pub retried: u64,
    /// Of those, operations that eventually succeeded
    /// (`…records_recovered`).
    pub recovered: u64,
}

/// One supervised stage's recovery activity, derived from the
/// `super.stage.<stage>.*` counters the supervisor emits.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageRecovery {
    /// The stage name.
    pub stage: String,
    /// Attempts taken (0 when the stage restored from a checkpoint).
    pub attempts: u64,
    /// Attempts that panicked (contained and retried).
    pub panics: u64,
    /// Attempts that completed past their deadline.
    pub deadline_misses: u64,
    /// Total seeded backoff scheduled between attempts.
    pub backoff_ms: u64,
    /// 1 if the stage was restored from a verified checkpoint.
    pub restored: u64,
    /// 1 if the stage was recomputed and verified against a stored
    /// replay witness.
    pub replayed: u64,
}

impl StageRecovery {
    /// Whether anything beyond a clean single attempt happened.
    pub fn noteworthy(&self) -> bool {
        self.attempts > 1
            || self.panics > 0
            || self.deadline_misses > 0
            || self.backoff_ms > 0
            || self.restored > 0
            || self.replayed > 0
    }
}

/// Run-wide recovery activity: supervised stages plus checkpoint and
/// shard-quarantine totals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoverySummary {
    /// Per-stage rows, in stage-name order (only stages the supervisor
    /// touched appear).
    pub stages: Vec<StageRecovery>,
    /// Checkpoints written (`super.checkpoints.written`).
    pub checkpoints_written: u64,
    /// Checkpoints rejected as corrupt (`super.checkpoints.corrupt`).
    pub checkpoints_corrupt: u64,
    /// Checkpoints rejected as belonging to a different run
    /// (`super.checkpoints.mismatched`).
    pub checkpoints_mismatched: u64,
    /// Replay witnesses that failed verification
    /// (`super.checkpoints.witness_mismatch`).
    pub witness_mismatches: u64,
    /// Checkpoint writes that failed (`super.checkpoints.write_failed`).
    pub write_failures: u64,
    /// Worker shards that panicked (`par.shard_panics`).
    pub shard_panics: u64,
    /// Poisoned shards retried serially (`par.shards_quarantined`).
    pub shards_quarantined: u64,
    /// Whether the injected post-stage kill switch fired
    /// (`super.run.killed`).
    pub killed: bool,
}

impl RecoverySummary {
    /// True when the run had nothing to recover from: every stage took
    /// one clean attempt, no checkpoints were touched, no shard
    /// panicked. Trivial summaries render no report section, so
    /// unsupervised (and uneventful supervised) reports look exactly
    /// like before.
    pub fn is_trivial(&self) -> bool {
        self.stages.iter().all(|s| !s.noteworthy())
            && self.checkpoints_written == 0
            && self.checkpoints_corrupt == 0
            && self.checkpoints_mismatched == 0
            && self.witness_mismatches == 0
            && self.write_failures == 0
            && self.shard_panics == 0
            && self.shards_quarantined == 0
            && !self.killed
    }
}

impl RunReport {
    /// The recovery summary, derived from the `super.*` and
    /// `par.shard*` counters the supervisor and the shard executor
    /// emit.
    pub fn recovery(&self) -> RecoverySummary {
        let mut summary = RecoverySummary::default();
        let mut stages: BTreeMap<&str, StageRecovery> = BTreeMap::new();
        for (name, &value) in &self.counters {
            if let Some(rest) = name.strip_prefix("super.stage.") {
                // Stage names never contain dots, so the final segment
                // is the field.
                let Some((stage, field)) = rest.rsplit_once('.') else {
                    continue;
                };
                let row = stages.entry(stage).or_insert_with(|| StageRecovery {
                    stage: stage.to_string(),
                    ..StageRecovery::default()
                });
                match field {
                    "attempts" => row.attempts = value,
                    "panics" => row.panics = value,
                    "deadline_misses" => row.deadline_misses = value,
                    "backoff_ms" => row.backoff_ms = value,
                    "restored" => row.restored = value,
                    "replayed" => row.replayed = value,
                    _ => {}
                }
            } else {
                match name.as_str() {
                    "super.checkpoints.written" => summary.checkpoints_written = value,
                    "super.checkpoints.corrupt" => summary.checkpoints_corrupt = value,
                    "super.checkpoints.mismatched" => summary.checkpoints_mismatched = value,
                    "super.checkpoints.witness_mismatch" => summary.witness_mismatches = value,
                    "super.checkpoints.write_failed" => summary.write_failures = value,
                    "par.shard_panics" => summary.shard_panics = value,
                    "par.shards_quarantined" => summary.shards_quarantined = value,
                    "super.run.killed" => summary.killed = value > 0,
                    _ => {}
                }
            }
        }
        summary.stages = stages.into_values().collect();
        summary
    }

    /// Operator-facing notes: every `notes.<key>` counter, with the
    /// prefix stripped, in key order. Used for configuration surprises
    /// (e.g. an unparsable `IOTMAP_THREADS`) that must reach the report
    /// rather than vanish into a fallback.
    pub fn notes(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter_map(|(name, &value)| {
                name.strip_prefix("notes.")
                    .map(|key| (key.to_string(), value))
            })
            .collect()
    }

    /// The degraded-source summary: one row per source that emitted any
    /// `faults.<source>.records_{dropped,retried,recovered}` counter,
    /// in source-name order. Empty for an unfaulted run — fault-free
    /// reports carry no trace of the fault layer at all.
    pub fn fault_completeness(&self) -> Vec<SourceCompleteness> {
        let mut by_source: BTreeMap<&str, SourceCompleteness> = BTreeMap::new();
        for (name, &value) in &self.counters {
            let Some(rest) = name.strip_prefix("faults.") else {
                continue;
            };
            let Some((source, field)) = rest.split_once('.') else {
                continue;
            };
            let row = by_source
                .entry(source)
                .or_insert_with(|| SourceCompleteness {
                    source: source.to_string(),
                    dropped: 0,
                    retried: 0,
                    recovered: 0,
                });
            match field {
                "records_dropped" => row.dropped = value,
                "records_retried" => row.retried = value,
                "records_recovered" => row.recovered = value,
                _ => {}
            }
        }
        by_source.into_values().collect()
    }

    /// The scenario-resilience summary: one row per `(event, provider)`
    /// pair that published any `scenario.<event>.<provider>.*` gauge, in
    /// `(event, provider)` order. Empty for a scenario-free run —
    /// baseline reports carry no trace of the scenario layer at all.
    pub fn resilience(&self) -> Vec<EventResilienceRow> {
        let mut rows: BTreeMap<(String, String), EventResilienceRow> = BTreeMap::new();
        for (name, &value) in &self.gauges {
            let Some(rest) = name.strip_prefix("scenario.") else {
                continue;
            };
            // Event labels and provider names never contain '.', so the
            // last two dots delimit `<event>.<provider>.<field>`.
            let mut parts = rest.rsplitn(3, '.');
            let (Some(field), Some(provider), Some(event)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let row = rows
                .entry((event.to_string(), provider.to_string()))
                .or_insert_with(|| EventResilienceRow {
                    event: event.to_string(),
                    provider: provider.to_string(),
                    precision_delta_pm: 0,
                    recall_delta_pm: 0,
                    footprint_stability_pm: 1000,
                });
            match field {
                "precision_delta_pm" => row.precision_delta_pm = value,
                "recall_delta_pm" => row.recall_delta_pm = value,
                "footprint_stability_pm" => row.footprint_stability_pm = value,
                _ => {}
            }
        }
        rows.into_values().collect()
    }

    /// Render the span tree alone (the `--trace` output of `exp`) as an
    /// indented text flame summary: duration, share of the parent,
    /// self-time for interior nodes, and any shard attribution.
    pub fn render_span_tree(&self) -> String {
        let mut out = String::new();
        fn walk(node: &SpanNode, depth: usize, parent_nanos: Option<u64>, out: &mut String) {
            let share = match parent_nanos {
                Some(p) if p > 0 => format!(" ({:.0}%)", node.nanos as f64 / p as f64 * 100.0),
                _ => String::new(),
            };
            let self_time = if node.children.is_empty() {
                String::new()
            } else {
                format!(" · self {}", fmt_nanos(node.self_nanos()))
            };
            let meta = if node.meta.is_empty() {
                String::new()
            } else {
                let cells: Vec<String> =
                    node.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!(" [{}]", cells.join(" "))
            };
            out.push_str(&format!(
                "{}{} — {}{}{}{}\n",
                "  ".repeat(depth),
                node.name,
                fmt_nanos(node.nanos),
                share,
                self_time,
                meta
            ));
            for child in &node.children {
                walk(child, depth + 1, Some(node.nanos), out);
            }
        }
        for root in &self.spans {
            walk(root, 0, None, &mut out);
        }
        out
    }

    /// The top `n` spans by self-time, as `(path, self_nanos)` rows in
    /// descending order (ties broken by path for determinism). Every
    /// tree node is one candidate; paths are `/`-joined as in the JSONL
    /// report.
    pub fn top_self_time(&self, n: usize) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = Vec::new();
        fn walk(node: &SpanNode, path: &str, rows: &mut Vec<(String, u64)>) {
            let path = if path.is_empty() {
                node.name.clone()
            } else {
                format!("{path}/{}", node.name)
            };
            rows.push((path.clone(), node.self_nanos()));
            for child in &node.children {
                walk(child, &path, rows);
            }
        }
        for root in &self.spans {
            walk(root, "", &mut rows);
        }
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Export the span tree as Chrome Trace Event Format JSON — loadable
    /// in `chrome://tracing` and Perfetto.
    ///
    /// Spans record durations, not absolute timestamps, so the timeline
    /// is synthesized: each root starts where the previous one ended,
    /// and each child starts at its parent's start plus the preceding
    /// siblings' durations. Events are complete (`"ph":"X"`) with
    /// microsecond `ts`/`dur`; `args` carries the span's self-time and
    /// its attribution metadata.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        fn walk(node: &SpanNode, start_ns: u64, events: &mut Vec<String>) {
            let mut args = format!("\"self_us\":{:.3}", node.self_nanos() as f64 / 1e3);
            for (key, value) in &node.meta {
                args.push_str(&format!(",\"{}\":{value}", json_escape(key)));
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"iotmap\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
                json_escape(&node.name),
                start_ns as f64 / 1e3,
                node.nanos as f64 / 1e3,
            ));
            let mut cursor = start_ns;
            for child in &node.children {
                walk(child, cursor, events);
                cursor = cursor.saturating_add(child.nanos);
            }
        }
        let mut cursor = 0u64;
        for root in &self.spans {
            walk(root, cursor, &mut events);
            cursor = cursor.saturating_add(root.nanos);
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
            events.join(",\n")
        )
    }

    /// The full markdown summary: span tree + metric tables.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Run report\n\n## Span tree\n\n```\n");
        out.push_str(&self.render_span_tree());
        out.push_str("```\n");
        if !self.counters.is_empty() {
            out.push_str("\n## Counters\n\n| counter | value |\n|---|---:|\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("| {name} | {value} |\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\n## Gauges\n\n| gauge | value |\n|---|---:|\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("| {name} | {value} |\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "\n## Histograms\n\n| histogram | count | sum | mean | min | max |\n\
                 |---|---:|---:|---:|---:|---:|\n",
            );
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "| {name} | {} | {} | {:.1} | {} | {} |\n",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        let degraded = self.fault_completeness();
        if !degraded.is_empty() {
            out.push_str(
                "\n## Degraded sources\n\n| source | dropped | retried | recovered |\n\
                 |---|---:|---:|---:|\n",
            );
            for row in &degraded {
                out.push_str(&format!(
                    "| {} | {} | {} | {} |\n",
                    row.source, row.dropped, row.retried, row.recovered
                ));
            }
        }
        let resilience = self.resilience();
        if !resilience.is_empty() {
            out.push_str(
                "\n## Resilience\n\n| event | provider | Δprecision (‰) | Δrecall (‰) | \
                 footprint stability (‰) |\n|---|---|---:|---:|---:|\n",
            );
            for row in &resilience {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} |\n",
                    row.event,
                    row.provider,
                    row.precision_delta_pm,
                    row.recall_delta_pm,
                    row.footprint_stability_pm
                ));
            }
        }
        let recovery = self.recovery();
        if !recovery.is_trivial() {
            out.push_str("\n## Recovery\n");
            let rows: Vec<&StageRecovery> =
                recovery.stages.iter().filter(|s| s.noteworthy()).collect();
            if !rows.is_empty() {
                out.push_str(
                    "\n| stage | attempts | panics | deadline misses | backoff ms | \
                     restored | replayed |\n|---|---:|---:|---:|---:|---:|---:|\n",
                );
                for row in rows {
                    out.push_str(&format!(
                        "| {} | {} | {} | {} | {} | {} | {} |\n",
                        row.stage,
                        row.attempts,
                        row.panics,
                        row.deadline_misses,
                        row.backoff_ms,
                        row.restored,
                        row.replayed
                    ));
                }
            }
            out.push_str(&format!(
                "\n- checkpoints: {} written, {} corrupt, {} mismatched, \
                 {} witness mismatches, {} write failures\n",
                recovery.checkpoints_written,
                recovery.checkpoints_corrupt,
                recovery.checkpoints_mismatched,
                recovery.witness_mismatches,
                recovery.write_failures
            ));
            if recovery.shard_panics > 0 || recovery.shards_quarantined > 0 {
                out.push_str(&format!(
                    "- shards: {} panicked, {} quarantined and retried serially\n",
                    recovery.shard_panics, recovery.shards_quarantined
                ));
            }
            if recovery.killed {
                out.push_str("- run killed by the injected post-stage kill switch\n");
            }
        }
        let notes = self.notes();
        if !notes.is_empty() {
            out.push_str("\n## Notes\n\n");
            for (key, value) in &notes {
                out.push_str(&format!("- {key}: {value}\n"));
            }
        }
        out
    }

    /// The machine-readable report: one JSON object per line.
    ///
    /// Line `type`s: `meta` (format version header), `span` (one per
    /// span-tree node, with its `/`-joined `path`, `depth`,
    /// `self_nanos`, and — when attributed — a `meta` object),
    /// `counter`, `gauge`, `histogram`.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"meta\",\"format\":\"{}\"}}\n",
            crate::JSONL_FORMAT
        );
        fn walk(node: &SpanNode, path: &str, depth: usize, out: &mut String) {
            let path = if path.is_empty() {
                node.name.clone()
            } else {
                format!("{path}/{}", node.name)
            };
            let meta = if node.meta.is_empty() {
                String::new()
            } else {
                let cells: Vec<String> = node
                    .meta
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
                    .collect();
                format!(",\"meta\":{{{}}}", cells.join(","))
            };
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"path\":\"{}\",\"depth\":{},\
                 \"nanos\":{},\"self_nanos\":{}{meta}}}\n",
                json_escape(&node.name),
                json_escape(&path),
                depth,
                node.nanos,
                node.self_nanos()
            ));
            for child in &node.children {
                walk(child, &path, depth + 1, out);
            }
        }
        for root in &self.spans {
            walk(root, "", 0, &mut out);
        }
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}\n",
                json_escape(name)
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}\n",
                json_escape(name)
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\
                 \"max\":{},\"bounds\":{},\"counts\":{}}}\n",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                json_u64_array(&h.bounds),
                json_u64_array(&h.counts)
            ));
        }
        for row in self.fault_completeness() {
            out.push_str(&format!(
                "{{\"type\":\"degraded_source\",\"source\":\"{}\",\"dropped\":{},\
                 \"retried\":{},\"recovered\":{}}}\n",
                json_escape(&row.source),
                row.dropped,
                row.retried,
                row.recovered
            ));
        }
        for row in self.resilience() {
            out.push_str(&format!(
                "{{\"type\":\"scenario_event\",\"event\":\"{}\",\"provider\":\"{}\",\
                 \"precision_delta_pm\":{},\"recall_delta_pm\":{},\
                 \"footprint_stability_pm\":{}}}\n",
                json_escape(&row.event),
                json_escape(&row.provider),
                row.precision_delta_pm,
                row.recall_delta_pm,
                row.footprint_stability_pm
            ));
        }
        let recovery = self.recovery();
        if !recovery.is_trivial() {
            for row in recovery.stages.iter().filter(|s| s.noteworthy()) {
                out.push_str(&format!(
                    "{{\"type\":\"recovery_stage\",\"stage\":\"{}\",\"attempts\":{},\
                     \"panics\":{},\"deadline_misses\":{},\"backoff_ms\":{},\
                     \"restored\":{},\"replayed\":{}}}\n",
                    json_escape(&row.stage),
                    row.attempts,
                    row.panics,
                    row.deadline_misses,
                    row.backoff_ms,
                    row.restored,
                    row.replayed
                ));
            }
            out.push_str(&format!(
                "{{\"type\":\"recovery\",\"checkpoints_written\":{},\
                 \"checkpoints_corrupt\":{},\"checkpoints_mismatched\":{},\
                 \"witness_mismatches\":{},\"write_failures\":{},\
                 \"shard_panics\":{},\"shards_quarantined\":{},\"killed\":{}}}\n",
                recovery.checkpoints_written,
                recovery.checkpoints_corrupt,
                recovery.checkpoints_mismatched,
                recovery.witness_mismatches,
                recovery.write_failures,
                recovery.shard_panics,
                recovery.shards_quarantined,
                recovery.killed
            ));
        }
        for (key, value) in self.notes() {
            out.push_str(&format!(
                "{{\"type\":\"note\",\"key\":\"{}\",\"value\":{value}}}\n",
                json_escape(&key)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use crate::Registry;

    fn sample_report() -> RunReport {
        let r = Registry::new();
        let a = r.span_enter("prepare");
        let b = r.span_enter("discovery");
        r.span_exit(b, 2_000_000);
        r.span_exit(a, 5_000_000);
        r.add("certs \"q\"", 7);
        r.gauge("servers", 42);
        r.register_histogram("bytes", &[10, 100]);
        r.observe("bytes", 55);
        r.report()
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_nanos(15), "15ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.5ms");
        assert_eq!(fmt_nanos(3_210_000_000), "3.21s");
    }

    #[test]
    fn markdown_contains_all_sections() {
        let md = sample_report().to_markdown();
        assert!(md.contains("## Span tree"));
        assert!(md.contains("prepare — 5.0ms"));
        assert!(md.contains("  discovery — 2.0ms (40%)"));
        assert!(md.contains("| certs \"q\" | 7 |"));
        assert!(md.contains("| servers | 42 |"));
        assert!(md.contains("| bytes | 1 | 55 | 55.0 | 55 | 55 |"));
    }

    #[test]
    fn jsonl_lines_are_wellformed() {
        let jsonl = sample_report().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], "{\"type\":\"meta\",\"format\":\"iotmap-obs.v2\"}");
        assert!(lines[1].contains("\"path\":\"prepare\""));
        assert!(lines[1].contains("\"self_nanos\":3000000"));
        assert!(lines[2].contains("\"path\":\"prepare/discovery\""));
        assert!(lines[2].contains("\"depth\":1"));
        assert!(lines[2].contains("\"self_nanos\":2000000"));
        assert!(lines[3].contains("\"name\":\"certs \\\"q\\\"\""));
        assert!(lines[5].contains("\"bounds\":[10,100]"));
        assert!(lines[5].contains("\"counts\":[0,1,0]"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            // Balanced quotes: every line must be standalone-parseable.
            assert_eq!(line.matches('"').count() % 2, 0);
        }
    }

    #[test]
    fn span_tree_renders_self_time_and_attribution() {
        let r = Registry::new();
        let a = r.span_enter("prepare");
        let b = r.span_enter("shard");
        r.annotate("shard", 3);
        r.annotate("items", 120);
        r.span_exit(b, 2_000_000);
        r.span_exit(a, 5_000_000);
        let tree = r.report().render_span_tree();
        assert!(tree.contains("prepare — 5.0ms · self 3.0ms"));
        assert!(tree.contains("  shard — 2.0ms (40%) [shard=3 items=120]"));
        // Leaves carry no redundant self-time suffix.
        assert!(!tree.contains("shard — 2.0ms (40%) · self"));
    }

    #[test]
    fn top_self_time_orders_descending_with_path_tiebreak() {
        let r = Registry::new();
        let a = r.span_enter("prepare");
        let b = r.span_enter("world");
        r.span_exit(b, 3_000_000);
        let c = r.span_enter("scans");
        r.span_exit(c, 3_000_000);
        r.span_exit(a, 10_000_000);
        let rows = r.report().top_self_time(2);
        assert_eq!(
            rows,
            vec![
                ("prepare".to_string(), 4_000_000),
                ("prepare/scans".to_string(), 3_000_000),
            ]
        );
        assert_eq!(r.report().top_self_time(10).len(), 3);
    }

    #[test]
    fn jsonl_span_lines_carry_meta_objects() {
        let r = Registry::new();
        let a = r.span_enter("shard");
        r.annotate("items", 7);
        r.span_exit(a, 1_000);
        let jsonl = r.report().to_jsonl();
        assert!(jsonl.contains("\"meta\":{\"items\":7}"));
    }

    #[test]
    fn chrome_trace_synthesizes_a_sequential_timeline() {
        let trace = sample_report().to_chrome_trace();
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.ends_with("]}\n"));
        assert!(trace.contains(
            "{\"name\":\"prepare\",\"cat\":\"iotmap\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
             \"ts\":0.000,\"dur\":5000.000,\"args\":{\"self_us\":3000.000}}"
        ));
        // Child starts at the parent's start and keeps its own duration.
        assert!(trace.contains("{\"name\":\"discovery\",\"cat\":\"iotmap\",\"ph\":\"X\""));
        assert!(trace.contains("\"ts\":0.000,\"dur\":2000.000"));
        assert_eq!(
            trace.matches('{').count(),
            trace.matches('}').count(),
            "chrome trace JSON must be brace-balanced"
        );
        assert_eq!(trace.matches('"').count() % 2, 0);
    }

    #[test]
    fn chrome_trace_events_carry_attribution_args() {
        let r = Registry::new();
        let a = r.span_enter("shard");
        r.annotate("shard", 2);
        r.span_exit(a, 4_000);
        let trace = r.report().to_chrome_trace();
        assert!(trace.contains("\"args\":{\"self_us\":4.000,\"shard\":2}"));
    }

    #[test]
    fn fault_counters_surface_as_degraded_sources() {
        let r = Registry::new();
        r.add("faults.zgrab.records_dropped", 12);
        r.add("faults.zgrab.records_retried", 30);
        r.add("faults.zgrab.records_recovered", 25);
        r.add("faults.zgrab.targets_timed_out", 12); // detail key: ignored
        r.add("faults.censys.records_dropped", 4);
        r.add("scan.censys.certs_parsed", 100); // unrelated counter
        let report = r.report();
        let rows = report.fault_completeness();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            SourceCompleteness {
                source: "censys".to_string(),
                dropped: 4,
                retried: 0,
                recovered: 0,
            }
        );
        assert_eq!(rows[1].source, "zgrab");
        assert_eq!(
            (rows[1].dropped, rows[1].retried, rows[1].recovered),
            (12, 30, 25)
        );

        let md = report.to_markdown();
        assert!(md.contains("## Degraded sources"));
        assert!(md.contains("| zgrab | 12 | 30 | 25 |"));
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains(
            "{\"type\":\"degraded_source\",\"source\":\"censys\",\"dropped\":4,\
             \"retried\":0,\"recovered\":0}"
        ));
    }

    #[test]
    fn unfaulted_reports_carry_no_degraded_section() {
        let report = sample_report();
        assert!(report.fault_completeness().is_empty());
        assert!(!report.to_markdown().contains("Degraded sources"));
        assert!(!report.to_jsonl().contains("degraded_source"));
    }

    #[test]
    fn scenario_gauges_surface_as_resilience_rows() {
        let r = Registry::new();
        r.gauge("scenario.storm:microsoft@1.microsoft.recall_delta_pm", -250);
        r.gauge("scenario.storm:microsoft@1.microsoft.precision_delta_pm", 0);
        r.gauge(
            "scenario.storm:microsoft@1.microsoft.footprint_stability_pm",
            1000,
        );
        r.gauge(
            "scenario.migration:bosch@2->aws/ap-southeast-1.bosch.recall_delta_pm",
            -40,
        );
        r.gauge("traffic.scanner.lines_excluded", 3); // unrelated gauge
        let report = r.report();
        let rows = report.resilience();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            EventResilienceRow {
                event: "migration:bosch@2->aws/ap-southeast-1".to_string(),
                provider: "bosch".to_string(),
                precision_delta_pm: 0,
                recall_delta_pm: -40,
                footprint_stability_pm: 1000,
            }
        );
        assert_eq!(rows[1].event, "storm:microsoft@1");
        assert_eq!(rows[1].recall_delta_pm, -250);

        let md = report.to_markdown();
        assert!(md.contains("## Resilience"));
        assert!(md.contains("| storm:microsoft@1 | microsoft | 0 | -250 | 1000 |"));
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains(
            "{\"type\":\"scenario_event\",\"event\":\"storm:microsoft@1\",\
             \"provider\":\"microsoft\",\"precision_delta_pm\":0,\
             \"recall_delta_pm\":-250,\"footprint_stability_pm\":1000}"
        ));
    }

    #[test]
    fn scenario_free_reports_carry_no_resilience_section() {
        let report = sample_report();
        assert!(report.resilience().is_empty());
        assert!(!report.to_markdown().contains("## Resilience"));
        assert!(!report.to_jsonl().contains("scenario_event"));
    }

    #[test]
    fn recovery_counters_surface_as_a_recovery_section() {
        let r = Registry::new();
        r.add("super.stage.discovery.attempts", 3);
        r.add("super.stage.discovery.panics", 2);
        r.add("super.stage.discovery.backoff_ms", 850);
        r.add("super.stage.world.attempts", 1); // clean: not noteworthy
        r.add("super.stage.footprints.restored", 1);
        r.add("super.checkpoints.written", 5);
        r.add("super.checkpoints.corrupt", 1);
        r.add("par.shard_panics", 2);
        r.add("par.shards_quarantined", 2);
        let report = r.report();

        let recovery = report.recovery();
        assert!(!recovery.is_trivial());
        assert_eq!(recovery.stages.len(), 3);
        let discovery = &recovery.stages[0];
        assert_eq!(
            (
                discovery.stage.as_str(),
                discovery.attempts,
                discovery.panics
            ),
            ("discovery", 3, 2)
        );
        assert!(discovery.noteworthy());
        assert!(!recovery.stages[2].noteworthy(), "clean stage is trivial");
        assert_eq!(recovery.checkpoints_written, 5);
        assert_eq!(recovery.shards_quarantined, 2);

        let md = report.to_markdown();
        assert!(md.contains("## Recovery"));
        assert!(md.contains("| discovery | 3 | 2 | 0 | 850 | 0 | 0 |"));
        assert!(md.contains("| footprints | 0 | 0 | 0 | 0 | 1 | 0 |"));
        assert!(!md.contains("| world |"), "clean stages stay out");
        assert!(md.contains("5 written, 1 corrupt"));
        assert!(md.contains("2 panicked, 2 quarantined"));

        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"type\":\"recovery_stage\",\"stage\":\"discovery\""));
        assert!(jsonl.contains("\"checkpoints_written\":5"));
        assert!(jsonl.contains("\"killed\":false"));
    }

    #[test]
    fn uneventful_reports_carry_no_recovery_or_notes_section() {
        let report = sample_report();
        assert!(report.recovery().is_trivial());
        assert!(report.notes().is_empty());
        let md = report.to_markdown();
        assert!(!md.contains("## Recovery"));
        assert!(!md.contains("## Notes"));
        assert!(!report.to_jsonl().contains("\"type\":\"recovery\""));

        // A supervised-but-clean run is also trivial: one attempt per
        // stage, nothing checkpointed, nothing quarantined.
        let r = Registry::new();
        r.add("super.stage.world.attempts", 1);
        r.add("super.stage.discovery.attempts", 1);
        let clean = r.report();
        assert!(clean.recovery().is_trivial());
        assert!(!clean.to_markdown().contains("## Recovery"));
    }

    #[test]
    fn notes_counters_surface_as_a_notes_section() {
        let r = Registry::new();
        r.add("notes.config.iotmap_threads_unparsable", 1);
        let report = r.report();
        assert_eq!(
            report.notes(),
            vec![("config.iotmap_threads_unparsable".to_string(), 1)]
        );
        let md = report.to_markdown();
        assert!(md.contains("## Notes"));
        assert!(md.contains("- config.iotmap_threads_unparsable: 1"));
        assert!(report.to_jsonl().contains(
            "{\"type\":\"note\",\"key\":\"config.iotmap_threads_unparsable\",\"value\":1}"
        ));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
