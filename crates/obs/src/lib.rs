//! # iotmap-obs — the workspace's observability layer
//!
//! A std-only, zero-dependency tracing + metrics subsystem threaded
//! through the whole measurement pipeline:
//!
//! * **Spans** — RAII-guarded, nesting, monotonic wall-clock timed
//!   regions (`obs::span!("discovery.censys")`), collected into a tree;
//! * **Metrics** — counters, gauges, and fixed-bucket histograms kept in
//!   a [`Registry`] (`obs::count!("discovery.certs_parsed", n)`);
//! * **Run reports** — the span tree + metrics serialised to a
//!   human-readable markdown summary and a line-oriented JSON-lines
//!   format (hand-rolled writer, no serde) via [`RunReport`].
//!
//! ## Recording model
//!
//! Instrumented code talks to a thread-local [`Recorder`]. By default
//! none is installed, and every instrumentation point reduces to one
//! thread-local flag check — the hot paths cost ~nothing when
//! observability is off (see the overhead guard in `iotmap-bench`).
//! A harness that wants a report installs a [`Registry`]:
//!
//! ```
//! use std::rc::Rc;
//!
//! let registry = Rc::new(iotmap_obs::Registry::new());
//! iotmap_obs::install(registry.clone());
//! {
//!     let _span = iotmap_obs::span!("demo.stage");
//!     iotmap_obs::count!("demo.items", 3);
//! }
//! iotmap_obs::uninstall();
//! let report = registry.report();
//! assert_eq!(report.counters["demo.items"], 3);
//! println!("{}", report.to_markdown());
//! ```
//!
//! The thread-local design matches the workspace: the simulation is
//! deterministic and single-threaded, and per-thread recorders keep
//! parallel `cargo test` threads isolated from each other.

mod metrics;
mod report;
mod span;

pub use metrics::{Histogram, HistogramSnapshot, Registry, DEFAULT_BUCKETS};
pub use report::{RunReport, SpanNode};
pub use span::SpanGuard;

use std::cell::RefCell;
use std::rc::Rc;

/// The sink instrumented code reports into.
///
/// Implementations record through `&self`: recorders are shared
/// (`Rc<dyn Recorder>`) between the thread-local slot and the harness
/// that will read the results back, so interior mutability is the
/// implementor's responsibility. [`Registry`] is the standard
/// implementation; tests may plug in their own.
pub trait Recorder {
    /// A named region opened; returns an id handed back to
    /// [`Recorder::span_exit`]. Nesting is implied by call order.
    fn span_enter(&self, name: &str) -> usize;
    /// The region identified by `id` closed after `nanos` nanoseconds of
    /// monotonic wall-clock time.
    fn span_exit(&self, id: usize, nanos: u64);
    /// Add `delta` to the named counter.
    fn add(&self, name: &str, delta: u64);
    /// Set the named gauge.
    fn gauge(&self, name: &str, value: i64);
    /// Record one observation into the named histogram.
    fn observe(&self, name: &str, value: u64);
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<dyn Recorder>>> = const { RefCell::new(None) };
}

/// Install a recorder for the current thread. Replaces any previous one.
pub fn install(recorder: Rc<dyn Recorder>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(recorder));
}

/// Remove the current thread's recorder, returning instrumentation to
/// the ~free disabled path.
pub fn uninstall() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Is a recorder installed on this thread? This is the only cost an
/// instrumentation point pays when observability is off.
#[inline]
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Run `f` against the installed recorder, if any.
#[inline]
pub fn with_recorder<R>(f: impl FnOnce(&dyn Recorder) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|r| f(r.as_ref())))
}

#[doc(hidden)]
pub fn current_recorder() -> Option<Rc<dyn Recorder>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Open a span through the installed recorder (function form; prefer the
/// [`span!`] macro, which skips evaluating a computed name when
/// disabled).
pub fn span(name: &str) -> SpanGuard {
    if enabled() {
        SpanGuard::enter_active(name)
    } else {
        SpanGuard::inactive()
    }
}

/// Open an RAII span: `let _guard = obs::span!("discovery.censys");`.
///
/// The name expression is only evaluated when a recorder is installed,
/// so `span!(format!("provider.{name}"))` allocates nothing on the
/// disabled path.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter_active(::core::convert::AsRef::<str>::as_ref(&$name))
        } else {
            $crate::SpanGuard::inactive()
        }
    };
}

/// Bump a counter: `obs::count!("certs_parsed")` or
/// `obs::count!("flows_sampled", n)`. Arguments are only evaluated when
/// a recorder is installed.
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::with_recorder(|r| {
                r.add(::core::convert::AsRef::<str>::as_ref(&$name), $delta as u64)
            });
        }
    };
}

/// Set a gauge: `obs::gauge!("world.servers", n)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::with_recorder(|r| {
                r.gauge(::core::convert::AsRef::<str>::as_ref(&$name), $value as i64)
            });
        }
    };
}

/// Record a histogram observation: `obs::observe!("flow.bytes", b)`.
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::with_recorder(|r| {
                r.observe(::core::convert::AsRef::<str>::as_ref(&$name), $value as u64)
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        uninstall();
        assert!(!enabled());
        // All of these must be harmless no-ops.
        let _g = span("nothing");
        count!("nothing");
        gauge!("nothing", 1);
        observe!("nothing", 1);
        assert!(with_recorder(|_| ()).is_none());
    }

    #[test]
    fn install_uninstall_roundtrip() {
        let registry = Rc::new(Registry::new());
        install(registry.clone());
        assert!(enabled());
        count!("x", 2);
        uninstall();
        assert!(!enabled());
        count!("x", 40); // dropped: no recorder
        assert_eq!(registry.report().counters["x"], 2);
    }

    #[test]
    fn lazy_name_evaluation_when_disabled() {
        uninstall();
        let mut evaluated = false;
        count!(
            {
                evaluated = true;
                "side-effect"
            },
            1
        );
        assert!(
            !evaluated,
            "count! must not evaluate its name when disabled"
        );
    }
}
