//! # iotmap-obs — the workspace's observability layer
//!
//! A std-only, zero-dependency tracing + metrics subsystem threaded
//! through the whole measurement pipeline:
//!
//! * **Spans** — RAII-guarded, nesting, monotonic wall-clock timed
//!   regions (`obs::span!("discovery.censys")`), collected into a tree;
//! * **Metrics** — counters, gauges, and fixed-bucket histograms kept in
//!   a [`Registry`] (`obs::count!("discovery.certs_parsed", n)`);
//! * **Run reports** — the span tree + metrics serialised to a
//!   human-readable markdown summary and a line-oriented JSON-lines
//!   format (hand-rolled writer, no serde) via [`RunReport`].
//!
//! ## Recording model
//!
//! Instrumented code talks to a thread-local [`Recorder`]. By default
//! none is installed, and every instrumentation point reduces to one
//! thread-local flag check — the hot paths cost ~nothing when
//! observability is off (see the overhead guard in `iotmap-bench`).
//! A harness that wants a report installs a [`Registry`]:
//!
//! ```
//! use std::rc::Rc;
//!
//! let registry = Rc::new(iotmap_obs::Registry::new());
//! iotmap_obs::install(registry.clone());
//! {
//!     let _span = iotmap_obs::span!("demo.stage");
//!     iotmap_obs::count!("demo.items", 3);
//! }
//! iotmap_obs::uninstall();
//! let report = registry.report();
//! assert_eq!(report.counters["demo.items"], 3);
//! println!("{}", report.to_markdown());
//! ```
//!
//! The thread-local design matches the workspace: per-thread recorders
//! keep parallel `cargo test` threads isolated from each other, and the
//! pipeline's deterministic fan-out layer (`iotmap-par`) builds on it —
//! each worker thread runs under its own child [`Registry`], and after
//! the join the child [`RunReport`]s are folded back into the parent
//! recorder **in shard order** via [`merge_child_report`]. Counters add,
//! gauges are last-write-wins, histograms merge bucket-wise, and child
//! span roots attach under the parent's currently open span, so an
//! instrumented parallel run reports the same span tree and metric
//! totals as a serial run — only the timings differ.

mod metrics;
mod report;
mod span;

pub use metrics::{Histogram, HistogramSnapshot, Registry, DEFAULT_BUCKETS};
pub use report::{EventResilienceRow, RunReport, SourceCompleteness, SpanNode};
pub use span::SpanGuard;

/// JSONL report format version written by [`RunReport::to_jsonl`]. v2
/// added per-span `self_nanos` and the optional `meta` attribution map.
pub const JSONL_FORMAT: &str = "iotmap-obs.v2";

use std::cell::RefCell;
use std::rc::Rc;

/// One worker shard's identity, attached to its merged span roots by
/// [`Recorder::merge_child_attributed`] so a trace can show which shard
/// did how much work (and whether it had to be quarantined and retried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAttribution {
    /// Shard index within the sharded call.
    pub shard: u64,
    /// Items the shard processed.
    pub items: u64,
    /// The shard panicked and was retried serially.
    pub quarantined: bool,
}

/// The sink instrumented code reports into.
///
/// Implementations record through `&self`: recorders are shared
/// (`Rc<dyn Recorder>`) between the thread-local slot and the harness
/// that will read the results back, so interior mutability is the
/// implementor's responsibility. [`Registry`] is the standard
/// implementation; tests may plug in their own.
pub trait Recorder {
    /// A named region opened; returns an id handed back to
    /// [`Recorder::span_exit`]. Nesting is implied by call order.
    fn span_enter(&self, name: &str) -> usize;
    /// The region identified by `id` closed after `nanos` nanoseconds of
    /// monotonic wall-clock time.
    fn span_exit(&self, id: usize, nanos: u64);
    /// Add `delta` to the named counter.
    fn add(&self, name: &str, delta: u64);
    /// Set the named gauge.
    fn gauge(&self, name: &str, value: i64);
    /// Record one observation into the named histogram.
    fn observe(&self, name: &str, value: u64);
    /// Attach `key = value` metadata to the innermost open span —
    /// per-shard attribution, retry counts, item totals. The default
    /// drops it: plain recorders need no span metadata, and new trait
    /// methods must not break existing implementations.
    fn annotate(&self, _key: &str, _value: u64) {}
    /// Fold a child worker's finished [`RunReport`] into this recorder.
    ///
    /// Called by the parallel execution layer after joining a worker, in
    /// shard order. The default implementation replays the report
    /// through the generic interface: spans re-entered/exited in order,
    /// counters re-added, gauges re-set, and histogram buckets replayed
    /// at each bucket's upper bound (approximate when bounds differ).
    /// [`Registry`] overrides this with an exact structural merge.
    fn merge_child(&self, report: &RunReport) {
        fn replay_span<R: Recorder + ?Sized>(rec: &R, node: &SpanNode) {
            let id = rec.span_enter(&node.name);
            for (key, value) in &node.meta {
                rec.annotate(key, *value);
            }
            for child in &node.children {
                replay_span(rec, child);
            }
            rec.span_exit(id, node.nanos);
        }
        for root in &report.spans {
            replay_span(self, root);
        }
        for (name, delta) in &report.counters {
            self.add(name, *delta);
        }
        for (name, value) in &report.gauges {
            self.gauge(name, *value);
        }
        for (name, snap) in &report.histograms {
            for (i, &n) in snap.counts.iter().enumerate() {
                let value = snap.bounds.get(i).copied().unwrap_or(snap.max);
                for _ in 0..n {
                    self.observe(name, value);
                }
            }
        }
    }
    /// [`Recorder::merge_child`] with the merging shard's identity, so
    /// recorders that keep a span tree can attribute each merged subtree
    /// to the worker that produced it. The default ignores the
    /// attribution and merges plainly; [`Registry`] overrides this to
    /// stamp `shard` / `items` / `quarantined` metadata on the attached
    /// child roots.
    fn merge_child_attributed(&self, report: &RunReport, _attr: &ShardAttribution) {
        self.merge_child(report);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<dyn Recorder>>> = const { RefCell::new(None) };
}

/// Install a recorder for the current thread. Replaces any previous one.
pub fn install(recorder: Rc<dyn Recorder>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(recorder));
}

/// Remove the current thread's recorder, returning instrumentation to
/// the ~free disabled path.
pub fn uninstall() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Is a recorder installed on this thread? This is the only cost an
/// instrumentation point pays when observability is off.
#[inline]
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Run `f` against the installed recorder, if any.
#[inline]
pub fn with_recorder<R>(f: impl FnOnce(&dyn Recorder) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|r| f(r.as_ref())))
}

#[doc(hidden)]
pub fn current_recorder() -> Option<Rc<dyn Recorder>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Fold a child worker's [`RunReport`] into this thread's recorder (a
/// no-op when none is installed). The parallel execution layer calls
/// this once per worker, in shard order, after the join — see
/// [`Recorder::merge_child`] for the merge semantics.
pub fn merge_child_report(report: &RunReport) {
    with_recorder(|r| r.merge_child(report));
}

/// [`merge_child_report`] with shard attribution — the variant the
/// parallel execution layer uses so each worker's merged span roots
/// carry the shard index, item count, and quarantine marker.
pub fn merge_child_report_attributed(report: &RunReport, attr: &ShardAttribution) {
    with_recorder(|r| r.merge_child_attributed(report, attr));
}

/// Attach metadata to the innermost open span (function form; prefer the
/// [`annotate!`] macro, which skips evaluating its arguments when
/// disabled).
pub fn annotate(key: &str, value: u64) {
    with_recorder(|r| r.annotate(key, value));
}

/// Peak resident-set size of this process in bytes, read from Linux's
/// `VmHWM` high-water mark in `/proc/self/status`; `None` on platforms
/// without procfs. This is the number the scale bench gates on: a
/// bounded-memory run must keep its *peak*, not just its current RSS,
/// under the documented ceiling.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Open a span through the installed recorder (function form; prefer the
/// [`span!`] macro, which skips evaluating a computed name when
/// disabled).
pub fn span(name: &str) -> SpanGuard {
    if enabled() {
        SpanGuard::enter_active(name)
    } else {
        SpanGuard::inactive()
    }
}

/// Open an RAII span: `let _guard = obs::span!("discovery.censys");`.
///
/// The name expression is only evaluated when a recorder is installed,
/// so `span!(format!("provider.{name}"))` allocates nothing on the
/// disabled path.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter_active(::core::convert::AsRef::<str>::as_ref(&$name))
        } else {
            $crate::SpanGuard::inactive()
        }
    };
}

/// Bump a counter: `obs::count!("certs_parsed")` or
/// `obs::count!("flows_sampled", n)`. Arguments are only evaluated when
/// a recorder is installed.
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::with_recorder(|r| {
                r.add(::core::convert::AsRef::<str>::as_ref(&$name), $delta as u64)
            });
        }
    };
}

/// Set a gauge: `obs::gauge!("world.servers", n)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::with_recorder(|r| {
                r.gauge(::core::convert::AsRef::<str>::as_ref(&$name), $value as i64)
            });
        }
    };
}

/// Attach metadata to the innermost open span:
/// `obs::annotate!("attempts", n)`. Arguments are only evaluated when a
/// recorder is installed; without an open span the annotation is dropped.
#[macro_export]
macro_rules! annotate {
    ($key:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::with_recorder(|r| {
                r.annotate(::core::convert::AsRef::<str>::as_ref(&$key), $value as u64)
            });
        }
    };
}

/// Record a histogram observation: `obs::observe!("flow.bytes", b)`.
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::with_recorder(|r| {
                r.observe(::core::convert::AsRef::<str>::as_ref(&$name), $value as u64)
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        uninstall();
        assert!(!enabled());
        // All of these must be harmless no-ops.
        let _g = span("nothing");
        count!("nothing");
        gauge!("nothing", 1);
        observe!("nothing", 1);
        assert!(with_recorder(|_| ()).is_none());
    }

    #[test]
    fn install_uninstall_roundtrip() {
        let registry = Rc::new(Registry::new());
        install(registry.clone());
        assert!(enabled());
        count!("x", 2);
        uninstall();
        assert!(!enabled());
        count!("x", 40); // dropped: no recorder
        assert_eq!(registry.report().counters["x"], 2);
    }

    #[test]
    fn merge_child_report_targets_installed_recorder() {
        let child = Registry::new();
        child.add("merged", 4);
        let report = child.report();
        uninstall();
        merge_child_report(&report); // no recorder installed: dropped
        let parent = Rc::new(Registry::new());
        install(parent.clone());
        merge_child_report(&report);
        uninstall();
        assert_eq!(parent.counter("merged"), 4);
    }

    #[test]
    fn default_merge_child_replays_through_the_generic_interface() {
        use std::cell::RefCell;

        #[derive(Default)]
        struct Log(RefCell<Vec<String>>);
        impl Recorder for Log {
            fn span_enter(&self, name: &str) -> usize {
                self.0.borrow_mut().push(format!("enter {name}"));
                0
            }
            fn span_exit(&self, _id: usize, nanos: u64) {
                self.0.borrow_mut().push(format!("exit {nanos}"));
            }
            fn add(&self, name: &str, delta: u64) {
                self.0.borrow_mut().push(format!("add {name}={delta}"));
            }
            fn gauge(&self, name: &str, value: i64) {
                self.0.borrow_mut().push(format!("gauge {name}={value}"));
            }
            fn observe(&self, name: &str, value: u64) {
                self.0.borrow_mut().push(format!("observe {name}={value}"));
            }
        }

        let child = Registry::new();
        let outer = child.span_enter("outer");
        let inner = child.span_enter("inner");
        child.span_exit(inner, 2);
        child.span_exit(outer, 9);
        child.add("c", 3);
        child.gauge("g", -1);

        let log = Log::default();
        log.merge_child(&child.report());
        assert_eq!(
            *log.0.borrow(),
            vec![
                "enter outer",
                "enter inner",
                "exit 2",
                "exit 9",
                "add c=3",
                "gauge g=-1"
            ]
        );
    }

    #[test]
    fn lazy_name_evaluation_when_disabled() {
        uninstall();
        let mut evaluated = false;
        count!(
            {
                evaluated = true;
                "side-effect"
            },
            1
        );
        assert!(
            !evaluated,
            "count! must not evaluate its name when disabled"
        );
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_reported_and_plausible() {
        let rss = peak_rss_bytes().expect("procfs VmHWM available on linux");
        // Any live process has megabytes resident but nowhere near a TB.
        assert!(rss > 1 << 20, "peak RSS {rss} implausibly small");
        assert!(rss < 1 << 40, "peak RSS {rss} implausibly large");
    }
}
