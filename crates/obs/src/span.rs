//! RAII span guards: monotonic wall-clock timing of nested regions.

use crate::Recorder;
use std::rc::Rc;
use std::time::Instant;

/// An open span. Dropping it closes the span and reports the elapsed
/// monotonic time to the recorder that was installed at entry.
///
/// An inactive guard (observability disabled at entry) carries no state
/// and its drop is free.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    recorder: Rc<dyn Recorder>,
    id: usize,
    started: Instant,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub fn inactive() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// Open a span against the currently installed recorder. Falls back
    /// to an inactive guard if none is installed (the `span!` macro has
    /// already checked, but racing uninstalls must stay safe).
    pub fn enter_active(name: &str) -> SpanGuard {
        let Some(recorder) = crate::current_recorder() else {
            return SpanGuard::inactive();
        };
        let id = recorder.span_enter(name);
        SpanGuard {
            inner: Some(ActiveSpan {
                recorder,
                id,
                started: Instant::now(),
            }),
        }
    }

    /// Is this guard actually recording?
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Close the span now instead of at end of scope.
    pub fn exit(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if let Some(active) = self.inner.take() {
            let nanos = active.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            active.recorder.span_exit(active.id, nanos);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn inactive_guard_is_inert() {
        let g = SpanGuard::inactive();
        assert!(!g.is_active());
        g.exit();
    }

    #[test]
    fn guard_reports_on_drop() {
        crate::uninstall();
        let registry = Rc::new(Registry::new());
        crate::install(registry.clone());
        {
            let g = crate::span("outer");
            assert!(g.is_active());
            crate::span("inner").exit();
        }
        crate::uninstall();
        let report = registry.report();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "outer");
        assert_eq!(report.spans[0].children.len(), 1);
        assert_eq!(report.spans[0].children[0].name, "inner");
    }
}
