//! The metrics registry: counters, gauges, fixed-bucket histograms, and
//! the span arena.

use crate::report::{RunReport, SpanNode};
use crate::{Recorder, ShardAttribution};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds: powers of four from 1 to 4^15,
/// covering counts-of-things and byte sizes alike with 16 fixed buckets
/// (plus one overflow bucket).
pub const DEFAULT_BUCKETS: &[u64] = &[
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864,
    268435456, 1073741824,
];

/// A fixed-bucket histogram: observations are counted into the first
/// bucket whose upper bound is `>=` the value, with an overflow bucket
/// past the last bound. Bounds never change after construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// A histogram over [`DEFAULT_BUCKETS`].
    pub fn new() -> Histogram {
        Histogram::with_bounds(DEFAULT_BUCKETS)
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Rebuild a histogram from a snapshot (the inverse of
    /// [`Histogram::snapshot`]), used when merging a child registry's
    /// report into a parent that has no histogram under that name yet.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Histogram {
        Histogram {
            bounds: snap.bounds.clone(),
            counts: snap.counts.clone(),
            count: snap.count,
            sum: snap.sum,
            min: if snap.count == 0 { u64::MAX } else { snap.min },
            max: snap.max,
        }
    }

    /// Fold a child registry's snapshot into this histogram.
    ///
    /// Same bounds (the common case — both sides bucket with
    /// [`DEFAULT_BUCKETS`] or the same registered bounds): exact
    /// bucket-wise addition. Differing bounds: each foreign bucket's
    /// count is re-bucketed at that bucket's upper bound (overflow at
    /// the snapshot max), which preserves count/sum/min/max exactly and
    /// bucket shape approximately.
    pub fn merge_snapshot(&mut self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        if self.bounds == snap.bounds {
            for (mine, theirs) in self.counts.iter_mut().zip(&snap.counts) {
                *mine = mine.saturating_add(*theirs);
            }
        } else {
            for (i, &n) in snap.counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let value = snap.bounds.get(i).copied().unwrap_or(snap.max);
                let idx = self
                    .bounds
                    .iter()
                    .position(|&b| value <= b)
                    .unwrap_or(self.bounds.len());
                self.counts[idx] = self.counts[idx].saturating_add(n);
            }
        }
        self.count += snap.count;
        self.sum = self.sum.saturating_add(snap.sum);
        self.min = self.min.min(snap.min);
        self.max = self.max.max(snap.max);
    }

    /// Immutable snapshot for reports.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A read-only view of a [`Histogram`] at report time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug)]
struct SpanRec {
    name: String,
    nanos: u64,
    children: Vec<usize>,
    /// Attribution attached via [`Recorder::annotate`] or a shard merge:
    /// last write wins per key, insertion-ordered.
    meta: Vec<(String, u64)>,
}

/// Set `key` on a span's metadata, last-write-wins.
fn set_meta(meta: &mut Vec<(String, u64)>, key: &str, value: u64) {
    match meta.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => meta.push((key.to_string(), value)),
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<SpanRec>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

/// The standard [`Recorder`]: accumulates counters, gauges, histograms,
/// and the span tree, and snapshots them into a [`RunReport`].
///
/// Single-threaded by design (interior `RefCell`, shared via `Rc`), like
/// the simulation itself; each test thread installs its own.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RefCell<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Pre-register a histogram with explicit bucket bounds (observations
    /// to unknown names otherwise get [`DEFAULT_BUCKETS`]).
    pub fn register_histogram(&self, name: &str, bounds: &[u64]) {
        self.inner
            .borrow_mut()
            .histograms
            .insert(name.to_string(), Histogram::with_bounds(bounds));
    }

    /// Current value of a counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Append one report span node (and its subtree) into the arena,
    /// under `parent` (`None` ⇒ a new root). Returns the new node's id.
    fn attach_span(inner: &mut Inner, parent: Option<usize>, node: &SpanNode) -> usize {
        let id = inner.spans.len();
        inner.spans.push(SpanRec {
            name: node.name.clone(),
            nanos: node.nanos,
            children: Vec::new(),
            meta: node.meta.clone(),
        });
        match parent {
            Some(p) => inner.spans[p].children.push(id),
            None => inner.roots.push(id),
        }
        for child in &node.children {
            Registry::attach_span(inner, Some(id), child);
        }
        id
    }

    /// The metric half of a child merge: counters add saturating, gauges
    /// last-write-wins, histograms merge bucket-wise.
    fn merge_metrics(inner: &mut Inner, report: &RunReport) {
        for (name, delta) in &report.counters {
            match inner.counters.get_mut(name) {
                Some(v) => *v = v.saturating_add(*delta),
                None => {
                    inner.counters.insert(name.clone(), *delta);
                }
            }
        }
        for (name, value) in &report.gauges {
            inner.gauges.insert(name.clone(), *value);
        }
        for (name, snap) in &report.histograms {
            match inner.histograms.get_mut(name) {
                Some(h) => h.merge_snapshot(snap),
                None => {
                    inner
                        .histograms
                        .insert(name.clone(), Histogram::from_snapshot(snap));
                }
            }
        }
    }

    /// Snapshot everything recorded so far into a [`RunReport`]. Spans
    /// still open keep their zero duration.
    pub fn report(&self) -> RunReport {
        let inner = self.inner.borrow();
        fn build(spans: &[SpanRec], idx: usize) -> SpanNode {
            SpanNode {
                name: spans[idx].name.clone(),
                nanos: spans[idx].nanos,
                meta: spans[idx].meta.clone(),
                children: spans[idx]
                    .children
                    .iter()
                    .map(|&c| build(spans, c))
                    .collect(),
            }
        }
        RunReport {
            spans: inner
                .roots
                .iter()
                .map(|&r| build(&inner.spans, r))
                .collect(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl Recorder for Registry {
    fn span_enter(&self, name: &str) -> usize {
        let mut inner = self.inner.borrow_mut();
        let id = inner.spans.len();
        inner.spans.push(SpanRec {
            name: name.to_string(),
            nanos: 0,
            children: Vec::new(),
            meta: Vec::new(),
        });
        match inner.stack.last().copied() {
            Some(parent) => inner.spans[parent].children.push(id),
            None => inner.roots.push(id),
        }
        inner.stack.push(id);
        id
    }

    fn span_exit(&self, id: usize, nanos: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(rec) = inner.spans.get_mut(id) {
            rec.nanos = nanos;
        }
        // Guards drop LIFO; tolerate a leaked guard by popping through it.
        if let Some(pos) = inner.stack.iter().rposition(|&s| s == id) {
            inner.stack.truncate(pos);
        }
    }

    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn gauge(&self, name: &str, value: i64) {
        self.inner
            .borrow_mut()
            .gauges
            .insert(name.to_string(), value);
    }

    /// Attach `key = value` to the innermost open span (dropped when no
    /// span is open — attribution without a span has nowhere to live).
    fn annotate(&self, key: &str, value: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(id) = inner.stack.last().copied() {
            set_meta(&mut inner.spans[id].meta, key, value);
        }
    }

    fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Exact merge of a child worker's report (overriding the trait's
    /// replay-based default): counters add saturating, gauges
    /// last-write-wins, histograms merge bucket-wise, and each child
    /// root span attaches under the currently open span (the span the
    /// parallel stage was entered from), so the merged tree has the
    /// same shape as a serial run — only the timings differ.
    fn merge_child(&self, report: &RunReport) {
        let mut inner = self.inner.borrow_mut();
        Registry::merge_metrics(&mut inner, report);
        let parent = inner.stack.last().copied();
        for root in &report.spans {
            Registry::attach_span(&mut inner, parent, root);
        }
    }

    /// [`Recorder::merge_child`], plus shard attribution: every attached
    /// child root is stamped with the worker's shard index, the number of
    /// items it processed, and — when the shard was quarantined and
    /// retried serially — a `quarantined` marker. The tree *shape* stays
    /// exactly what a serial run records; attribution is metadata only.
    fn merge_child_attributed(&self, report: &RunReport, attr: &ShardAttribution) {
        let mut inner = self.inner.borrow_mut();
        Registry::merge_metrics(&mut inner, report);
        let parent = inner.stack.last().copied();
        for root in &report.spans {
            let id = Registry::attach_span(&mut inner, parent, root);
            let meta = &mut inner.spans[id].meta;
            set_meta(meta, "shard", attr.shard);
            set_meta(meta, "items", attr.items);
            if attr.quarantined {
                set_meta(meta, "quarantined", 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_semantics() {
        let r = Registry::new();
        assert_eq!(r.counter("a"), 0);
        r.add("a", 2);
        r.add("a", 3);
        r.add("b", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 1);
        r.add("a", u64::MAX);
        assert_eq!(r.counter("a"), u64::MAX, "counters saturate");
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = Registry::new();
        r.gauge("g", 10);
        r.gauge("g", -3);
        assert_eq!(r.report().gauges["g"], -3);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 2]);
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 5000);
        assert_eq!(s.sum, 5222);
        assert!((s.mean() - 5222.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_default_buckets_cover_everything() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(*s.counts.last().unwrap(), 1, "overflow bucket catches all");
        assert_eq!(s.counts.len(), DEFAULT_BUCKETS.len() + 1);
    }

    #[test]
    fn registered_bounds_are_respected() {
        let r = Registry::new();
        r.register_histogram("h", &[2, 4]);
        r.observe("h", 3);
        let s = &r.report().histograms["h"];
        assert_eq!(s.bounds, vec![2, 4]);
        assert_eq!(s.counts, vec![0, 1, 0]);
    }

    #[test]
    fn span_tree_nesting_and_monotonic_timing() {
        let r = Registry::new();
        let outer = r.span_enter("outer");
        let inner = r.span_enter("inner");
        r.span_exit(inner, 5);
        let sibling = r.span_enter("sibling");
        r.span_exit(sibling, 7);
        r.span_exit(outer, 20);
        let root2 = r.span_enter("root2");
        r.span_exit(root2, 1);

        let report = r.report();
        assert_eq!(report.spans.len(), 2);
        let o = &report.spans[0];
        assert_eq!(o.name, "outer");
        assert_eq!(o.nanos, 20);
        assert_eq!(
            o.children
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            ["inner", "sibling"]
        );
        // A parent's recorded time always covers its children's.
        assert!(o.nanos >= o.children.iter().map(|c| c.nanos).sum::<u64>());
        assert_eq!(report.spans[1].name, "root2");
    }

    #[test]
    fn merge_child_combines_metrics_exactly() {
        let child = Registry::new();
        let s = child.span_enter("child.work");
        child.span_exit(s, 10);
        child.add("shared", 5);
        child.add("child.only", 2);
        child.gauge("g", 99);
        child.observe("h", 7);

        let parent = Registry::new();
        parent.add("shared", 1);
        parent.gauge("g", 1);
        parent.observe("h", 3);
        let outer = parent.span_enter("outer");
        parent.merge_child(&child.report());
        parent.span_exit(outer, 50);

        let report = parent.report();
        assert_eq!(report.counters["shared"], 6);
        assert_eq!(report.counters["child.only"], 2);
        assert_eq!(report.gauges["g"], 99, "gauges: last write wins");
        let h = &report.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 10);
        assert_eq!((h.min, h.max), (3, 7));
        // Child roots attach under the span open at merge time.
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].children.len(), 1);
        assert_eq!(report.spans[0].children[0].name, "child.work");
    }

    #[test]
    fn merge_child_without_open_span_adds_roots() {
        let child = Registry::new();
        let s = child.span_enter("orphan");
        child.span_exit(s, 1);
        let parent = Registry::new();
        parent.merge_child(&child.report());
        assert_eq!(parent.report().spans[0].name, "orphan");
    }

    #[test]
    fn histogram_merge_with_differing_bounds_rebuckets() {
        let mut a = Histogram::with_bounds(&[10, 100]);
        a.record(5);
        let mut b = Histogram::with_bounds(&[50]);
        b.record(40); // bucket ≤50
        b.record(700); // overflow
        a.merge_snapshot(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 745);
        assert_eq!((s.min, s.max), (5, 700));
        // 40 lands via its bucket bound 50 → bucket ≤100; 700 via max → overflow.
        assert_eq!(s.counts, vec![1, 1, 1]);
    }

    #[test]
    fn merging_empty_child_is_a_noop() {
        let parent = Registry::new();
        parent.add("c", 1);
        parent.merge_child(&Registry::new().report());
        assert_eq!(parent.counter("c"), 1);
        assert!(parent.report().spans.is_empty());
    }

    #[test]
    fn merging_an_empty_snapshot_into_a_histogram_is_a_noop() {
        let mut h = Histogram::with_bounds(&[10, 100]);
        h.record(5);
        h.merge_snapshot(&Histogram::with_bounds(&[7]).snapshot());
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max, s.sum), (5, 5, 5));
        assert_eq!(s.counts, vec![1, 0, 0]);
    }

    #[test]
    fn merging_into_an_empty_histogram_adopts_the_child_exactly() {
        let mut child = Histogram::with_bounds(&[10, 100]);
        child.record(3);
        child.record(60);
        let mut parent = Histogram::with_bounds(&[10, 100]);
        parent.merge_snapshot(&child.snapshot());
        let s = parent.snapshot();
        assert_eq!(s.counts, vec![1, 1, 0]);
        assert_eq!((s.count, s.sum, s.min, s.max), (2, 63, 3, 60));
        assert!((s.mean() - 31.5).abs() < 1e-9);
    }

    #[test]
    fn merge_child_with_disjoint_keys_keeps_both_sides() {
        let child = Registry::new();
        child.add("child.only", 7);
        child.gauge("child.g", -2);
        child.observe("child.h", 11);
        let parent = Registry::new();
        parent.add("parent.only", 3);
        parent.observe("parent.h", 4);
        parent.merge_child(&child.report());
        let report = parent.report();
        assert_eq!(report.counters["parent.only"], 3);
        assert_eq!(report.counters["child.only"], 7);
        assert_eq!(report.gauges["child.g"], -2);
        // The child's histogram appears exactly — bounds, distribution,
        // and summary stats — next to the untouched parent one.
        let ch = &report.histograms["child.h"];
        assert_eq!((ch.count, ch.sum, ch.min, ch.max), (1, 11, 11, 11));
        assert_eq!(report.histograms["parent.h"].count, 1);
    }

    #[test]
    fn histogram_distribution_survives_a_same_bounds_merge() {
        // "Quantiles after merge": with equal bounds the merged bucket
        // distribution is the exact bucket-wise sum, so any quantile read
        // off the buckets matches a single histogram fed both streams.
        let mut a = Histogram::with_bounds(&[10, 100, 1000]);
        let mut b = Histogram::with_bounds(&[10, 100, 1000]);
        let mut oracle = Histogram::with_bounds(&[10, 100, 1000]);
        for v in [1, 5, 50] {
            a.record(v);
            oracle.record(v);
        }
        for v in [70, 500, 2000] {
            b.record(v);
            oracle.record(v);
        }
        a.merge_snapshot(&b.snapshot());
        assert_eq!(a.snapshot(), oracle.snapshot());
    }

    #[test]
    fn annotate_attaches_to_the_innermost_open_span() {
        let r = Registry::new();
        r.annotate("orphan", 1); // no open span: dropped
        let outer = r.span_enter("outer");
        let inner = r.span_enter("inner");
        r.annotate("items", 5);
        r.annotate("items", 9); // last write wins
        r.span_exit(inner, 2);
        r.annotate("outer.items", 3);
        r.span_exit(outer, 10);
        let report = r.report();
        let o = &report.spans[0];
        assert_eq!(o.meta, vec![("outer.items".to_string(), 3)]);
        assert_eq!(o.children[0].meta, vec![("items".to_string(), 9)]);
    }

    #[test]
    fn attributed_merge_stamps_shard_meta_on_child_roots_only() {
        let child = Registry::new();
        let outer = child.span_enter("work");
        let inner = child.span_enter("work.step");
        child.span_exit(inner, 1);
        child.span_exit(outer, 3);
        child.add("c", 2);

        let parent = Registry::new();
        let stage = parent.span_enter("stage");
        parent.merge_child_attributed(
            &child.report(),
            &ShardAttribution {
                shard: 3,
                items: 17,
                quarantined: true,
            },
        );
        parent.span_exit(stage, 9);

        let report = parent.report();
        assert_eq!(report.counters["c"], 2);
        let stage = &report.spans[0];
        assert!(stage.meta.is_empty(), "the open parent span is untouched");
        let root = &stage.children[0];
        assert_eq!(
            root.meta,
            vec![
                ("shard".to_string(), 3),
                ("items".to_string(), 17),
                ("quarantined".to_string(), 1)
            ]
        );
        assert!(
            root.children[0].meta.is_empty(),
            "descendants carry no attribution"
        );
    }

    #[test]
    fn leaked_inner_span_does_not_corrupt_stack() {
        let r = Registry::new();
        let outer = r.span_enter("outer");
        let _leaked = r.span_enter("leaked");
        r.span_exit(outer, 9); // pops through the leaked child
        let next = r.span_enter("next");
        r.span_exit(next, 1);
        let report = r.report();
        assert_eq!(report.spans.len(), 2, "next span is a root again");
        assert_eq!(report.spans[1].name, "next");
    }
}
