//! Regex-engine benchmarks — DESIGN.md ablation #2.
//!
//! The pipeline matches every provider pattern against every passive-DNS
//! owner name; matching must be linear-time. This bench compares the Pike
//! VM against the naive backtracker on (a) a realistic domain corpus and
//! (b) a pathological input that blows the backtracker up.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use iotmap_dregex::backtrack::BacktrackRegex;
use iotmap_dregex::Regex;
use iotmap_nettypes::SimRng;

const AMAZON_PATTERN: &str = r"(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)(\.amazonaws\.com\.$)";

fn corpus(n: usize) -> Vec<String> {
    let mut rng = SimRng::new(7);
    let regions = ["us-east-1", "eu-west-1", "ap-southeast-2", "cn-north-4"];
    let slds = [
        "amazonaws.com",
        "azure-devices.net",
        "example.org",
        "iot.sap",
    ];
    (0..n)
        .map(|i| {
            let region = regions[(rng.next_u64() % 4) as usize];
            let sld = slds[(rng.next_u64() % 4) as usize];
            match i % 3 {
                0 => format!("t{:08x}.iot.{region}.{sld}.", rng.next_u32()),
                1 => format!("www.site{:05}.{sld}.", rng.next_u64() % 100_000),
                _ => format!("hub-{:06x}.{sld}.", rng.next_u32() & 0xFFFFFF),
            }
        })
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let names = corpus(10_000);
    let pike = Regex::with_options(AMAZON_PATTERN, true).unwrap();
    let bt = BacktrackRegex::new(AMAZON_PATTERN).unwrap();

    let mut group = c.benchmark_group("domain-corpus-10k");
    group.throughput(Throughput::Elements(names.len() as u64));
    group.bench_function("pike-vm", |b| {
        b.iter(|| names.iter().filter(|n| pike.is_match(n)).count())
    });
    group.bench_function("backtracking", |b| {
        b.iter(|| names.iter().filter(|n| bt.is_match(n)).count())
    });
    group.finish();

    // Pathological input: (a+)+b against a^n. The Pike VM stays linear;
    // the backtracker is exponential, so keep n small enough to finish.
    let mut group = c.benchmark_group("pathological");
    let evil_pike = Regex::new("(a+)+b").unwrap();
    let evil_bt = BacktrackRegex::new("(a+)+b").unwrap();
    let long_input = "a".repeat(2_000);
    let short_input = "a".repeat(18);
    group.bench_function("pike-vm-2000a", |b| {
        b.iter(|| evil_pike.is_match(&long_input))
    });
    group.bench_function("backtracking-18a", |b| {
        b.iter(|| evil_bt.is_match(&short_input))
    });
    group.finish();

    c.bench_function("compile-paper-registry", |b| {
        b.iter_batched(
            || (),
            |_| iotmap_core::PatternRegistry::paper_defaults(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
