//! Traffic-simulation and flow-sink benchmarks — DESIGN.md ablation #4:
//! streaming sinks vs materializing the flow table.

use criterion::{criterion_group, criterion_main, Criterion};
use iotmap_bench::Experiment;
use iotmap_netflow::{CountingSink, StoringSink};
use iotmap_traffic::{AnalysisSink, ContactSink};
use iotmap_world::{TrafficSimulator, WorldConfig};
use std::collections::HashSet;
use std::sync::OnceLock;

fn experiment() -> &'static Experiment {
    static E: OnceLock<Experiment> = OnceLock::new();
    E.get_or_init(|| Experiment::prepare(&WorldConfig::small(42)))
}

fn bench_traffic(c: &mut Criterion) {
    let exp = experiment();
    let period = exp.world.config.study_period;
    let sim = TrafficSimulator::new(&exp.world);

    c.bench_function("week-simulation-counting-sink", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            sim.run(period, &mut sink);
            sink.records
        })
    });

    // Ablation: materialize everything (what the streaming design avoids).
    c.bench_function("week-simulation-storing-sink", |b| {
        b.iter(|| {
            let mut sink = StoringSink::new();
            sim.run(period, &mut sink);
            sink.records.len()
        })
    });

    c.bench_function("week-simulation-analysis-sink", |b| {
        let excluded = HashSet::new();
        b.iter(|| {
            let mut sink = AnalysisSink::new(&exp.index, &excluded, period);
            sim.run(period, &mut sink);
            sink.into_report().total_lines()
        })
    });

    c.bench_function("week-simulation-contact-sink", |b| {
        b.iter(|| {
            let mut sink = ContactSink::new(&exp.index);
            sim.run(period, &mut sink);
            sink.per_line.len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_traffic
}
criterion_main!(benches);
