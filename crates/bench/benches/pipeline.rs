//! Discovery-pipeline benchmarks: the §3 instruments on a small world.

use criterion::{criterion_group, criterion_main, Criterion};
use iotmap_core::{DataSources, DiscoveryPipeline, PatternRegistry, Source};
use iotmap_dregex::query::DnsdbQuery;
use iotmap_scan::CensysService;
use iotmap_world::{World, WorldConfig};
use std::sync::OnceLock;

fn world() -> &'static (World, iotmap_world::CollectedScans) {
    static W: OnceLock<(World, iotmap_world::CollectedScans)> = OnceLock::new();
    W.get_or_init(|| {
        let world = World::generate(&WorldConfig::small(42));
        let scans = world.collect_scan_data(world.config.study_period);
        (world, scans)
    })
}

fn bench_pipeline(c: &mut Criterion) {
    let (world, scans) = world();
    let period = world.config.study_period;

    c.bench_function("world-generate-small", |b| {
        b.iter(|| World::generate(&WorldConfig::small(7)).servers.len())
    });

    c.bench_function("censys-daily-sweep", |b| {
        let svc = CensysService::new();
        let date = iotmap_nettypes::Date::new(2022, 2, 28);
        b.iter(|| svc.daily_sweep(&world.view_on(date), date).records.len())
    });

    c.bench_function("passive-dns-flexible-search", |b| {
        let q = DnsdbQuery::flexible(r"(.+\.|^)(azure-devices\.net\.$)/A").unwrap();
        b.iter(|| world.passive_dns.search(&q, period).count())
    });

    c.bench_function("discovery-full-run", |b| {
        b.iter(|| {
            let sources = DataSources {
                censys: &scans.censys,
                zgrab_v6: &scans.zgrab_v6,
                passive_dns: &world.passive_dns,
                zones: &world.zones,
                routeviews: &world.bgp,
                latency: None,
            };
            DiscoveryPipeline::new(PatternRegistry::paper_defaults())
                .run(&sources, period)
                .all_ips()
                .len()
        })
    });

    c.bench_function("discovery-certificates-only", |b| {
        b.iter(|| {
            let sources = DataSources {
                censys: &scans.censys,
                zgrab_v6: &scans.zgrab_v6,
                passive_dns: &world.passive_dns,
                zones: &world.zones,
                routeviews: &world.bgp,
                latency: None,
            };
            DiscoveryPipeline::new(PatternRegistry::paper_defaults())
                .run_channels(&sources, period, &[Source::Certificate])
                .all_ips()
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
