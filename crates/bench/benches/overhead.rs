//! Overhead guard (bench form): `Experiment::prepare` at the small
//! preset with no recorder installed vs with the no-op disabled path
//! explicitly exercised. The assertion form of this guard lives in
//! `tests/obs_overhead.rs`; this bench quantifies the margin.
//!
//! Gated behind the `bench-deps` feature (needs the `criterion`
//! dev-dependency, which the offline tier-1 build cannot fetch).

use criterion::{criterion_group, criterion_main, Criterion};
use iotmap_bench::Experiment;
use iotmap_world::WorldConfig;

fn prepare_uninstrumented(c: &mut Criterion) {
    iotmap_obs::uninstall();
    c.bench_function("prepare_small_no_recorder", |b| {
        b.iter(|| Experiment::prepare(&WorldConfig::small(42)))
    });
}

fn prepare_with_registry(c: &mut Criterion) {
    c.bench_function("prepare_small_with_registry", |b| {
        b.iter(|| {
            let registry = std::rc::Rc::new(iotmap_obs::Registry::new());
            iotmap_obs::install(registry.clone());
            let exp = Experiment::prepare(&WorldConfig::small(42));
            iotmap_obs::uninstall();
            (exp, registry.report())
        })
    });
}

criterion_group!(benches, prepare_uninstrumented, prepare_with_registry);
criterion_main!(benches);
