//! Prefix-trie benchmarks — DESIGN.md ablation #3.
//!
//! Every discovered IP is mapped to its covering BGP announcement (§4.3);
//! with tens of thousands of lookups against a RouteViews-scale table, the
//! binary trie's `O(32)` longest-prefix match matters. The baseline is the
//! obvious linear scan.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iotmap_nettypes::{Ipv4Prefix, PrefixMap, SimRng};
use std::net::Ipv4Addr;

fn table(n: usize) -> Vec<(Ipv4Prefix, u32)> {
    let mut rng = SimRng::new(99);
    (0..n)
        .map(|i| {
            let addr = Ipv4Addr::from(rng.next_u32());
            let len = 8 + (rng.next_u64() % 17) as u8; // /8../24
            (Ipv4Prefix::new(addr, len), i as u32)
        })
        .collect()
}

fn bench_lpm(c: &mut Criterion) {
    let entries = table(20_000);
    let mut map = PrefixMap::new();
    for (p, v) in &entries {
        map.insert_v4(*p, *v);
    }
    let mut rng = SimRng::new(123);
    let probes: Vec<Ipv4Addr> = (0..10_000)
        .map(|_| Ipv4Addr::from(rng.next_u32()))
        .collect();

    let mut group = c.benchmark_group("longest-prefix-match-20k-table");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("binary-trie", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|a| map.lookup_v4(**a).is_some())
                .count()
        })
    });
    group.bench_function("linear-scan", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|a| {
                    entries
                        .iter()
                        .filter(|(p, _)| p.contains(**a))
                        .max_by_key(|(p, _)| p.len())
                        .is_some()
                })
                .count()
        })
    });
    group.finish();

    c.bench_function("trie-build-20k", |b| {
        b.iter(|| {
            let mut m = PrefixMap::new();
            for (p, v) in &entries {
                m.insert_v4(*p, *v);
            }
            m.len()
        })
    });
}

criterion_group!(benches, bench_lpm);
criterion_main!(benches);
