//! Golden-file test for the `--metrics` JSON-lines report: a small-preset
//! `exp table1 --metrics` run must emit well-formed JSON-lines covering
//! every key listed in `tests/golden/metrics_keys.txt` (discovery
//! per-source tallies, footprint inference, and the traffic analysis).

use std::collections::HashSet;
use std::process::Command;

/// Minimal well-formedness check for one JSON-lines record. The writer is
/// hand-rolled (no serde anywhere in the workspace), so the reader side
/// stays deliberately simple: object braces, balanced quotes, and the
/// key/value pairs we extract below.
fn assert_wellformed(line: &str) {
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "not a JSON object: {line}"
    );
    assert_eq!(
        line.matches('"').count() % 2,
        0,
        "unbalanced quotes: {line}"
    );
}

/// Extract the string value of `"field":"..."` from a flat JSON object.
fn str_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let end = start + line[start..].find('"')?;
    Some(&line[start..end])
}

#[test]
fn metrics_jsonl_covers_golden_keys() {
    let out_file =
        std::env::temp_dir().join(format!("iotmap-obs-metrics-{}.jsonl", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_exp"))
        .args([
            "table1",
            "--preset",
            "small",
            "--metrics",
            out_file.to_str().unwrap(),
        ])
        .output()
        .expect("run exp binary");
    assert!(
        output.status.success(),
        "exp failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let jsonl = std::fs::read_to_string(&out_file).expect("metrics file written");
    let md =
        std::fs::read_to_string(out_file.with_extension("md")).expect("markdown companion written");
    std::fs::remove_file(&out_file).ok();
    std::fs::remove_file(out_file.with_extension("md")).ok();
    assert!(
        md.contains("## Span tree"),
        "markdown companion has the tree"
    );

    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(
        lines.len() > 50,
        "expected a rich report, got {} lines",
        lines.len()
    );
    assert_eq!(
        lines[0], "{\"type\":\"meta\",\"format\":\"iotmap-obs.v2\"}",
        "first line is the format header"
    );

    // Collect `(type, name)` pairs, checking well-formedness as we go.
    let mut emitted: HashSet<(String, String)> = HashSet::new();
    for line in &lines {
        assert_wellformed(line);
        let ty = str_field(line, "type").expect("every line has a type");
        if ty == "meta" {
            continue;
        }
        let name = str_field(line, "name").expect("every record has a name");
        emitted.insert((ty.to_string(), name.to_string()));
        if ty == "span" {
            // Spans also carry a slash-joined path ending in their name.
            let path = str_field(line, "path").expect("span has a path");
            assert!(path.ends_with(name), "path {path:?} ends with {name:?}");
        }
    }

    // Subset check against the golden key list.
    let golden = include_str!("golden/metrics_keys.txt");
    let mut missing = Vec::new();
    for entry in golden.lines() {
        let entry = entry.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        let (ty, name) = entry.split_once(' ').expect("golden line is `type name`");
        if !emitted.contains(&(ty.to_string(), name.to_string())) {
            missing.push(entry.to_string());
        }
    }
    assert!(
        missing.is_empty(),
        "metrics run is missing {} golden key(s):\n{}",
        missing.len(),
        missing.join("\n")
    );
}
