//! Golden tests for the hierarchical trace tree and its Chrome Trace
//! export: the prepare path's span shape is pinned on a fixed-seed small
//! preset, the stage breakdown must account for the prepare span's time
//! (the `prepare_stages_ms` contract), and installing a recorder must
//! never change the pipeline's outputs.

use iotmap_bench::Experiment;
use iotmap_obs::{Registry, SpanNode};
use iotmap_world::WorldConfig;
use std::rc::Rc;

fn traced_prepare(config: &WorldConfig) -> (Experiment, iotmap_obs::RunReport) {
    let registry = Rc::new(Registry::new());
    iotmap_obs::install(registry.clone());
    let exp = Experiment::prepare(config);
    iotmap_obs::uninstall();
    (exp, registry.report())
}

fn find_span<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
    for n in nodes {
        if n.name == name {
            return Some(n);
        }
        if let Some(found) = find_span(&n.children, name) {
            return Some(found);
        }
    }
    None
}

#[test]
fn prepare_span_tree_matches_golden_shape() {
    let (_exp, report) = traced_prepare(&WorldConfig::small(42));
    let prepare = find_span(&report.spans, "experiment.prepare").expect("prepare span");
    let execute = find_span(&report.spans, "experiment.execute").expect("execute span");

    // The two phases' direct children ARE the `prepare_stages_ms`
    // breakdown — pin them exactly so a refactor cannot silently drop a
    // stage from the bench report.
    let stages: Vec<&str> = prepare.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        stages,
        ["super.stage.world", "super.stage.scans"],
        "prepare stage spans changed — update exp bench's prepare_stages_ms docs"
    );
    let engine_stages: Vec<&str> = execute.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        engine_stages,
        [
            "super.stage.discovery",
            "experiment.footprints",
            "super.stage.index",
        ],
        "execute stage spans changed — update exp bench's prepare_stages_ms docs"
    );

    // World generation's phase breakdown, pinned the same way.
    let world = find_span(&prepare.children, "world.generate").expect("world.generate span");
    let phases: Vec<&str> = world.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        phases,
        [
            "world.servers",
            "world.bgp",
            "world.tenants_zones",
            "world.background",
            "world.hitlist",
            "world.passive_dns",
            "world.published",
            "world.isp",
            "world.events",
        ]
    );

    // Scan synthesis carries its two named campaigns.
    let collect = find_span(&prepare.children, "world.collect_scan_data").expect("collect span");
    let campaigns: Vec<&str> = collect.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(campaigns, ["world.censys_sweeps", "world.zgrab_campaign"]);

    // A clean run's supervisor stages record exactly one attempt.
    for child in prepare
        .children
        .iter()
        .chain(execute.children.iter())
        .filter(|c| c.name.starts_with("super.stage."))
    {
        assert_eq!(child.meta_value("attempts"), Some(1), "{}", child.name);
        assert_eq!(child.meta_value("panics"), None, "{}", child.name);
    }
}

#[test]
fn prepare_stage_times_sum_to_prepare_time() {
    let (_exp, report) = traced_prepare(&WorldConfig::small(42));
    for phase in ["experiment.prepare", "experiment.execute"] {
        let span = find_span(&report.spans, phase).unwrap_or_else(|| panic!("{phase} span"));
        let children: u64 = span.children.iter().map(|c| c.nanos).sum();
        assert!(
            children <= span.nanos,
            "{phase}: children ({children}) exceed their parent ({})",
            span.nanos
        );
        // The acceptance bar: the breakdown explains ≥90% of phase time.
        assert!(
            children as f64 >= span.nanos as f64 * 0.9,
            "{phase} stages only cover {:.1}% of the span",
            children as f64 / span.nanos as f64 * 100.0
        );
    }
}

#[test]
fn chrome_trace_export_is_loadable() {
    let (_exp, report) = traced_prepare(&WorldConfig::small(42));
    let trace = report.to_chrome_trace();
    assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(trace.trim_end().ends_with("]}"));
    assert!(trace.contains("\"name\":\"experiment.prepare\""));
    assert!(trace.contains("\"ph\":\"X\""));
    // Every event must be standalone-parseable by a strict JSON loader.
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    assert_eq!(trace.matches('"').count() % 2, 0);
    // The synthesized timeline starts at zero and stays within the run.
    assert!(trace.contains("\"ts\":0.000"));
}

#[test]
fn tracing_does_not_change_outputs() {
    let config = WorldConfig::small(42);
    iotmap_obs::uninstall();
    let untraced = Experiment::prepare(&config).artifacts.canonical_dump();
    let (traced_exp, _) = traced_prepare(&config);
    assert_eq!(
        untraced,
        traced_exp.artifacts.canonical_dump(),
        "installing a recorder changed the pipeline's outputs"
    );
    // Sharded execution with attribution enabled must not change them
    // either (the attributed merge only stamps metadata).
    let parallel_traced =
        iotmap_par::with_threads(4, || traced_prepare(&config).0.artifacts.canonical_dump());
    assert_eq!(untraced, parallel_traced);
}
