//! Overhead guard: instrumentation must cost ~nothing when no recorder is
//! installed, and a no-op recorder must not slow the pipeline either.
//!
//! `Experiment::prepare` at the small preset runs the full world build,
//! scan collection, discovery, and footprint inference — every span and
//! counter site in the hot paths fires (or is skipped) here. We compare
//! the disabled path against a literal no-op `Recorder` and assert the
//! difference stays under 5% (plus a small absolute slack so scheduler
//! jitter on a ~10s workload cannot flake the suite).

use iotmap_bench::Experiment;
use iotmap_obs::Recorder;
use iotmap_world::WorldConfig;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// A recorder that pays the dispatch cost and drops everything.
struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn span_enter(&self, _name: &str) -> usize {
        0
    }
    fn span_exit(&self, _id: usize, _nanos: u64) {}
    fn add(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: i64) {}
    fn observe(&self, _name: &str, _value: u64) {}
}

fn timed_prepare(config: &WorldConfig) -> Duration {
    let t0 = Instant::now();
    let exp = Experiment::prepare(config);
    let elapsed = t0.elapsed();
    // Keep the result alive until after the clock stops, and sanity-check
    // that the run actually did the work.
    assert!(exp.index.len() > 100);
    elapsed
}

#[test]
fn noop_recorder_overhead_is_bounded() {
    let config = WorldConfig::small(42);

    // Warm-up (page cache, allocator) outside the measurement.
    iotmap_obs::uninstall();
    let _ = timed_prepare(&config);

    // Interleave the two configurations and keep the best of each, which
    // cancels one-sided load spikes.
    let mut disabled = Duration::MAX;
    let mut noop = Duration::MAX;
    for _ in 0..2 {
        iotmap_obs::uninstall();
        disabled = disabled.min(timed_prepare(&config));

        iotmap_obs::install(Rc::new(NoopRecorder));
        noop = noop.min(timed_prepare(&config));
        iotmap_obs::uninstall();
    }

    let budget = disabled.mul_f64(1.05) + Duration::from_millis(300);
    assert!(
        noop <= budget,
        "no-op recorder too expensive: disabled={disabled:?} noop={noop:?} budget={budget:?}"
    );
}
