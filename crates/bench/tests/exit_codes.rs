//! Exit-status contract of the `exp` binary: usage errors exit 2, stage
//! failures exit 1 (a clean message, not a panic's 101), success exits 0.

use std::process::Command;

fn exp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp"))
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("iotmap-exit-codes-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn usage_errors_exit_2() {
    let out = exp().arg("no-such-experiment").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = exp()
        .args(["table1", "--faults", "/no/such/faults.conf"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--faults"));

    let out = exp().args(["table1", "--preset", "huge"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Mode flags are validated against the experiment they belong to:
    // `--days` is longitudinal-only, and the message must name the flag.
    let out = exp().args(["table1", "--days", "7"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--days"));

    // `--scale` is bench-only, and the factor must be a positive integer.
    let out = exp().args(["table1", "--scale", "4"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scale"));
    let out = exp().args(["bench", "--scale", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scale"));
    let out = exp().args(["bench", "--scale", "lots"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("scale"));

    // `--file` and `--matrix` are scenario-only.
    let out = exp().args(["table1", "--file", "x.scn"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--file"));
    let out = exp()
        .args(["longitudinal", "--matrix", "scenarios"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--matrix"));

    // The scenario experiment needs a source of scenarios, the file must
    // parse, and a matrix directory must contain at least one *.scn.
    let out = exp().arg("scenario").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--file") && stderr.contains("--matrix"),
        "stderr: {stderr}"
    );

    let dir = scratch("scn");
    let bad = dir.join("bad.scn");
    std::fs::write(
        &bad,
        "[scenario]\nname = x\n[cert_storm]\nprovider = nope\nday = 1\nreissue = 0.5\n",
    )
    .unwrap();
    let out = exp()
        .args(["scenario", "--file", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown provider"));

    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = exp()
        .args(["scenario", "--matrix", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no *.scn"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stage_failures_exit_1_with_a_clear_message() {
    // A fault plan whose kill switch fires right after the first stage:
    // the pipeline returns a stage error and exp must exit 1 — not 0, and
    // not a panic's 101.
    let dir = scratch("kill");
    let faults = dir.join("kill.conf");
    std::fs::write(&faults, "crash.kill_after_stage = world\n").unwrap();
    let out = exp()
        .args(["table1", "--preset", "small"])
        .args(["--faults", faults.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pipeline failed"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn successful_runs_exit_0_and_checkpoint_resume_works_end_to_end() {
    let dir = scratch("ckpt");
    let run_dir = dir.join("run");
    let out = exp()
        .args(["table1", "--preset", "small"])
        .args(["--checkpoints", run_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        std::fs::read_dir(&run_dir).unwrap().count() > 0,
        "checkpoints were written"
    );
    let first = String::from_utf8_lossy(&out.stdout).to_string();

    let out = exp()
        .args(["table1", "--preset", "small"])
        .args(["--resume", run_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        first,
        "a resumed run must print the same tables"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
