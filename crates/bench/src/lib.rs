//! # iotmap-bench — the experiment harness
//!
//! Shared plumbing for regenerating every table and figure of the paper.
//! World-building, discovery, footprints, and the traffic passes all live
//! behind [`iotmap::Pipeline`]; this crate wraps its [`RunArtifacts`] with
//! the experiment-only extras (anonymized labels) and the tiny
//! dependency-free CLI parser. See `src/bin/exp.rs` for the experiment
//! entry point and `benches/` for the Criterion micro-benchmarks.

pub use iotmap::{Pipeline, RunArtifacts, SCANNER_THRESHOLD};

use iotmap_faults::FaultPlan;
use iotmap_netflow::FlowSink;
use iotmap_nettypes::Error;
use iotmap_traffic::Anonymization;
use iotmap_world::WorldConfig;
use std::ops::Deref;

/// A fully prepared experiment: the pipeline's [`RunArtifacts`] plus the
/// paper's anonymization scheme. Derefs to [`RunArtifacts`], so the world,
/// scans, discovery, index, and traffic passes are all reachable directly
/// (`exp.discovery`, `exp.contact_pass(..)`, …).
pub struct Experiment {
    pub artifacts: RunArtifacts,
    pub anonymization: Anonymization,
}

impl Deref for Experiment {
    type Target = RunArtifacts;

    fn deref(&self) -> &RunArtifacts {
        &self.artifacts
    }
}

impl Experiment {
    /// Build everything for a configuration, panicking on invalid built-in
    /// patterns (which would be a bug, not an input error). This is the
    /// §3 + §4 part of the study (discovery, validation, footprints);
    /// traffic passes are separate because different experiments need
    /// different sinks.
    ///
    /// Binaries should reach for [`Experiment::try_prepare`] instead and
    /// exit 1 with the error message (the `exp` contract for stage
    /// failures); this panicking form is for tests and doc examples where
    /// a preparation failure is a bug by construction.
    pub fn prepare(config: &WorldConfig) -> Experiment {
        Self::try_prepare(config).unwrap_or_else(|e| panic!("experiment preparation failed: {e}"))
    }

    /// [`Experiment::prepare`] under a fault plan: every synthetic data
    /// source suffers the plan's seeded faults and the methodology
    /// degrades gracefully ([`FaultPlan::none`] is byte-identical to
    /// [`Experiment::prepare`]). Panics on failure — binaries should use
    /// [`Experiment::try_prepare_with_faults`] and exit 1 instead.
    pub fn prepare_with_faults(config: &WorldConfig, faults: FaultPlan) -> Experiment {
        Self::try_prepare_with_faults(config, faults)
            .unwrap_or_else(|e| panic!("experiment preparation failed: {e}"))
    }

    /// [`Experiment::prepare`], but surfacing pipeline errors. Runs on
    /// the calling thread's current `iotmap_par` budget (the `exp` binary
    /// sets it from `--threads` before preparing).
    pub fn try_prepare(config: &WorldConfig) -> Result<Experiment, Error> {
        Self::try_prepare_with_faults(config, FaultPlan::none())
    }

    /// [`Experiment::prepare_with_faults`], surfacing pipeline errors.
    pub fn try_prepare_with_faults(
        config: &WorldConfig,
        faults: FaultPlan,
    ) -> Result<Experiment, Error> {
        Self::try_prepare_opts(config, faults, None, None, None)
    }

    /// The full fallible constructor: faults plus optional checkpointing
    /// and the memoized world cache. `resume` wins over `checkpoints` when
    /// both are given (a resumed run re-checkpoints into the same
    /// directory anyway); see [`Pipeline::cache`] for how the cache
    /// composes with both.
    pub fn try_prepare_opts(
        config: &WorldConfig,
        faults: FaultPlan,
        checkpoints: Option<&str>,
        resume: Option<&str>,
        cache: Option<&str>,
    ) -> Result<Experiment, Error> {
        let mut pipeline = Pipeline::new(config.clone())
            .threads(iotmap_par::threads())
            .faults(faults);
        if let Some(dir) = resume {
            pipeline = pipeline.resume(dir);
        } else if let Some(dir) = checkpoints {
            pipeline = pipeline.checkpoints(dir);
        }
        if let Some(dir) = cache {
            pipeline = pipeline.cache(dir);
        }
        let artifacts = pipeline.run()?;
        Ok(Experiment {
            artifacts,
            anonymization: Anonymization::paper(),
        })
    }

    /// Anonymized label for a provider name.
    pub fn label(&self, provider: &str) -> &'static str {
        self.anonymization.label(provider)
    }
}

/// A sink adapter so `TrafficSimulator` can feed any `FlowSink` from this
/// crate's experiments without exposing world internals.
pub struct NullSink;

impl FlowSink for NullSink {
    fn accept(&mut self, _record: &iotmap_netflow::FlowRecord) {}
}

/// Parse `--seed`, `--scale` style CLI options (tiny, dependency-free).
pub struct CliOptions {
    pub seed: u64,
    pub preset: String,
    pub experiment: String,
    /// Directory to persist CSV artifacts into (`--out DIR`).
    pub out_dir: Option<String>,
    /// Print the instrumented span tree to stderr at exit (`--trace`).
    pub trace: bool,
    /// Write metrics as JSON-lines to this file at exit (`--metrics FILE`).
    pub metrics: Option<String>,
    /// Write the span tree as Chrome Trace Event Format JSON to this file
    /// at exit (`--trace-out FILE`) — loadable in `chrome://tracing` and
    /// Perfetto.
    pub trace_out: Option<String>,
    /// For `bench`: fail (exit 1) when any tracked stage regresses more
    /// than 25% vs the last comparable `BENCH_history.jsonl` entry
    /// (`--gate`).
    pub gate: bool,
    /// For `profile`: how many spans the self-time table lists
    /// (`--top N`, default 15).
    pub top: usize,
    /// For `profile`: skip the traffic passes so the invocation stays
    /// fast enough for `scripts/check.sh` (`--smoke`).
    pub smoke: bool,
    /// For `longitudinal`: how many days to roll the run forward
    /// (`--days N`, default 7).
    pub days: usize,
    /// For `bench`: population multiplier for the scaled phases
    /// (`--scale N`, default 1). Drives the out-of-core corpus
    /// replication and the replicated ISP run; `1` keeps the bench at
    /// the world's native size.
    pub scale: u64,
    /// Perf-history file override (`--history FILE`); defaults to
    /// `BENCH_history.jsonl` under `--out` (or the working directory).
    pub history: Option<String>,
    /// Worker-thread budget for the parallel stages (`--threads N`, 0 =
    /// all cores; defaults to `IOTMAP_THREADS` or 1). Output is
    /// byte-identical at any value.
    pub threads: usize,
    /// Fault plan selector (`--faults none|light|heavy|FILE`); a file is
    /// parsed with [`FaultPlan::parse_config`].
    pub faults: String,
    /// Baseline `BENCH_pipeline.json` to compare against
    /// (`--baseline FILE`, only meaningful for the `bench` experiment).
    pub baseline: Option<String>,
    /// Checkpoint each completed pipeline stage into this run directory
    /// (`--checkpoints DIR`).
    pub checkpoints: Option<String>,
    /// Resume from checkpoints in this run directory (`--resume DIR`);
    /// implies checkpointing the stages that still have to run.
    pub resume: Option<String>,
    /// Memoized world cache directory (`--cache DIR`; defaults to
    /// `IOTMAP_CACHE` when set). See [`Pipeline::cache`] for how the
    /// cache composes with checkpoints and resume.
    pub cache: Option<String>,
    /// For `scenario`: one scenario file to run (`--file F`).
    pub file: Option<String>,
    /// For `scenario`: run every `*.scn` file in a directory
    /// (`--matrix DIR`).
    pub matrix: Option<String>,
}

impl CliOptions {
    /// Parse from `std::env::args`. Usage:
    /// `exp <experiment|all> [--seed N] [--preset small|medium|paper]`.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<CliOptions, String> {
        let mut seed = 42u64;
        let mut preset = "paper".to_string();
        let mut experiment = None;
        let mut out_dir = None;
        let mut trace = false;
        let mut metrics = None;
        let mut trace_out = None;
        let mut gate = false;
        let mut top = 15usize;
        let mut smoke = false;
        let mut days = 7usize;
        let mut scale = 1u64;
        let mut history = None;
        // Mode-specific flags actually given, for the post-parse check
        // that they match the selected experiment.
        let mut mode_flags: Vec<&'static str> = Vec::new();
        let mut threads = std::env::var("IOTMAP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1usize);
        let mut faults = "none".to_string();
        let mut baseline = None;
        let mut checkpoints = None;
        let mut resume = None;
        let mut cache = std::env::var("IOTMAP_CACHE")
            .ok()
            .filter(|v| !v.trim().is_empty());
        let mut file = None;
        let mut matrix = None;
        let mut it = args.skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seed" => {
                    seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?;
                }
                "--preset" => {
                    preset = it.next().ok_or("--preset needs a value")?;
                }
                "--out" => {
                    out_dir = Some(it.next().ok_or("--out needs a directory")?);
                }
                "--trace" => {
                    trace = true;
                }
                "--metrics" => {
                    metrics = Some(it.next().ok_or("--metrics needs a file path")?);
                }
                "--trace-out" => {
                    trace_out = Some(it.next().ok_or("--trace-out needs a file path")?);
                }
                "--gate" => {
                    gate = true;
                    mode_flags.push("--gate");
                }
                "--top" => {
                    top = it
                        .next()
                        .ok_or("--top needs a value")?
                        .parse()
                        .map_err(|e| format!("bad top count: {e}"))?;
                    mode_flags.push("--top");
                }
                "--smoke" => {
                    smoke = true;
                    mode_flags.push("--smoke");
                }
                "--days" => {
                    days = it
                        .next()
                        .ok_or("--days needs a value")?
                        .parse()
                        .map_err(|e| format!("bad day count: {e}"))?;
                    if days == 0 {
                        return Err("--days must be at least 1".to_string());
                    }
                    mode_flags.push("--days");
                }
                "--scale" => {
                    scale = it
                        .next()
                        .ok_or("--scale needs a value")?
                        .parse()
                        .map_err(|e| format!("bad scale factor: {e}"))?;
                    if scale == 0 {
                        return Err("--scale must be at least 1".to_string());
                    }
                    mode_flags.push("--scale");
                }
                "--history" => {
                    history = Some(it.next().ok_or("--history needs a file path")?);
                    mode_flags.push("--history");
                }
                "--threads" => {
                    threads = it
                        .next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|e| format!("bad thread count: {e}"))?;
                }
                "--faults" => {
                    faults = it.next().ok_or("--faults needs a value")?;
                }
                "--baseline" => {
                    baseline = Some(it.next().ok_or("--baseline needs a file path")?);
                    mode_flags.push("--baseline");
                }
                "--checkpoints" => {
                    checkpoints = Some(it.next().ok_or("--checkpoints needs a directory")?);
                }
                "--resume" => {
                    resume = Some(it.next().ok_or("--resume needs a directory")?);
                }
                "--cache" => {
                    cache = Some(it.next().ok_or("--cache needs a directory")?);
                }
                "--file" => {
                    file = Some(it.next().ok_or("--file needs a scenario file path")?);
                    mode_flags.push("--file");
                }
                "--matrix" => {
                    matrix = Some(it.next().ok_or("--matrix needs a directory")?);
                    mode_flags.push("--matrix");
                }
                "--help" | "-h" => return Err(usage()),
                other if experiment.is_none() && !other.starts_with('-') => {
                    experiment = Some(other.to_string());
                }
                other => return Err(format!("unknown argument {other:?}\n{}", usage())),
            }
        }
        let experiment = experiment.ok_or_else(usage)?;
        // Mode-specific flags are rejected — not silently ignored — when
        // the selected experiment cannot honour them.
        for flag in mode_flags {
            let allowed: &[&str] = match flag {
                "--gate" | "--history" => &["bench", "longitudinal"],
                "--baseline" => &["bench"],
                "--top" | "--smoke" => &["profile"],
                "--days" => &["longitudinal"],
                "--scale" => &["bench"],
                "--file" | "--matrix" => &["scenario"],
                _ => unreachable!("unlisted mode flag {flag}"),
            };
            if !allowed.contains(&experiment.as_str()) {
                return Err(format!(
                    "{flag} is only valid for the {} experiment{}, not {experiment:?}\n{}",
                    allowed.join("/"),
                    if allowed.len() > 1 { "s" } else { "" },
                    usage()
                ));
            }
        }
        Ok(CliOptions {
            seed,
            preset,
            experiment,
            out_dir,
            trace,
            metrics,
            trace_out,
            gate,
            top,
            smoke,
            days,
            scale,
            history,
            threads,
            faults,
            baseline,
            checkpoints,
            resume,
            cache,
            file,
            matrix,
        })
    }

    /// The world configuration the options select.
    pub fn config(&self) -> Result<WorldConfig, String> {
        match self.preset.as_str() {
            "small" => Ok(WorldConfig::small(self.seed)),
            "medium" => Ok(WorldConfig::medium(self.seed)),
            "paper" => Ok(WorldConfig::paper(self.seed)),
            other => Err(format!("unknown preset {other:?} (small|medium|paper)")),
        }
    }

    /// The fault plan the options select: a preset name
    /// (`none`/`light`/`heavy`) or a path to a `key = value` config file
    /// understood by [`FaultPlan::parse_config`].
    pub fn fault_plan(&self) -> Result<FaultPlan, String> {
        if let Some(plan) = FaultPlan::preset(&self.faults) {
            return Ok(plan);
        }
        let text = std::fs::read_to_string(&self.faults).map_err(|e| {
            format!(
                "--faults {:?}: not a preset and unreadable: {e}",
                self.faults
            )
        })?;
        FaultPlan::parse_config(&text).map_err(|e| format!("--faults {:?}: {e}", self.faults))
    }
}

fn usage() -> String {
    "usage: exp <experiment|all> [--seed N] [--preset small|medium|paper] [--out DIR]\n\
     \x20          [--trace] [--metrics FILE] [--trace-out FILE] [--threads N]\n\
     \x20          [--faults none|light|heavy|FILE] [--baseline BENCH_pipeline.json]\n\
     \x20          [--checkpoints DIR] [--resume DIR] [--cache DIR] [--history FILE]\n\
     \x20          [--gate] [--top N] [--smoke] [--days N] [--scale N]\n\
     \x20          [--file SCENARIO.scn] [--matrix DIR]\n\
     experiments: table1 fig3 fig4 fig5..fig16 vantage validation shared \
     diversity ports-observed consistency sec62-bgp sec62-blocklist \
     outage-deps cascade monitor ablation-coverage ablation-hitlist robustness \
     bench crash-recovery profile longitudinal scenario"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parsing() {
        let opts = CliOptions::parse(
            ["exp", "table1", "--seed", "7", "--preset", "small"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.experiment, "table1");
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.preset, "small");
        assert!(opts.config().is_ok());
        assert!(!opts.trace);
        assert!(opts.metrics.is_none());
        // The default honours IOTMAP_THREADS (the CI matrix sets it).
        let default_threads = std::env::var("IOTMAP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1usize);
        assert_eq!(opts.threads, default_threads);

        let opts = CliOptions::parse(
            [
                "exp",
                "table1",
                "--trace",
                "--metrics",
                "m.jsonl",
                "--threads",
                "4",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(opts.trace);
        assert_eq!(opts.metrics.as_deref(), Some("m.jsonl"));
        assert_eq!(opts.threads, 4);
    }

    #[test]
    fn cli_profiling_flags() {
        let opts = CliOptions::parse(["exp", "profile"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(opts.experiment, "profile");
        assert!(opts.trace_out.is_none());
        assert!(!opts.gate);
        assert_eq!(opts.top, 15);
        assert!(!opts.smoke);
        assert!(opts.history.is_none());

        let opts = CliOptions::parse(
            [
                "exp",
                "bench",
                "--trace-out",
                "t.json",
                "--gate",
                "--history",
                "h.jsonl",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert!(opts.gate);
        assert_eq!(opts.history.as_deref(), Some("h.jsonl"));

        let opts = CliOptions::parse(
            ["exp", "profile", "--top", "5", "--smoke"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.top, 5);
        assert!(opts.smoke);

        assert!(CliOptions::parse(
            ["exp", "profile", "--top", "many"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
    }

    #[test]
    fn cli_longitudinal_flags() {
        let opts =
            CliOptions::parse(["exp", "longitudinal"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(opts.days, 7);

        let opts = CliOptions::parse(
            ["exp", "longitudinal", "--days", "3", "--gate"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.days, 3);
        assert!(opts.gate);

        assert!(CliOptions::parse(
            ["exp", "longitudinal", "--days", "0"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
        assert!(CliOptions::parse(
            ["exp", "longitudinal", "--days", "soon"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
    }

    #[test]
    fn cli_scale_flag() {
        let opts = CliOptions::parse(["exp", "bench"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(opts.scale, 1, "native size by default");

        let opts = CliOptions::parse(
            ["exp", "bench", "--scale", "16"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.scale, 16);

        // Zero and non-numeric factors are rejected with a message that
        // names the flag.
        for bad in [
            &["exp", "bench", "--scale", "0"][..],
            &["exp", "bench", "--scale", "lots"][..],
        ] {
            let err = CliOptions::parse(bad.iter().map(|s| s.to_string()))
                .err()
                .unwrap_or_else(|| panic!("{bad:?} must be rejected"));
            assert!(err.contains("scale"), "{bad:?}: got: {err}");
        }
        assert!(
            CliOptions::parse(["exp", "bench", "--scale"].iter().map(|s| s.to_string())).is_err()
        );
    }

    #[test]
    fn cli_scenario_flags() {
        let opts = CliOptions::parse(["exp", "scenario"].iter().map(|s| s.to_string())).unwrap();
        assert!(opts.file.is_none());
        assert!(opts.matrix.is_none());

        let opts = CliOptions::parse(
            ["exp", "scenario", "--file", "scenarios/cert_storm.scn"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.file.as_deref(), Some("scenarios/cert_storm.scn"));

        let opts = CliOptions::parse(
            ["exp", "scenario", "--matrix", "scenarios"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.matrix.as_deref(), Some("scenarios"));

        assert!(
            CliOptions::parse(["exp", "scenario", "--file"].iter().map(|s| s.to_string())).is_err()
        );
        assert!(CliOptions::parse(
            ["exp", "scenario", "--matrix"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
    }

    #[test]
    fn cli_rejects_mode_flags_on_other_experiments() {
        // A mode-specific flag handed to an experiment that cannot honour
        // it must be an error, not a silent no-op.
        let cases: &[&[&str]] = &[
            &["exp", "table1", "--days", "7"],
            &["exp", "bench", "--days", "7"],
            &["exp", "bench", "--top", "5"],
            &["exp", "bench", "--smoke"],
            &["exp", "table1", "--gate"],
            &["exp", "profile", "--gate"],
            &["exp", "profile", "--baseline", "b.json"],
            &["exp", "longitudinal", "--baseline", "b.json"],
            &["exp", "table1", "--history", "h.jsonl"],
            &["exp", "table1", "--scale", "4"],
            &["exp", "profile", "--scale", "4"],
            &["exp", "longitudinal", "--scale", "4"],
            &["exp", "table1", "--file", "s.scn"],
            &["exp", "bench", "--file", "s.scn"],
            &["exp", "table1", "--matrix", "scenarios"],
            &["exp", "longitudinal", "--matrix", "scenarios"],
        ];
        for case in cases {
            let err = CliOptions::parse(case.iter().map(|s| s.to_string()))
                .err()
                .unwrap_or_else(|| panic!("{case:?} must be rejected"));
            assert!(
                err.contains(case[2]),
                "{case:?}: error must name the offending flag, got: {err}"
            );
        }

        // The universal flags stay universal.
        assert!(CliOptions::parse(
            ["exp", "table1", "--trace-out", "t.json", "--threads", "2"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_ok());
    }

    #[test]
    fn cli_fault_plans() {
        let opts = CliOptions::parse(["exp", "table1"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(opts.faults, "none");
        assert!(!opts.fault_plan().unwrap().is_active());

        let opts = CliOptions::parse(
            ["exp", "table1", "--faults", "heavy"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.fault_plan().unwrap(), FaultPlan::heavy());

        let opts = CliOptions::parse(
            ["exp", "table1", "--faults", "/no/such/file.conf"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(opts.fault_plan().is_err());
    }

    #[test]
    fn cli_checkpoint_flags() {
        let opts = CliOptions::parse(["exp", "table1"].iter().map(|s| s.to_string())).unwrap();
        assert!(opts.checkpoints.is_none());
        assert!(opts.resume.is_none());

        let opts = CliOptions::parse(
            ["exp", "table1", "--checkpoints", "/tmp/run1"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.checkpoints.as_deref(), Some("/tmp/run1"));

        let opts = CliOptions::parse(
            ["exp", "table1", "--resume", "/tmp/run1"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.resume.as_deref(), Some("/tmp/run1"));

        assert!(
            CliOptions::parse(["exp", "table1", "--resume"].iter().map(|s| s.to_string())).is_err()
        );

        let opts = CliOptions::parse(
            ["exp", "table1", "--cache", "/tmp/wc"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.cache.as_deref(), Some("/tmp/wc"));
        assert!(
            CliOptions::parse(["exp", "table1", "--cache"].iter().map(|s| s.to_string())).is_err()
        );
    }

    #[test]
    fn cli_rejects_bad_input() {
        assert!(CliOptions::parse(["exp"].iter().map(|s| s.to_string())).is_err());
        assert!(CliOptions::parse(["exp", "x", "--bogus"].iter().map(|s| s.to_string())).is_err());
        assert!(CliOptions::parse(
            ["exp", "x", "--threads", "no"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
        let opts = CliOptions::parse(
            ["exp", "x", "--preset", "huge"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(opts.config().is_err());
    }

    #[test]
    fn experiment_prepare_small_world() {
        let exp = Experiment::prepare(&WorldConfig::small(42));
        assert_eq!(exp.discovery.per_provider().count(), 16);
        assert!(exp.index.len() > 100);
        // Google's shared HTTPS set must have been pruned from the index.
        let g = exp.index.provider_index("google").unwrap();
        let google_indexed = exp.index.ips_of(g).len();
        let google_discovered = exp.discovery.get("google").unwrap().ips.len();
        assert!(google_indexed < google_discovered);
        assert!(!exp.shared_ips.is_empty());
    }
}
