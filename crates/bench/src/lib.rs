//! # iotmap-bench — the experiment harness
//!
//! Shared plumbing for regenerating every table and figure of the paper:
//! build a world, run the measurement instruments and the discovery
//! pipeline, assemble the traffic analyses, and hand each experiment
//! binary exactly the inputs it needs. See `src/bin/exp.rs` for the
//! experiment entry point and `benches/` for the Criterion
//! micro-benchmarks.

use iotmap_core::{
    DataSources, DiscoveryPipeline, DiscoveryResult, Footprint, FootprintInference,
    PatternRegistry, SharedIpClassifier,
};
use iotmap_netflow::{FlowSink, LineId};
use iotmap_nettypes::StudyPeriod;
use iotmap_traffic::{
    AnalysisReport, AnalysisSink, Anonymization, ContactSink, IpIndex, ScannerAnalysis,
};
use iotmap_world::{CollectedScans, TrafficSimulator, World, WorldConfig};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// The scanner-exclusion threshold the paper settles on (§5.2).
pub const SCANNER_THRESHOLD: usize = 100;

/// A fully prepared experiment: world + collected data + pipeline output.
pub struct Experiment {
    pub world: World,
    pub scans: CollectedScans,
    pub discovery: DiscoveryResult,
    pub footprints: HashMap<String, Footprint>,
    pub shared_ips: HashSet<IpAddr>,
    pub index: IpIndex,
    pub anonymization: Anonymization,
}

impl Experiment {
    /// Build everything for a configuration. This is the §3 + §4 part of
    /// the study (discovery, validation, footprints); traffic passes are
    /// separate because different experiments need different sinks.
    pub fn prepare(config: &WorldConfig) -> Experiment {
        let _span = iotmap_obs::span!("experiment.prepare");
        let world = World::generate(config);
        let period = config.study_period;
        let scans = world.collect_scan_data(period);
        let prober = iotmap_world::view::WorldLatencyProber { world: &world };
        let discovery = {
            let sources = DataSources {
                censys: &scans.censys,
                zgrab_v6: &scans.zgrab_v6,
                passive_dns: &world.passive_dns,
                zones: &world.zones,
                routeviews: &world.bgp,
                latency: Some(&prober),
            };
            let pipeline = DiscoveryPipeline::new(PatternRegistry::paper_defaults());
            pipeline.run(&sources, period)
        };

        // Footprints and shared-IP classification.
        let fp_span = iotmap_obs::span!("experiment.footprints");
        let registry = PatternRegistry::paper_defaults();
        let classifier = SharedIpClassifier::new(&registry);
        let mut footprints = HashMap::new();
        let mut shared_ips = HashSet::new();
        {
            let sources = DataSources {
                censys: &scans.censys,
                zgrab_v6: &scans.zgrab_v6,
                passive_dns: &world.passive_dns,
                zones: &world.zones,
                routeviews: &world.bgp,
                latency: Some(&prober),
            };
            for (name, disc) in discovery.per_provider() {
                footprints.insert(name.to_string(), FootprintInference::infer(disc, &sources));
                let (_, shared) = classifier.split_provider(disc, &world.passive_dns, period);
                shared_ips.extend(shared.keys().copied());
            }
        }
        fp_span.exit();

        let index = IpIndex::build(&discovery, &footprints, &shared_ips);
        Experiment {
            world,
            scans,
            discovery,
            footprints,
            shared_ips,
            index,
            anonymization: Anonymization::paper(),
        }
    }

    /// Borrow fresh data sources (for analyses that need them later).
    pub fn sources(&self) -> DataSources<'_> {
        DataSources {
            censys: &self.scans.censys,
            zgrab_v6: &self.scans.zgrab_v6,
            passive_dns: &self.world.passive_dns,
            zones: &self.world.zones,
            routeviews: &self.world.bgp,
            latency: None,
        }
    }

    /// First traffic pass: per-line backend contact sets over a period.
    pub fn contact_pass(&self, period: StudyPeriod) -> ContactSink<'_> {
        let _span = iotmap_obs::span!("traffic.contact_pass");
        let sim = TrafficSimulator::new(&self.world);
        let mut sink = ContactSink::new(&self.index);
        sim.run(period, &mut sink);
        sink
    }

    /// Scanner exclusion at the paper's threshold.
    pub fn excluded_lines(&self, contacts: &ContactSink<'_>) -> HashSet<LineId> {
        let _span = iotmap_obs::span!("traffic.scanner_exclusion");
        let analysis = ScannerAnalysis::new(&self.index, contacts);
        let flagged = analysis.flagged_lines(SCANNER_THRESHOLD);
        iotmap_obs::gauge!("traffic.scanner.lines_excluded", flagged.len() as i64);
        flagged
    }

    /// Second traffic pass: the full analysis report with scanners
    /// excluded.
    pub fn analysis_pass(&self, period: StudyPeriod, excluded: &HashSet<LineId>) -> AnalysisReport {
        let _span = iotmap_obs::span!("traffic.analysis_pass");
        let sim = TrafficSimulator::new(&self.world);
        let mut sink = AnalysisSink::new(&self.index, excluded, period);
        sim.run(period, &mut sink);
        sink.into_report()
    }

    /// Convenience: contact pass → exclusion → analysis pass.
    pub fn full_traffic_analysis(&self, period: StudyPeriod) -> (AnalysisReport, HashSet<LineId>) {
        let contacts = self.contact_pass(period);
        let excluded = self.excluded_lines(&contacts);
        (self.analysis_pass(period, &excluded), excluded)
    }

    /// Anonymized label for a provider name.
    pub fn label(&self, provider: &str) -> &'static str {
        self.anonymization.label(provider)
    }
}

/// A sink adapter so `TrafficSimulator` can feed any `FlowSink` from this
/// crate's experiments without exposing world internals.
pub struct NullSink;

impl FlowSink for NullSink {
    fn accept(&mut self, _record: &iotmap_netflow::FlowRecord) {}
}

/// Parse `--seed`, `--scale` style CLI options (tiny, dependency-free).
pub struct CliOptions {
    pub seed: u64,
    pub preset: String,
    pub experiment: String,
    /// Directory to persist CSV artifacts into (`--out DIR`).
    pub out_dir: Option<String>,
    /// Print the instrumented span tree to stderr at exit (`--trace`).
    pub trace: bool,
    /// Write metrics as JSON-lines to this file at exit (`--metrics FILE`).
    pub metrics: Option<String>,
}

impl CliOptions {
    /// Parse from `std::env::args`. Usage:
    /// `exp <experiment|all> [--seed N] [--preset small|medium|paper]`.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<CliOptions, String> {
        let mut seed = 42u64;
        let mut preset = "paper".to_string();
        let mut experiment = None;
        let mut out_dir = None;
        let mut trace = false;
        let mut metrics = None;
        let mut it = args.skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seed" => {
                    seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?;
                }
                "--preset" => {
                    preset = it.next().ok_or("--preset needs a value")?;
                }
                "--out" => {
                    out_dir = Some(it.next().ok_or("--out needs a directory")?);
                }
                "--trace" => {
                    trace = true;
                }
                "--metrics" => {
                    metrics = Some(it.next().ok_or("--metrics needs a file path")?);
                }
                "--help" | "-h" => return Err(usage()),
                other if experiment.is_none() && !other.starts_with('-') => {
                    experiment = Some(other.to_string());
                }
                other => return Err(format!("unknown argument {other:?}\n{}", usage())),
            }
        }
        Ok(CliOptions {
            seed,
            preset,
            experiment: experiment.ok_or_else(usage)?,
            out_dir,
            trace,
            metrics,
        })
    }

    /// The world configuration the options select.
    pub fn config(&self) -> Result<WorldConfig, String> {
        match self.preset.as_str() {
            "small" => Ok(WorldConfig::small(self.seed)),
            "medium" => Ok(WorldConfig::medium(self.seed)),
            "paper" => Ok(WorldConfig::paper(self.seed)),
            other => Err(format!("unknown preset {other:?} (small|medium|paper)")),
        }
    }
}

fn usage() -> String {
    "usage: exp <experiment|all> [--seed N] [--preset small|medium|paper] [--out DIR]\n\
     \x20          [--trace] [--metrics FILE]\n\
     experiments: table1 fig3 fig4 fig5..fig16 vantage validation shared \
     diversity ports-observed consistency sec62-bgp sec62-blocklist \
     outage-deps cascade monitor ablation-coverage ablation-hitlist"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parsing() {
        let opts = CliOptions::parse(
            ["exp", "table1", "--seed", "7", "--preset", "small"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.experiment, "table1");
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.preset, "small");
        assert!(opts.config().is_ok());
        assert!(!opts.trace);
        assert!(opts.metrics.is_none());

        let opts = CliOptions::parse(
            ["exp", "table1", "--trace", "--metrics", "m.jsonl"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(opts.trace);
        assert_eq!(opts.metrics.as_deref(), Some("m.jsonl"));
    }

    #[test]
    fn cli_rejects_bad_input() {
        assert!(CliOptions::parse(["exp"].iter().map(|s| s.to_string())).is_err());
        assert!(CliOptions::parse(["exp", "x", "--bogus"].iter().map(|s| s.to_string())).is_err());
        let opts = CliOptions::parse(
            ["exp", "x", "--preset", "huge"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(opts.config().is_err());
    }

    #[test]
    fn experiment_prepare_small_world() {
        let exp = Experiment::prepare(&WorldConfig::small(42));
        assert_eq!(exp.discovery.per_provider().count(), 16);
        assert!(exp.index.len() > 100);
        // Google's shared HTTPS set must have been pruned from the index.
        let g = exp.index.provider_index("google").unwrap();
        let google_indexed = exp.index.ips_of(g).len();
        let google_discovered = exp.discovery.get("google").unwrap().ips.len();
        assert!(google_indexed < google_discovered);
        assert!(!exp.shared_ips.is_empty());
    }
}
