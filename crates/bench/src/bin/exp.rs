//! `exp` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p iotmap-bench --bin exp -- all
//! cargo run --release -p iotmap-bench --bin exp -- fig13 --preset paper --seed 42
//! ```
//!
//! Output is plain text: the same rows/series the paper's tables and
//! figures report. EXPERIMENTS.md records a reference run.

use iotmap_bench::{CliOptions, Experiment, SCANNER_THRESHOLD};
use iotmap_core::disruptions::{BlocklistAudit, IncidentAudit, IncidentKind, RouteIncident};
use iotmap_core::report::{pct, table1, TextTable};
use iotmap_core::{
    Characterizer, GroundTruthReport, ObservedPorts, PatternRegistry, Source, StabilityAnalysis,
};
use iotmap_nettypes::{Date, StudyPeriod};
use iotmap_traffic::{
    analysis::BUCKET_LABELS, cascade_impact, source_ablation, visibility_per_provider, RegionGroup,
    ScannerAnalysis,
};
use iotmap_world::{BgpStreamEventKind, WorldConfig};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::IpAddr;

/// Optional artifact directory (`--out DIR`): tables are also written as
/// CSV files there, one per experiment.
static OUT_DIR: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();

/// Borrow the shared traffic pass, or exit with a clear error if the
/// dispatch table and `needs_traffic` ever disagree (better than a bare
/// `expect` panic deep in an experiment).
fn require_traffic<'a, T>(traffic: &'a Option<T>, experiment: &str) -> &'a T {
    traffic.as_ref().unwrap_or_else(|| {
        eprintln!(
            "internal error: experiment {experiment:?} needs the shared traffic pass, \
             but it was not prepared — fix the `needs_traffic` experiment list in exp.rs"
        );
        std::process::exit(2);
    })
}

/// Look up one provider's discovery, or exit with a clear error. Every
/// registry provider gets a (possibly empty) entry, so a miss means the
/// registry and the prepared discovery diverged — a bug, not user input.
fn require_provider<'a>(exp: &'a Experiment, name: &str) -> &'a iotmap_core::ProviderDiscovery {
    exp.discovery.require(name).unwrap_or_else(|e| {
        eprintln!("internal error: {e}");
        std::process::exit(2);
    })
}

/// Prepare an experiment, or exit(1) with a clear message when a pipeline
/// stage fails — experiments must never leave via a panic's exit code.
fn prepare_or_die(
    config: &WorldConfig,
    faults: iotmap_faults::FaultPlan,
    cache: Option<&str>,
) -> Experiment {
    Experiment::try_prepare_opts(config, faults, None, None, cache).unwrap_or_else(|e| {
        eprintln!("pipeline failed: {e}");
        std::process::exit(1);
    })
}

/// Print a table and, when `--out` was given, persist it as CSV.
fn emit_table(name: &str, t: &TextTable) {
    println!("{}", t.render());
    if let Some(Some(dir)) = OUT_DIR.get().map(|d| d.as_ref()) {
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|_| std::fs::write(dir.join(format!("{name}.csv")), t.to_csv()))
        {
            eprintln!("# failed to write {name}.csv: {e}");
        } else {
            eprintln!("# wrote {}/{name}.csv", dir.display());
        }
    }
}

fn main() {
    let opts = match CliOptions::parse(std::env::args()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let config = match opts.config() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let fault_plan = match opts.fault_plan() {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    OUT_DIR
        .set(opts.out_dir.clone().map(std::path::PathBuf::from))
        .expect("OUT_DIR set once");

    // Worker-thread budget for the parallel pipeline stages. Output is
    // byte-identical at any value; this only moves wall-clock time.
    iotmap_par::set_threads(opts.threads);

    // The discovery benchmark is its own mode: it times the single-pass
    // matching engine against the per-provider fan-out reference, writes
    // BENCH_pipeline.json, and (with --baseline) enforces the regression
    // gate. It installs its own recorder for the stage breakdown, so it
    // runs before the shared --trace/--metrics instrumentation.
    if opts.experiment == "bench" {
        run_bench(&opts, &config, &fault_plan);
        return;
    }

    // The crash-recovery drill is also its own mode: it runs the pipeline
    // several times (killed, resumed, uninterrupted) rather than preparing
    // one shared experiment, and exits non-zero unless every resumed run
    // is byte-identical to the uninterrupted baseline.
    if opts.experiment == "crash-recovery" {
        run_crash_recovery(&opts, &config, &fault_plan);
        return;
    }

    // The profiler is its own mode too: it always instruments, and its
    // output is the trace itself rather than an experiment's tables.
    if opts.experiment == "profile" {
        run_profile(&opts, &config, &fault_plan);
        return;
    }

    // The longitudinal study is its own mode: it rolls one prepared world
    // forward day by day, checks every rolled state byte-identical to a
    // from-scratch run over the merged corpus, and writes
    // BENCH_longitudinal.json with the per-day incremental vs full-rerun
    // cost.
    if opts.experiment == "longitudinal" {
        run_longitudinal(&opts, &config, &fault_plan);
        return;
    }

    // The scenario engine is its own mode: it runs an event-free baseline,
    // then each declarative scenario file, measures per-event resilience
    // deltas against the baseline, and writes BENCH_scenarios.json.
    if opts.experiment == "scenario" {
        run_scenario(&opts, &config, &fault_plan);
        return;
    }

    // Observability: `--trace`, `--metrics`, and `--trace-out` install a
    // recorder for the whole run; the report is emitted just before exit.
    let instrumented = opts.trace || opts.metrics.is_some() || opts.trace_out.is_some();
    let registry = std::rc::Rc::new(iotmap_obs::Registry::new());
    if instrumented {
        iotmap_obs::install(registry.clone());
    }

    let all = [
        "table1",
        "fig3",
        "fig4",
        "vantage",
        "validation",
        "shared",
        "diversity",
        "ports-observed",
        "consistency",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12a",
        "fig12b",
        "fig12c",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "outage-deps",
        "sec62-bgp",
        "sec62-blocklist",
        "cascade",
        "monitor",
        "ablation-coverage",
        "ablation-hitlist",
        "robustness",
    ];
    let selected: Vec<&str> = if opts.experiment == "all" {
        all.to_vec()
    } else if all.contains(&opts.experiment.as_str()) {
        vec![opts.experiment.as_str()]
    } else {
        eprintln!("unknown experiment {:?}", opts.experiment);
        std::process::exit(2);
    };

    eprintln!(
        "# preparing world (seed {}, preset {}, {} lines)…",
        config.seed,
        opts.preset,
        config.line_count()
    );
    if fault_plan.is_active() {
        eprintln!(
            "# fault plan: {} (seed {:#x})",
            opts.faults, fault_plan.seed
        );
    }
    if let Some(dir) = &opts.cache {
        eprintln!("# world cache: {dir}");
    }
    let t0 = std::time::Instant::now();
    let exp = match Experiment::try_prepare_opts(
        &config,
        fault_plan,
        opts.checkpoints.as_deref(),
        opts.resume.as_deref(),
        opts.cache.as_deref(),
    ) {
        Ok(exp) => exp,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            // Flush whatever the recorder captured before the failure:
            // a partial trace/metrics file beats none when debugging.
            if instrumented {
                iotmap_obs::uninstall();
                emit_observability(&opts, &registry.report());
            }
            std::process::exit(1);
        }
    };
    eprintln!(
        "# world + discovery ready in {:.1}s ({} servers, {} discovered IPs)",
        t0.elapsed().as_secs_f64(),
        exp.world.servers.len(),
        exp.discovery.all_ips().len()
    );

    // The main-week traffic analysis is shared by most figures. An
    // instrumented run always performs it, so the emitted report covers a
    // full reference pipeline (discovery → footprints → traffic analysis)
    // regardless of which experiment was selected.
    let needs_traffic = instrumented
        || selected.iter().any(|e| {
            matches!(
                *e,
                "fig5"
                    | "fig6"
                    | "fig7"
                    | "fig8"
                    | "fig9"
                    | "fig10"
                    | "fig11"
                    | "fig12a"
                    | "fig12b"
                    | "fig12c"
                    | "fig13"
                    | "fig14"
                    | "validation"
            )
        });
    let traffic = if needs_traffic {
        eprintln!("# simulating main-week ISP traffic…");
        let contacts = exp.contact_pass(config.study_period);
        let excluded = exp.excluded_lines(&contacts);
        let report = exp.analysis_pass(config.study_period, &excluded);
        Some((contacts, excluded, report))
    } else {
        None
    };

    for name in selected {
        println!("\n================ {name} ================");
        match name {
            "table1" => run_table1(&exp),
            "fig3" => run_fig3(&exp),
            "fig4" => run_fig4(&exp),
            "vantage" => run_vantage(&exp, &config),
            "validation" => run_validation(&exp),
            "shared" => run_shared(&exp),
            "diversity" => run_diversity(&exp),
            "fig5" => {
                let (contacts, _, _) = require_traffic(&traffic, name);
                run_fig5(&exp, contacts);
            }
            "fig6" => {
                let (contacts, excluded, _) = require_traffic(&traffic, name);
                run_fig6(&exp, contacts, excluded);
            }
            "fig7" => {
                let (contacts, excluded, _) = require_traffic(&traffic, name);
                run_fig7(&exp, contacts, excluded);
            }
            "fig8" => run_fig8(&exp, &require_traffic(&traffic, name).2),
            "fig9" => run_fig9(&exp, &require_traffic(&traffic, name).2),
            "fig10" => run_fig10(&exp, &require_traffic(&traffic, name).2),
            "fig11" => run_fig11(&exp, &require_traffic(&traffic, name).2),
            "fig12a" => run_fig12a(&require_traffic(&traffic, name).2),
            "fig12b" => run_fig12b(&exp, &require_traffic(&traffic, name).2),
            "fig12c" => run_fig12c(&require_traffic(&traffic, name).2),
            "fig13" => run_fig13(&require_traffic(&traffic, name).2),
            "fig14" => run_fig14(&require_traffic(&traffic, name).2),
            "fig15" | "fig16" | "outage-deps" => run_outage(&exp, name),
            "ports-observed" => run_ports_observed(&exp),
            "consistency" => run_consistency(&exp, &config),
            "monitor" => run_monitor(&exp),
            "ablation-coverage" => run_ablation_coverage(&config, opts.cache.as_deref()),
            "ablation-hitlist" => run_ablation_hitlist(&config, opts.cache.as_deref()),
            "robustness" => run_robustness(&config, opts.cache.as_deref()),
            "sec62-bgp" => run_sec62_bgp(&exp),
            "sec62-blocklist" => run_sec62_blocklist(&exp),
            "cascade" => run_cascade(&exp),
            _ => unreachable!(),
        }
    }

    if instrumented {
        iotmap_obs::uninstall();
        emit_observability(&opts, &registry.report());
    }
}

/// Write `content` to `path`, creating parent directories; exit 1 with a
/// clear message on failure (the observability files are the run's
/// deliverable when requested).
fn write_text(path: &std::path::Path, content: &str) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("# failed to create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("# failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Emit the recorded observability per the CLI flags: span tree to stderr
/// (`--trace`), JSONL + markdown companion (`--metrics`), Chrome Trace
/// Event Format JSON (`--trace-out`). Called on clean exits *and* on
/// mid-run failures, so partial runs stay debuggable.
fn emit_observability(opts: &iotmap_bench::CliOptions, report: &iotmap_obs::RunReport) {
    if opts.trace {
        eprintln!("\n# ---- span tree ----");
        eprint!("{}", report.render_span_tree());
    }
    if let Some(path) = &opts.metrics {
        let path = std::path::Path::new(path);
        write_text(path, &report.to_jsonl());
        // A human-readable companion next to the machine report.
        let md_path = path.with_extension("md");
        write_text(&md_path, &report.to_markdown());
        eprintln!(
            "# wrote metrics to {} (+ {})",
            path.display(),
            md_path.display()
        );
    }
    if let Some(path) = &opts.trace_out {
        let path = std::path::Path::new(path);
        write_text(path, &report.to_chrome_trace());
        eprintln!("# wrote Chrome trace to {}", path.display());
    }
}

// ---------------------------------------------------------------- Table 1

fn run_table1(exp: &Experiment) {
    let registry = PatternRegistry::paper_defaults();
    let sources = exp.sources();
    let mut rows = Vec::new();
    for patterns in registry.providers() {
        let disc = require_provider(exp, patterns.name);
        let fp = &exp.footprints[patterns.name];
        rows.push(Characterizer::row(patterns, disc, fp, &sources));
    }
    emit_table("table1", &table1(&rows));
}

// ------------------------------------------------------------------ Fig 3

fn run_fig3(exp: &Experiment) {
    let mut t = TextTable::new(&[
        "Provider",
        "Family",
        "Certs",
        "V6Scan",
        "PassiveDNS",
        "ActiveDNS",
        "Multiple",
        "Total",
    ]);
    for (name, disc) in exp.discovery.per_provider() {
        for v6 in [false, true] {
            let (excl, multi) = disc.source_breakdown(v6);
            let total: usize = excl.values().sum::<usize>() + multi;
            if total == 0 {
                continue;
            }
            t.row(vec![
                name.to_string(),
                if v6 { "IPv6" } else { "IPv4" }.to_string(),
                excl.get(&Source::Certificate)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                excl.get(&Source::Ipv6Scan)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                excl.get(&Source::PassiveDns)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                excl.get(&Source::ActiveDns)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                multi.to_string(),
                total.to_string(),
            ]);
        }
    }
    emit_table("fig3", &t);
}

// ------------------------------------------------------------------ Fig 4

fn run_fig4(exp: &Experiment) {
    let reference = Date::new(2022, 2, 28).epoch_days();
    let compares = [
        Date::new(2022, 3, 1).epoch_days(),
        Date::new(2022, 3, 3).epoch_days(),
        Date::new(2022, 3, 6).epoch_days(),
    ];
    let mut t = TextTable::new(&["Provider", "vs", "Both", "New", "Gone", "Stability"]);
    for (name, disc) in exp.discovery.per_provider() {
        for diff in StabilityAnalysis::figure4(disc, reference, &compares) {
            t.row(vec![
                name.to_string(),
                format!("{}", Date::from_epoch_days(diff.compare_day)),
                diff.both.to_string(),
                diff.added.to_string(),
                diff.removed.to_string(),
                pct(diff.stability()),
            ]);
        }
    }
    emit_table("fig4", &t);
}

// --------------------------------------------------------- §3.3 vantage

fn run_vantage(exp: &Experiment, config: &WorldConfig) {
    use iotmap_core::DiscoveryPipeline;
    use iotmap_dns::{ActiveCampaign, VantagePoint};
    let sources = exp.sources();
    let period = config.study_period;
    let mut vps = VantagePoint::paper_defaults();
    let single = DiscoveryPipeline::with_campaign(
        PatternRegistry::paper_defaults(),
        ActiveCampaign::new(vec![vps.remove(0)]),
    );
    let multi = DiscoveryPipeline::new(PatternRegistry::paper_defaults());
    let s = single
        .run_channels(&sources, period, &[Source::ActiveDns])
        .all_ips()
        .len();
    let m = multi
        .run_channels(&sources, period, &[Source::ActiveDns])
        .all_ips()
        .len();
    println!("active-DNS IPs from 1 vantage point : {s}");
    println!("active-DNS IPs from 3 vantage points: {m}");
    println!(
        "coverage gain: {} (paper: ≈17%)",
        pct(m as f64 / s.max(1) as f64 - 1.0)
    );
}

// --------------------------------------------------------- §3.4 validation

/// Collects per-IP byte totals for flows into a published prefix set.
struct PublishedSpaceSink {
    prefixes: Vec<iotmap_nettypes::Ipv4Prefix>,
    active: HashMap<IpAddr, u64>,
}

impl iotmap_netflow::FlowSink for PublishedSpaceSink {
    fn accept(&mut self, r: &iotmap_netflow::FlowRecord) {
        if let IpAddr::V4(a) = r.remote {
            if self.prefixes.iter().any(|p| p.contains(a)) {
                *self.active.entry(r.remote).or_default() += r.bytes;
            }
        }
    }
}

fn run_validation(exp: &Experiment) {
    let pub_truth = &exp.world.published;
    for (name, published) in [
        ("cisco", &pub_truth.cisco_ips),
        ("siemens", &pub_truth.siemens_ips),
    ] {
        let disc = require_provider(exp, name);
        let r = GroundTruthReport::against_ip_list(name, disc, published);
        println!(
            "{name}: published {} IPs; discovered {} inside + {} outside; recall of published {}",
            r.published_total,
            r.discovered_inside,
            r.discovered_outside,
            pct(r.recall_of_published(disc, published)),
        );
    }
    let disc = require_provider(exp, "microsoft");
    let r = GroundTruthReport::against_prefixes("microsoft", disc, &pub_truth.microsoft_prefixes);
    println!(
        "microsoft: published prefixes cover {} addresses; discovered {} inside them (+{} outside)",
        r.published_total, r.discovered_inside, r.discovered_outside
    );

    // §3.4's traffic cross-check: which published IPs are *actually
    // active* in ISP flows, and how many of those did discovery miss?
    // This deliberately looks at raw flows, not the discovered index —
    // the whole point is to catch active published IPs the methodology
    // missed.
    eprintln!("# replaying traffic against Microsoft's published space…");
    let mut sink = PublishedSpaceSink {
        prefixes: pub_truth.microsoft_prefixes.clone(),
        active: HashMap::new(),
    };
    iotmap_world::TrafficSimulator::new(&exp.world).run(exp.world.config.study_period, &mut sink);
    let cov = iotmap_core::validate::ActiveCoverage::compute(disc, &sink.active);
    println!(
        "microsoft: {} published-space IPs active at the ISP; methodology misses {} (≈{} of that traffic volume)",
        cov.active_published,
        cov.missed,
        pct(cov.missed_traffic_fraction)
    );
}

// --------------------------------------------------------- §3.4 shared IPs

fn run_shared(exp: &Experiment) {
    let registry = PatternRegistry::paper_defaults();
    let classifier = iotmap_core::SharedIpClassifier::new(&registry);
    let period = exp.world.config.study_period;
    let mut t = TextTable::new(&["Provider", "Dedicated", "Shared"]);
    for (name, disc) in exp.discovery.per_provider() {
        let (dedicated, shared) = classifier.split_provider(disc, &exp.world.passive_dns, period);
        if dedicated.is_empty() && shared.is_empty() {
            continue;
        }
        t.row(vec![
            name.to_string(),
            dedicated.len().to_string(),
            shared.len().to_string(),
        ]);
    }
    emit_table("shared", &t);
    println!("(Google's HTTPS front and the Akamai-fronted Oracle share are the shared sets.)");
}

// --------------------------------------------------------- §4.3 diversity

fn run_diversity(exp: &Experiment) {
    let sources = exp.sources();
    let mut t = TextTable::new(&["Provider", "#AS", "#v4 prefixes", "#v6 IPs", "Anycast(doc)"]);
    let registry = PatternRegistry::paper_defaults();
    for (name, disc) in exp.discovery.per_provider() {
        let mut asns = HashSet::new();
        let mut prefixes = HashSet::new();
        for &ip in disc.ips.keys() {
            if let IpAddr::V4(a) = ip {
                if let Some((prefix, origin)) = sources.routeviews.lookup_v4(a) {
                    asns.insert(origin.asn);
                    prefixes.insert(prefix);
                }
            }
        }
        let v6 = disc.v6_ips().count();
        let anycast = registry.get(name).is_some_and(|p| p.documented_anycast);
        t.row(vec![
            name.to_string(),
            asns.len().to_string(),
            prefixes.len().to_string(),
            v6.to_string(),
            if anycast { "yes" } else { "-" }.to_string(),
        ]);
    }
    emit_table("diversity", &t);
}

// ------------------------------------------------------------------ Fig 5

fn run_fig5(exp: &Experiment, contacts: &iotmap_traffic::ContactSink<'_>) {
    let analysis = ScannerAnalysis::new(&exp.index, contacts);
    let thresholds = [10, 20, 50, 100, 200, 500, 1000];
    let mut t = TextTable::new(&["Threshold", "Lines flagged", "IPv4 visibility"]);
    for p in analysis.curve(&thresholds) {
        t.row(vec![
            p.threshold.to_string(),
            p.lines_excluded.to_string(),
            pct(p.v4_visibility),
        ]);
    }
    emit_table("fig5", &t);
    println!(
        "at threshold {SCANNER_THRESHOLD}: v4 visibility {} | v6 visibility {} (paper: ~28% / ~51%)",
        pct(analysis.v4_visibility(SCANNER_THRESHOLD)),
        pct(analysis.v6_visibility(SCANNER_THRESHOLD)),
    );
}

// ------------------------------------------------------------------ Fig 6

fn run_fig6(
    exp: &Experiment,
    contacts: &iotmap_traffic::ContactSink<'_>,
    excluded: &HashSet<iotmap_netflow::LineId>,
) {
    let vis = visibility_per_provider(&exp.index, contacts, excluded);
    let mut rows: Vec<_> = vis.iter().collect();
    rows.sort_by_key(|v| exp.label(&v.provider));
    let mut t = TextTable::new(&["Platform", "v4 visible", "v6 visible", "Lines"]);
    for v in rows {
        t.row(vec![
            exp.label(&v.provider).to_string(),
            pct(v.v4),
            v.v6.map(pct).unwrap_or_else(|| "-".to_string()),
            v.lines.to_string(),
        ]);
    }
    emit_table("fig6", &t);
}

// ------------------------------------------------------------------ Fig 7

fn run_fig7(
    exp: &Experiment,
    contacts: &iotmap_traffic::ContactSink<'_>,
    excluded: &HashSet<iotmap_netflow::LineId>,
) {
    // Restricted map: what certificates alone would have found.
    let mut restricted: HashMap<String, HashSet<IpAddr>> = HashMap::new();
    for (name, disc) in exp.discovery.per_provider() {
        restricted.insert(
            name.to_string(),
            disc.ips_from_sources(&[Source::Certificate]),
        );
    }
    let mut rows = source_ablation(&exp.index, contacts, excluded, &restricted);
    rows.sort_by_key(|(name, _)| exp.label(name));
    let mut t = TextTable::new(&["Platform", "Line loss (TLS-certs-only)"]);
    for (name, decrease) in rows {
        t.row(vec![exp.label(&name).to_string(), pct(decrease)]);
    }
    emit_table("fig7", &t);
    println!("(paper: T4, D6, T2, D3 lose almost all lines; two of these rely on SNI)");
}

// -------------------------------------------------------------- Figs 8-12

fn provider_groups(exp: &Experiment) -> Vec<(&'static str, Vec<String>)> {
    let mut top4 = Vec::new();
    let mut cloud = Vec::new();
    let mut rest = Vec::new();
    for (p, l) in exp.anonymization.pairs() {
        match l.chars().next().unwrap() {
            'T' => top4.push(p.to_string()),
            'D' => cloud.push(p.to_string()),
            _ => rest.push(p.to_string()),
        }
    }
    vec![
        ("top-4", top4),
        ("cloud-dependent", cloud),
        ("others", rest),
    ]
}

fn run_fig8(exp: &Experiment, report: &iotmap_traffic::AnalysisReport) {
    let t1 = report.fig8_lines("amazon");
    for (group, providers) in provider_groups(exp) {
        println!("--- {group} ---");
        for p in providers {
            let Some(series) = report.fig8_lines(&p) else {
                continue;
            };
            if series.total() < 15.0 {
                continue; // the paper's ≥15-lines-per-hour filter
            }
            // §5.3: "their activity does not correlate to the one of the
            // platform providers" — report r against T1.
            let corr = t1
                .as_ref()
                .filter(|_| p != "amazon")
                .and_then(|t| series.correlation(t))
                .map(|r| format!("{r:+.2}"))
                .unwrap_or_else(|| "  - ".to_string());
            println!(
                "{}: mean lines/h {:8.1} | diurnality {:5.2} | r(T1) {} | daily peak hours {:?}",
                exp.label(&p),
                series.total() / series.len() as f64,
                series.diurnality(),
                corr,
                series.daily_peak_hours()
            );
        }
    }
}

fn run_fig9(exp: &Experiment, report: &iotmap_traffic::AnalysisReport) {
    for (group, providers) in provider_groups(exp) {
        println!("--- {group} ---");
        for p in providers {
            let Some(series) = report.fig9_downstream(&p) else {
                continue;
            };
            if series.total() <= 0.0 {
                continue;
            }
            let norm = series.normalized();
            let head: Vec<String> = norm.values()[..24.min(norm.len())]
                .iter()
                .map(|v| format!("{v:.2}"))
                .collect();
            println!(
                "{}: total dn {} | first-day normalized series: {}",
                exp.label(&p),
                iotmap_core::report::bytes_h(series.total()),
                head.join(" ")
            );
        }
    }
}

fn run_fig10(exp: &Experiment, report: &iotmap_traffic::AnalysisReport) {
    let mut t = TextTable::new(&["Platform", "Downstream/Upstream"]);
    let mut rows: Vec<(String, f64)> = report
        .providers()
        .iter()
        .filter_map(|p| report.fig10_ratio(p).map(|r| (p.clone(), r)))
        .collect();
    rows.sort_by_key(|(p, _)| exp.label(p));
    for (p, ratio) in rows {
        t.row(vec![exp.label(&p).to_string(), format!("{ratio:.2}")]);
    }
    emit_table("fig10", &t);
    println!("(paper: ratios range from <0.33 to >3)");
}

fn run_fig11(exp: &Experiment, report: &iotmap_traffic::AnalysisReport) {
    for (p, label) in exp
        .anonymization
        .pairs()
        .iter()
        .map(|(p, l)| (p.to_string(), *l))
    {
        let mix = report.fig11_port_mix(&p);
        if mix.is_empty() {
            continue;
        }
        let cells: Vec<String> = mix
            .iter()
            .take(6)
            .map(|(port, f)| format!("{port}={}", pct(*f)))
            .collect();
        println!("{label}: {}", cells.join("  "));
    }
}

fn run_fig12a(report: &iotmap_traffic::AnalysisReport) {
    for (dir, down) in [("download", true), ("upload", false)] {
        let e = report.fig12a_ecdf(down);
        if e.is_empty() {
            continue;
        }
        println!(
            "{dir}: line-days {} | P(<=1MB) {} | P(<=10MB) {} | P(<=100MB) {} | median {}",
            e.len(),
            pct(e.fraction_at_or_below(1e6)),
            pct(e.fraction_at_or_below(1e7)),
            pct(e.fraction_at_or_below(1e8)),
            iotmap_core::report::bytes_h(e.median()),
        );
    }
    println!("(paper: >99% of lines exchange <10 MB/day in both directions)");
}

fn run_fig12b(exp: &Experiment, report: &iotmap_traffic::AnalysisReport) {
    let mut t = TextTable::new(&["Platform", "Line-days", "P(<=10MB)", "Median"]);
    let mut rows: Vec<&String> = report.providers().iter().collect();
    rows.sort_by_key(|p| exp.label(p));
    for p in rows {
        let Some(e) = report.fig12b_ecdf(p) else {
            continue;
        };
        if e.is_empty() {
            continue;
        }
        t.row(vec![
            exp.label(p).to_string(),
            e.len().to_string(),
            pct(e.fraction_at_or_below(1e7)),
            iotmap_core::report::bytes_h(e.median()),
        ]);
    }
    emit_table("fig12b", &t);
}

fn run_fig12c(report: &iotmap_traffic::AnalysisReport) {
    let mut t = TextTable::new(&["Port", "Line-days", "P(<=10MB)", "P(100MB..1GB)", "Median"]);
    for (port, _) in report.top_ports(7) {
        let e = report.fig12c_ecdf(port);
        if e.is_empty() {
            continue;
        }
        t.row(vec![
            port.to_string(),
            e.len().to_string(),
            pct(e.fraction_at_or_below(1e7)),
            pct(e.fraction_in(1e8, 1e9)),
            iotmap_core::report::bytes_h(e.median()),
        ]);
    }
    emit_table("fig12c", &t);
    println!("(paper: only TCP/5671 shows ~18% of lines at 100MB–1GB/day, at a single provider)");
}

fn run_fig13(report: &iotmap_traffic::AnalysisReport) {
    let (eu_only, us_any, mix, other_only) = report.fig13_line_buckets();
    println!(
        "lines: EU-only {} | contact US {} | EU+US mix {} | Asia/other-only {}",
        pct(eu_only),
        pct(us_any),
        pct(mix),
        pct(other_only)
    );
    let servers = report.fig13_server_buckets();
    let cells: Vec<String> = BUCKET_LABELS
        .iter()
        .zip(servers.iter())
        .map(|(l, f)| format!("{l} {}", pct(*f)))
        .collect();
    println!("servers: {}", cells.join(" | "));
    println!("(paper: 47% EU-only lines, ~40% contact US; servers ~30% EU / 65% US / 5% Asia)");
}

fn run_fig14(report: &iotmap_traffic::AnalysisReport) {
    let traffic = report.fig14_traffic_buckets();
    let cells: Vec<String> = BUCKET_LABELS
        .iter()
        .zip(traffic.iter())
        .map(|(l, f)| format!("{l} {}", pct(*f)))
        .collect();
    println!("traffic by server continent: {}", cells.join(" | "));
    let (v4, v6) = report.daily_active_lines();
    println!("mean daily active lines: v4 {v4:.0} | v6 {v6:.0}");
    println!("(paper: >62% EU-EU, ~35% with the US; 2.32M v4 / 202k v6 lines daily at 15M scale)");
}

// ------------------------------------------------- Figs 15/16 (Dec 2021)

fn run_outage(exp: &Experiment, which: &str) {
    // The outage experiments replay the December 2021 week on the same
    // world.
    let period = StudyPeriod::outage_week();
    eprintln!("# simulating outage-week ISP traffic…");
    let contacts = exp.contact_pass(period);
    let excluded = exp.excluded_lines(&contacts);
    let report = exp.analysis_pass(period, &excluded);
    let window = StudyPeriod::aws_outage_window();
    let h0 = period.start.epoch_hours();
    let win_from = (window.start.epoch_hours() - h0) as usize;
    let win_to = (window.end.epoch_hours() - h0) as usize;

    match which {
        "fig15" | "fig16" => {
            let lines_mode = which == "fig16";
            let t1 = "amazon";
            for group in [RegionGroup::UsEast1, RegionGroup::Europe] {
                let Some(series) = report.region_series(t1, group, lines_mode) else {
                    continue;
                };
                // Compare like with like: the outage window's hours of day
                // against the same hours on the other days of the week.
                let window_hours = win_from..win_to;
                let mut during = (0.0, 0u32);
                let mut baseline = (0.0, 0u32);
                let mut baseline_min = f64::INFINITY;
                for day in 0..7usize {
                    let mut day_sum = 0.0;
                    let mut day_n = 0u32;
                    for h in 0..series.len() {
                        let same_hod = h % 24 >= win_from % 24 && h % 24 < win_to % 24;
                        if !same_hod {
                            continue;
                        }
                        if h / 24 != day {
                            continue;
                        }
                        day_sum += series.get(h);
                        day_n += 1;
                    }
                    if day_n == 0 {
                        continue;
                    }
                    let in_window = (day * 24..(day + 1) * 24).any(|h| window_hours.contains(&h));
                    if in_window {
                        during.0 += day_sum;
                        during.1 += day_n;
                    } else {
                        baseline.0 += day_sum;
                        baseline.1 += day_n;
                        baseline_min = baseline_min.min(day_sum / day_n as f64);
                    }
                }
                let during_rate = during.0 / during.1.max(1) as f64;
                let base_rate = baseline.0 / baseline.1.max(1) as f64;
                println!(
                    "T1 {} [{}]: other-days mean {:12.0}/h | outage-day {:12.0}/h ({:+.1}%) | other-days min {:12.0}/h",
                    if lines_mode { "lines" } else { "downstream" },
                    group.label(),
                    base_rate,
                    during_rate,
                    (during_rate / base_rate.max(1e-9) - 1.0) * 100.0,
                    baseline_min,
                );
            }
            if which == "fig15" {
                println!("(paper: US-East drops >14.5%, below the previous week's minimum; EU dips slightly and serves >3x the US-East volume)");
            } else {
                println!("(paper: subscriber-line counts barely move — devices keep retrying)");
            }
        }
        "outage-deps" => {
            println!("impact on the cloud-dependent platforms (D1–D6):");
            println!("(outage-window hours of day vs the same hours on the other days)");
            for (p, label) in exp.anonymization.pairs() {
                if !label.starts_with('D') {
                    continue;
                }
                let Some(series) = report.fig9_downstream(p) else {
                    continue;
                };
                if series.total() <= 0.0 {
                    continue;
                }
                // Full-day totals: the outage day against the other days'
                // mean (lower variance than the 7-hour window for the
                // smaller platforms).
                let outage_day = win_from / 24;
                let _ = win_to;
                let mut day_totals = [0.0f64; 7];
                for h in 0..series.len() {
                    day_totals[(h / 24).min(6)] += series.get(h);
                }
                let d = day_totals[outage_day];
                let b: f64 = day_totals
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != outage_day)
                    .map(|(_, v)| v)
                    .sum::<f64>()
                    / 6.0;
                println!(
                    "{label}: outage-day downstream {:+.1}% vs other days' mean",
                    (d / b.max(1e-9) - 1.0) * 100.0
                );
            }
            println!("(paper: hardly any effect — these platforms are mapped to EU regions)");
        }
        _ => unreachable!(),
    }
}

// ---------------------------------------------------- §4.4 observed ports

fn run_ports_observed(exp: &Experiment) {
    let registry = PatternRegistry::paper_defaults();
    let mut t = TextTable::new(&[
        "Provider",
        "Open ports (gateways listening)",
        "Undocumented",
        "Cert-blind",
    ]);
    for patterns in registry.providers() {
        let disc = require_provider(exp, patterns.name);
        let obs = ObservedPorts::analyze(patterns, disc, &exp.scans.censys);
        if obs.listeners.is_empty() {
            continue;
        }
        let listeners: Vec<String> = obs
            .listeners
            .iter()
            .map(|(p, n)| format!("{p}:{n}"))
            .collect();
        let undoc: Vec<String> = obs.undocumented.iter().map(|p| p.to_string()).collect();
        let blind: Vec<String> = obs
            .cert_blind_ports()
            .iter()
            .map(|p| p.to_string())
            .collect();
        t.row(vec![
            patterns.name.to_string(),
            listeners.join(" "),
            if undoc.is_empty() {
                "-".into()
            } else {
                undoc.join(" ")
            },
            if blind.is_empty() {
                "-".into()
            } else {
                blind.join(" ")
            },
        ]);
    }
    emit_table("ports-observed", &t);
    println!("(cert-blind = listening ports a TLS-only scan can never identify — §4.4's point)");
}

// ------------------------------------------- §3.1 Dec-vs-Feb consistency

fn run_consistency(exp: &Experiment, config: &WorldConfig) {
    // The paper collected preliminary (IPv4-only) results for Dec 3–10,
    // 2021 and kept the February week because "the results are consistent".
    eprintln!("# rerunning collection + discovery for the December week…");
    let dec = StudyPeriod::outage_week();
    let scans = exp.world.collect_scan_data(dec);
    let sources = iotmap_core::DataSources {
        censys: &scans.censys,
        zgrab_v6: &scans.zgrab_v6,
        passive_dns: &exp.world.passive_dns,
        zones: &exp.world.zones,
        routeviews: &exp.world.bgp,
        latency: None,
    };
    let pipeline = iotmap_core::DiscoveryPipeline::new(PatternRegistry::paper_defaults());
    let dec_result = pipeline.run(&sources, dec);

    let mut t = TextTable::new(&["Provider", "Feb v4", "Dec v4", "Jaccard"]);
    for (name, feb) in exp.discovery.per_provider() {
        let feb_set: HashSet<IpAddr> = feb.v4_ips().collect();
        let dec_set: HashSet<IpAddr> = dec_result
            .get(name)
            .map(|d| d.v4_ips().collect())
            .unwrap_or_default();
        if feb_set.is_empty() && dec_set.is_empty() {
            continue;
        }
        let inter = feb_set.intersection(&dec_set).count();
        let union = feb_set.union(&dec_set).count().max(1);
        t.row(vec![
            name.to_string(),
            feb_set.len().to_string(),
            dec_set.len().to_string(),
            pct(inter as f64 / union as f64),
        ]);
    }
    emit_table("consistency", &t);
    println!(
        "(paper §3.1: the December and February collections are consistent;          cloud-hosted fleets churn between quarters, dedicated ones do not)"
    );
    let _ = config;
}

// -------------------------------------- §3.6 limitation ablation sweeps

fn coverage_point(config: WorldConfig, cache: Option<&str>) -> (usize, usize) {
    let exp = prepare_or_die(&config, iotmap_faults::FaultPlan::none(), cache);
    let v4 = exp.discovery.all_v4().len();
    let v6 = exp.discovery.all_v6().len();
    (v4, v6)
}

fn run_ablation_coverage(config: &WorldConfig, cache: Option<&str>) {
    // §3.6: "even DNSDB has its own limitations, e.g., it does not have
    // full coverage of all DNS requests." Sweep the sensor coverage.
    let mut t = TextTable::new(&["Passive-DNS coverage", "Discovered v4", "Discovered v6"]);
    for coverage in [0.3, 0.6, 0.92, 1.0] {
        eprintln!("# coverage sweep: {coverage} …");
        let cfg = WorldConfig {
            passive_dns_coverage: coverage,
            ..config.clone()
        };
        let (v4, v6) = coverage_point(cfg, cache);
        t.row(vec![
            format!("{coverage:.2}"),
            v4.to_string(),
            v6.to_string(),
        ]);
    }
    emit_table("ablation-coverage", &t);
    println!("(discovery degrades gracefully: certificates and active DNS backfill most losses)");
}

fn run_ablation_hitlist(config: &WorldConfig, cache: Option<&str>) {
    // §3.6: "our ability to discover IPv6 addresses is directly influenced
    // by the coverage of the chosen IPv6 hitlists."
    let mut t = TextTable::new(&["Hitlist coverage", "Discovered v6", "v6 via scans only"]);
    for coverage in [0.2, 0.5, 0.9, 1.0] {
        eprintln!("# hitlist sweep: {coverage} …");
        let cfg = WorldConfig {
            hitlist_coverage: coverage,
            ..config.clone()
        };
        let exp = prepare_or_die(&cfg, iotmap_faults::FaultPlan::none(), cache);
        let v6 = exp.discovery.all_v6().len();
        let scan_only: usize = exp
            .discovery
            .per_provider()
            .map(|(_, d)| {
                d.ips
                    .iter()
                    .filter(|(ip, ev)| {
                        ip.is_ipv6() && ev.sources.sole_source() == Some(Source::Ipv6Scan)
                    })
                    .count()
            })
            .sum();
        t.row(vec![
            format!("{coverage:.2}"),
            v6.to_string(),
            scan_only.to_string(),
        ]);
    }
    emit_table("ablation-hitlist", &t);
    println!("(IPv6 discovery scales with hitlist quality — §3.6's stated limitation)");
}

fn run_robustness(config: &WorldConfig, cache: Option<&str>) {
    use iotmap_faults::FaultPlan;
    // The §3.3/§3.4 blind spots made operational: rerun the complete
    // methodology (discovery → footprints → traffic) under seeded fault
    // plans of increasing severity and show graceful degradation —
    // coverage shrinks monotonically, but every source keeps
    // contributing and the run always completes.
    let prev = iotmap_obs::current_recorder();
    let mut t = TextTable::new(&[
        "Faults",
        "Discovered v4",
        "Discovered v6",
        "Providers",
        "Backend down GB",
        "Degraded sources",
    ]);
    for name in ["none", "light", "heavy"] {
        eprintln!("# robustness sweep: {name} faults…");
        let plan = FaultPlan::preset(name).expect("built-in preset");
        let registry = std::rc::Rc::new(iotmap_obs::Registry::new());
        iotmap_obs::install(registry.clone());
        let exp = prepare_or_die(config, plan, cache);
        let (report, _) = exp.full_traffic_analysis(config.study_period);
        iotmap_obs::uninstall();
        let down: u64 = report
            .providers()
            .iter()
            .map(|p| report.total_downstream(p))
            .sum();
        let providers = exp
            .discovery
            .per_provider()
            .filter(|(_, d)| !d.ips.is_empty())
            .count();
        let completeness = registry.report().fault_completeness();
        let degraded = if completeness.is_empty() {
            "-".to_string()
        } else {
            completeness
                .iter()
                .map(|s| s.source.as_str())
                .collect::<Vec<_>>()
                .join(" ")
        };
        t.row(vec![
            name.to_string(),
            exp.discovery.all_v4().len().to_string(),
            exp.discovery.all_v6().len().to_string(),
            providers.to_string(),
            format!("{:.2}", down as f64 / 1e9),
            degraded,
        ]);
    }
    match prev {
        Some(r) => iotmap_obs::install(r),
        None => iotmap_obs::uninstall(),
    }
    emit_table("robustness", &t);
    println!(
        "(heavier fault plans shrink coverage monotonically; every degraded source still contributes)"
    );
}

// ------------------------------------------- §7 continuous monitoring

fn run_monitor(exp: &Experiment) {
    use iotmap_core::{FootprintInference, Monitor, MonitoringWindow};
    // Capture the December window, then the February window, and report
    // the longitudinal findings — the §7 "continuous monitoring" mode.
    eprintln!("# capturing the December window for the monitor…");
    let dec = StudyPeriod::outage_week();
    let scans = exp.world.collect_scan_data(dec);
    let sources = iotmap_core::DataSources {
        censys: &scans.censys,
        zgrab_v6: &scans.zgrab_v6,
        passive_dns: &exp.world.passive_dns,
        zones: &exp.world.zones,
        routeviews: &exp.world.bgp,
        latency: None,
    };
    let dec_result =
        iotmap_core::DiscoveryPipeline::new(PatternRegistry::paper_defaults()).run(&sources, dec);
    let mut dec_fps = BTreeMap::new();
    for (name, disc) in dec_result.per_provider() {
        dec_fps.insert(name.to_string(), FootprintInference::infer(disc, &sources));
    }
    let feb_fps: BTreeMap<String, iotmap_core::Footprint> = exp
        .footprints
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();

    let mut monitor = Monitor::new();
    monitor.push(MonitoringWindow::capture("2021-12", &dec_result, &dec_fps));
    monitor.push(MonitoringWindow::capture(
        "2022-02",
        &exp.discovery,
        &feb_fps,
    ));
    let findings = monitor.latest_findings();
    if findings.is_empty() {
        println!("no findings: every backend footprint is stable across windows");
        return;
    }
    let mut t = TextTable::new(&["Provider", "Finding", "Detail"]);
    for f in &findings {
        t.row(vec![
            f.provider.clone(),
            format!("{:?}", f.kind),
            f.detail.clone(),
        ]);
    }
    emit_table("monitor", &t);
    println!("(country-level changes are the compliance-relevant alerts; churn is routine)");
}

// ------------------------------------------------------------------ §6.2

fn run_sec62_bgp(exp: &Experiment) {
    let incidents: Vec<RouteIncident> = exp
        .world
        .events
        .bgpstream
        .iter()
        .map(|e| RouteIncident {
            kind: match e.kind {
                BgpStreamEventKind::Leak => IncidentKind::Leak,
                BgpStreamEventKind::PossibleHijack => IncidentKind::PossibleHijack,
                BgpStreamEventKind::AsOutage => IncidentKind::AsOutage,
            },
            prefix: e.prefix,
            asn: e.asn,
        })
        .collect();
    let sources = exp.sources();
    let audit = IncidentAudit::run(&incidents, &exp.discovery, &sources);
    let count = |k: IncidentKind| incidents.iter().filter(|i| i.kind == k).count();
    println!(
        "BGPStream events in study week: {} leaks, {} possible hijacks, {} AS outages",
        count(IncidentKind::Leak),
        count(IncidentKind::PossibleHijack),
        count(IncidentKind::AsOutage)
    );
    println!(
        "affecting backend prefixes: {} | affecting backend ASes: {} | all clear: {}",
        audit.prefix_hits,
        audit.asn_hits,
        audit.all_clear()
    );
    println!("(paper: none of the events affected any backend IPs or ASes)");
}

fn run_sec62_blocklist(exp: &Experiment) {
    let firehol = &exp.world.events.firehol;
    let categories: BTreeMap<IpAddr, Vec<String>> = firehol
        .planted
        .iter()
        .map(|h| (h.ip, h.categories.iter().map(|c| c.to_string()).collect()))
        .collect();
    let audit = BlocklistAudit::run(&exp.discovery, &firehol.set, &categories);
    println!(
        "FireHOL aggregate: {} addresses from {} lists",
        firehol.set.len(),
        firehol.source_lists
    );
    println!(
        "backend IPs found on the blocklist: {}",
        audit.findings.len()
    );
    for (provider, n) in audit.per_provider() {
        println!("  {provider}: {n}");
    }
    let mut cat_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &audit.findings {
        for c in &f.categories {
            *cat_counts.entry(c.as_str()).or_default() += 1;
        }
    }
    println!("categories (non-exclusive): {cat_counts:?}");
    println!("(paper: 16 IPs over 6 providers — Baidu 5, Microsoft 4, SAP 4, Google 3, Amazon 2, Alibaba 1)");
}

// ------------------------------------------------------------- §7 cascade

fn run_cascade(exp: &Experiment) {
    let sources = exp.sources();
    let orgs = [
        "Amazon Web Services",
        "Microsoft Azure",
        "Alibaba Cloud",
        "Akamai Technologies",
    ];
    let deps = cascade_impact(&exp.discovery, &sources, &orgs);
    let mut t = TextTable::new(&["Provider", "AWS", "Azure", "AliCloud", "Akamai"]);
    for d in deps {
        // Skip the cloud operators' own IoT platforms for clarity.
        let row: Vec<String> = orgs
            .iter()
            .map(|o| {
                let share = d.loss_if_down(o);
                if share > 0.0005 {
                    pct(share)
                } else {
                    "-".to_string()
                }
            })
            .collect();
        let mut cells = vec![d.provider.clone()];
        cells.extend(row);
        t.row(cells);
    }
    emit_table("cascade", &t);
    println!("(share of each backend's discovered footprint lost if the cloud operator fails)");
}

// ----------------------------------------------------------- exp bench

/// Extract a numeric field from a bench report. The report is flat
/// `"key": value` JSON written by [`run_bench`], so a scan is enough —
/// no JSON parser dependency.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract a string field from flat `"key": "value"` JSON.
fn json_str(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let inner = rest.strip_prefix('"')?;
    Some(inner[..inner.find('"')?].to_string())
}

/// Extract the body of a one-level `"key": { ... }` object. The bench
/// stage maps hold only numeric values, so the first `}` closes it.
fn json_obj<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let inner = rest.strip_prefix('{')?;
    Some(&inner[..inner.find('}')?])
}

/// Collect every `discovery.*` span (at any depth) as `(name, ms)`.
fn discovery_stages(nodes: &[iotmap_obs::SpanNode], out: &mut Vec<(String, f64)>) {
    for n in nodes {
        if n.name.starts_with("discovery.") {
            out.push((n.name.clone(), n.nanos as f64 / 1e6));
        }
        discovery_stages(&n.children, out);
    }
}

/// Find the first span with `name`, depth-first.
fn find_span<'a>(
    nodes: &'a [iotmap_obs::SpanNode],
    name: &str,
) -> Option<&'a iotmap_obs::SpanNode> {
    for n in nodes {
        if n.name == name {
            return Some(n);
        }
        if let Some(found) = find_span(&n.children, name) {
            return Some(found);
        }
    }
    None
}

/// Short key for a prepare-stage span: `super.stage.world` → `world`,
/// `experiment.footprints` → `footprints`.
fn stage_key(name: &str) -> &str {
    name.strip_prefix("super.stage.")
        .or_else(|| name.strip_prefix("experiment."))
        .unwrap_or(name)
}

/// The working tree's abbreviated git revision, for perf-history lines.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Time the discovery pass both ways over one prepared world — the
/// single-pass matching engine (`run`) against the per-provider fan-out
/// reference (`run_fanout`) — and write `BENCH_pipeline.json`.
///
/// The committed baseline makes the regression gate machine-independent:
/// CI compares *speedups* (a ratio of two timings on the same machine),
/// not wall-clock milliseconds, and fails when the current speedup falls
/// below 75% of the baseline's.
fn run_bench(
    opts: &iotmap_bench::CliOptions,
    config: &WorldConfig,
    faults: &iotmap_faults::FaultPlan,
) {
    eprintln!(
        "# bench: preparing world (seed {}, preset {}, faults {})…",
        config.seed, opts.preset, opts.faults
    );
    // The prepare pass runs instrumented: its span tree is the
    // `prepare_stages_ms` breakdown. Span overhead is one flag check plus
    // a clock read per stage, far below timing noise.
    let prep_prev = iotmap_obs::current_recorder();
    let prep_registry = std::rc::Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(prep_registry.clone());
    let t0 = std::time::Instant::now();
    let exp = prepare_or_die(config, faults.clone(), opts.cache.as_deref());
    let wall_prepare_ms = t0.elapsed().as_secs_f64() * 1e3;
    iotmap_obs::uninstall();
    if let Some(r) = prep_prev {
        iotmap_obs::install(r);
    }
    let prep_report = prep_registry.report();
    // The pipeline's two phases each carry a span; report their summed
    // own-time (children sum to each by construction) and merge both
    // phases' stage children into one breakdown. Fall back to the wall
    // clock if the spans ever go missing.
    let phase_spans: Vec<_> = ["experiment.prepare", "experiment.execute"]
        .iter()
        .filter_map(|name| find_span(&prep_report.spans, name))
        .collect();
    let prepare_ms = if phase_spans.is_empty() {
        wall_prepare_ms
    } else {
        phase_spans.iter().map(|s| s.nanos as f64 / 1e6).sum()
    };
    let prepare_stages: Vec<(String, f64)> = phase_spans
        .iter()
        .flat_map(|s| s.children.iter())
        .map(|c| (stage_key(&c.name).to_string(), c.nanos as f64 / 1e6))
        .collect();
    // What the world cache actually did this run distinguishes otherwise
    // identical configurations in the perf history: "none" (no cache),
    // "cold" (cache directory given, nothing usable in it), or "warm"
    // (at least one artifact came from the cache).
    let cache_hits = prep_report.counters.get("cache.hit").copied().unwrap_or(0);
    let cache_tag = match (&opts.cache, cache_hits) {
        (None, _) => "none",
        (Some(_), 0) => "cold",
        (Some(_), _) => "warm",
    };
    let sources = exp.sources();
    let period = config.study_period;
    let pipeline = iotmap_core::DiscoveryPipeline::new(PatternRegistry::paper_defaults())
        .faults(faults.seed, faults.active_dns.clone());

    // What one discovery pass scans: every certificate record in every
    // snapshot, every IPv6 banner grab, every passive-DNS rrset.
    let cert_records: usize = sources.censys.iter().map(|s| s.records.len()).sum();
    let records = cert_records + sources.zgrab_v6.len() + sources.passive_dns.entries_slice().len();

    let iters: usize = if opts.preset == "small" { 5 } else { 3 };
    let mut engine_ms = f64::INFINITY;
    let mut engine_ips = 0usize;
    for i in 0..iters {
        let t = std::time::Instant::now();
        let r = pipeline.run(&sources, period);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        eprintln!("# bench: engine pass {}/{iters}: {ms:.1} ms", i + 1);
        engine_ms = engine_ms.min(ms);
        engine_ips = r.all_ips().len();
    }
    let mut fanout_ms = f64::INFINITY;
    let mut fanout_ips = 0usize;
    for i in 0..iters {
        let t = std::time::Instant::now();
        let r = pipeline.run_fanout(&sources, period);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        eprintln!("# bench: fanout pass {}/{iters}: {ms:.1} ms", i + 1);
        fanout_ms = fanout_ms.min(ms);
        fanout_ips = r.all_ips().len();
    }
    if engine_ips != fanout_ips {
        eprintln!(
            "# bench: engine and fan-out disagree ({engine_ips} vs {fanout_ips} IPs) — \
             the equivalence tests should have caught this; aborting"
        );
        std::process::exit(1);
    }

    // One more instrumented engine pass for the per-stage breakdown and
    // the candidate/verified counters (timed passes run uninstrumented).
    let prev = iotmap_obs::current_recorder();
    let registry = std::rc::Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let _ = pipeline.run(&sources, period);
    iotmap_obs::uninstall();
    if let Some(r) = prev {
        iotmap_obs::install(r);
    }
    let report = registry.report();
    let mut stages = Vec::new();
    discovery_stages(&report.spans, &mut stages);
    let counters: Vec<(&String, &u64)> = report
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("discovery."))
        .collect();

    let speedup = fanout_ms / engine_ms;
    // `records_per_sec` derives from ONE documented timing source: the
    // `core.discovery` span of the instrumented engine pass — the span
    // that wraps exactly the record-scanning engine, nothing else. The
    // wall-clock `engine_ms` (best of N uninstrumented passes) stays
    // what the regression gate tracks; the span is what throughput is
    // quoted from, so the two can never silently disagree about what
    // they measure.
    let engine_span_ms = find_span(&report.spans, "core.discovery")
        .map(|s| s.nanos as f64 / 1e6)
        .unwrap_or(engine_ms);
    let records_per_sec = records as f64 / (engine_span_ms / 1e3);

    // The --scale phases: out-of-core corpus matching and the
    // replicated ISP pass. They run at every scale (scale 1 keeps them
    // cheap and keeps the history rows comparable); the throughput and
    // RSS acceptance bars bind at scale >= 16.
    let scaled = run_bench_scaled(&exp, pipeline.registry(), period, opts.scale);
    let peak_rss = iotmap_obs::peak_rss_bytes().unwrap_or(0);
    if peak_rss > SCALED_RSS_CEILING_BYTES {
        eprintln!(
            "# bench: REGRESSION — peak RSS {} MiB exceeds the documented {} MiB ceiling \
             (the out-of-core guarantee is broken)",
            peak_rss >> 20,
            SCALED_RSS_CEILING_BYTES >> 20
        );
        std::process::exit(1);
    }
    if opts.scale >= 16 && scaled.match_records_per_sec < SCALED_MATCH_FLOOR_RPS {
        eprintln!(
            "# bench: REGRESSION — scaled match sustained {:.0} records/sec at scale {}, \
             below the {SCALED_MATCH_FLOOR_RPS:.0} records/sec floor",
            scaled.match_records_per_sec, opts.scale
        );
        std::process::exit(1);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"iotmap-bench/pipeline-v3\",\n");
    json.push_str(&format!("  \"preset\": \"{}\",\n", opts.preset));
    json.push_str(&format!("  \"seed\": {},\n", config.seed));
    json.push_str(&format!("  \"threads\": {},\n", opts.threads));
    json.push_str(&format!("  \"faults\": \"{}\",\n", opts.faults));
    json.push_str(&format!("  \"cache\": \"{cache_tag}\",\n"));
    json.push_str(&format!("  \"scale\": {},\n", opts.scale));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str(&format!("  \"records\": {records},\n"));
    json.push_str(&format!("  \"discovered_ips\": {engine_ips},\n"));
    json.push_str(&format!("  \"prepare_ms\": {prepare_ms:.1},\n"));
    json.push_str("  \"prepare_stages_ms\": {\n");
    for (i, (name, ms)) in prepare_stages.iter().enumerate() {
        let comma = if i + 1 < prepare_stages.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!("    \"{name}\": {ms:.3}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"engine_ms\": {engine_ms:.3},\n"));
    json.push_str(&format!("  \"engine_span_ms\": {engine_span_ms:.3},\n"));
    json.push_str(&format!("  \"fanout_ms\": {fanout_ms:.3},\n"));
    json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    json.push_str(&format!("  \"records_per_sec\": {records_per_sec:.0},\n"));
    json.push_str(&format!("  \"peak_rss_bytes\": {peak_rss},\n"));
    json.push_str("  \"scaled\": {\n");
    json.push_str(&format!(
        "    \"corpus_records\": {},\n",
        scaled.corpus_records
    ));
    json.push_str(&format!(
        "    \"corpus_unique_certs\": {},\n",
        scaled.corpus_unique_certs
    ));
    json.push_str(&format!(
        "    \"corpus_spool_bytes\": {},\n",
        scaled.corpus_spool_bytes
    ));
    json.push_str(&format!("    \"spool_ms\": {:.3},\n", scaled.spool_ms));
    json.push_str(&format!(
        "    \"classify_ms\": {:.3},\n",
        scaled.classify_ms
    ));
    json.push_str(&format!("    \"match_ms\": {:.3},\n", scaled.match_ms));
    json.push_str(&format!(
        "    \"match_records_per_sec\": {:.0},\n",
        scaled.match_records_per_sec
    ));
    json.push_str(&format!(
        "    \"matched_records\": {},\n",
        scaled.matched_records
    ));
    json.push_str(&format!("    \"isp_replicas\": {},\n", scaled.isp_replicas));
    json.push_str(&format!("    \"isp_lines\": {},\n", scaled.isp_lines));
    json.push_str(&format!("    \"isp_ms\": {:.3},\n", scaled.isp_ms));
    json.push_str(&format!(
        "    \"isp_total_dn_bytes\": {}\n",
        scaled.isp_total_dn_bytes
    ));
    json.push_str("  },\n");
    json.push_str("  \"stages_ms\": {\n");
    for (i, (name, ms)) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ms:.3}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"counters\": {\n");
    for (i, (name, v)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    let path = match &opts.out_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("# failed to create {dir}: {e}");
                std::process::exit(1);
            }
            std::path::Path::new(dir).join("BENCH_pipeline.json")
        }
        None => std::path::PathBuf::from("BENCH_pipeline.json"),
    };
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("# failed to write {}: {e}", path.display());
        std::process::exit(1);
    }

    println!(
        "discovery bench (preset {}, seed {}, threads {}, faults {}, cache {cache_tag})",
        opts.preset, config.seed, opts.threads, opts.faults
    );
    println!("  records scanned      : {records}");
    println!("  discovered IPs       : {engine_ips}");
    println!("  prepare              : {prepare_ms:9.1} ms");
    for (name, ms) in &prepare_stages {
        println!("    prepare.{name:<20} {ms:9.1} ms");
    }
    println!("  engine (single-pass) : {engine_ms:9.1} ms  (best of {iters})");
    println!(
        "  engine span          : {engine_span_ms:9.1} ms  (core.discovery — records/sec source)"
    );
    println!("  fanout (per-provider): {fanout_ms:9.1} ms");
    println!("  speedup              : {speedup:.2}x");
    println!("  records/sec          : {records_per_sec:.0}");
    for (name, ms) in &stages {
        println!("    {name:<28} {ms:9.1} ms");
    }
    println!(
        "  scaled corpus (x{})   : {} records, {} unique certs, {:.1} MiB spooled",
        opts.scale,
        scaled.corpus_records,
        scaled.corpus_unique_certs,
        scaled.corpus_spool_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  scaled match         : {:9.1} ms  ({:.0} records/sec, {} matched)",
        scaled.match_ms, scaled.match_records_per_sec, scaled.matched_records
    );
    println!(
        "  scaled ISP pass      : {:9.1} ms  ({} replicas, {} lines, 1 day)",
        scaled.isp_ms, scaled.isp_replicas, scaled.isp_lines
    );
    println!(
        "  peak RSS             : {:9.1} MiB  (ceiling {} MiB)",
        peak_rss as f64 / (1024.0 * 1024.0),
        SCALED_RSS_CEILING_BYTES >> 20
    );
    eprintln!("# wrote {}", path.display());

    // Chrome trace: the instrumented prepare pass and the instrumented
    // engine pass, concatenated into one timeline.
    if let Some(out) = &opts.trace_out {
        let mut combined = prep_report.clone();
        combined.spans.extend(report.spans.iter().cloned());
        write_text(std::path::Path::new(out), &combined.to_chrome_trace());
        eprintln!("# wrote Chrome trace to {out}");
    }

    // Perf history: append one line per bench run, and (with --gate)
    // compare against the last entry from an identical configuration.
    let history_path = opts
        .history
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| match &opts.out_dir {
            Some(dir) => std::path::Path::new(dir).join("BENCH_history.jsonl"),
            None => std::path::PathBuf::from("BENCH_history.jsonl"),
        });
    let previous = std::fs::read_to_string(&history_path).unwrap_or_default();
    let comparable = previous.lines().rev().find(|line| {
        // Longitudinal runs append to the same history file under an
        // explicit "experiment" tag; untagged entries are bench lines.
        json_str(line, "experiment").unwrap_or_else(|| "bench".to_string()) == "bench"
            && json_str(line, "preset").as_deref() == Some(opts.preset.as_str())
            && json_f64(line, "seed") == Some(config.seed as f64)
            && json_f64(line, "threads") == Some(opts.threads as f64)
            && json_str(line, "faults").as_deref() == Some(opts.faults.as_str())
            // Entries predating the world cache carry no tag — they were
            // cache-less runs, so they compare against "none" only.
            && json_str(line, "cache").unwrap_or_else(|| "none".to_string()) == cache_tag
            // Entries predating the scaled phases ran at native size.
            && json_f64(line, "scale").unwrap_or(1.0) == opts.scale as f64
    });

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let fmt_map = |pairs: &[(String, f64)]| {
        let cells: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v:.3}"))
            .collect();
        cells.join(",")
    };
    let line = format!(
        "{{\"schema\":\"iotmap-bench/history-v1\",\"unix_time\":{unix_time},\
         \"git\":\"{}\",\"preset\":\"{}\",\"seed\":{},\"threads\":{},\"faults\":\"{}\",\
         \"cache\":\"{cache_tag}\",\"scale\":{},\
         \"records\":{records},\"discovered_ips\":{engine_ips},\
         \"prepare_ms\":{prepare_ms:.1},\"engine_ms\":{engine_ms:.3},\
         \"engine_span_ms\":{engine_span_ms:.3},\
         \"fanout_ms\":{fanout_ms:.3},\"speedup\":{speedup:.3},\
         \"records_per_sec\":{records_per_sec:.0},\
         \"scaled_match_records_per_sec\":{:.0},\"scaled_isp_ms\":{:.3},\
         \"peak_rss_bytes\":{peak_rss},\
         \"prepare_stages_ms\":{{{}}},\"stages_ms\":{{{}}}}}\n",
        git_rev(),
        opts.preset,
        config.seed,
        opts.threads,
        opts.faults,
        opts.scale,
        scaled.match_records_per_sec,
        scaled.isp_ms,
        fmt_map(&prepare_stages),
        fmt_map(&stages),
    );
    let appended = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&history_path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    match appended {
        Ok(()) => eprintln!("# appended history to {}", history_path.display()),
        Err(e) => {
            eprintln!("# failed to append {}: {e}", history_path.display());
            std::process::exit(1);
        }
    }

    if opts.gate {
        match comparable {
            None => println!(
                "  history gate         : no comparable entry in {} — pass",
                history_path.display()
            ),
            Some(prev) => {
                // Tracked stages: prepare and engine always; per-stage
                // entries only above a 10ms noise floor (sub-ms stages
                // jitter past any ratio threshold).
                let mut regressions: Vec<String> = Vec::new();
                let mut check = |label: &str, prev_ms: Option<f64>, cur_ms: f64, floor: f64| {
                    if let Some(p) = prev_ms {
                        if p >= floor && cur_ms > p * 1.25 {
                            regressions.push(format!(
                                "{label}: {cur_ms:.1} ms vs {p:.1} ms ({:+.0}%)",
                                (cur_ms / p - 1.0) * 100.0
                            ));
                        }
                    }
                };
                check("prepare_ms", json_f64(prev, "prepare_ms"), prepare_ms, 0.0);
                check("engine_ms", json_f64(prev, "engine_ms"), engine_ms, 0.0);
                if let Some(obj) = json_obj(prev, "prepare_stages_ms") {
                    for (name, cur) in &prepare_stages {
                        check(&format!("prepare.{name}"), json_f64(obj, name), *cur, 10.0);
                    }
                }
                if let Some(obj) = json_obj(prev, "stages_ms") {
                    for (name, cur) in &stages {
                        check(name, json_f64(obj, name), *cur, 10.0);
                    }
                }
                let prev_git = json_str(prev, "git").unwrap_or_else(|| "?".to_string());
                if regressions.is_empty() {
                    println!("  history gate         : ok (vs entry at git {prev_git})");
                } else {
                    for r in &regressions {
                        eprintln!("# bench: REGRESSION — {r}");
                    }
                    eprintln!(
                        "# bench: history gate FAILED — {} tracked stage(s) regressed >25% \
                         vs the entry at git {prev_git}",
                        regressions.len()
                    );
                    std::process::exit(1);
                }
            }
        }
    }

    if let Some(bl) = &opts.baseline {
        let base = std::fs::read_to_string(bl)
            .ok()
            .and_then(|t| json_f64(&t, "speedup"));
        match base {
            Some(base_speedup) => {
                let floor = base_speedup * 0.75;
                if speedup < floor {
                    eprintln!(
                        "# bench: REGRESSION — speedup {speedup:.2}x is below 75% of the \
                         baseline's {base_speedup:.2}x (floor {floor:.2}x)"
                    );
                    std::process::exit(1);
                }
                println!(
                    "  baseline gate        : ok ({speedup:.2}x vs baseline {base_speedup:.2}x, \
                     floor {floor:.2}x)"
                );
            }
            None => {
                eprintln!("# --baseline {bl:?}: unreadable or missing a \"speedup\" field");
                std::process::exit(2);
            }
        }
    }
}

/// Documented peak-RSS ceiling for a bench run, scaled phases included:
/// the corpus streams from its spool batch by batch and the replicated
/// ISP pass folds flows block by block, so even at `--scale 16`
/// (≥2M subscriber lines, ≥16× corpus) the process must stay under
/// this. DESIGN.md ("Scale model") documents the bound.
const SCALED_RSS_CEILING_BYTES: u64 = 6 * 1024 * 1024 * 1024;

/// Minimum sustained streamed-match throughput at `--scale >= 16`.
const SCALED_MATCH_FLOOR_RPS: f64 = 10_000_000.0;

/// What the two `--scale` phases measured, for BENCH_pipeline.json.
struct ScaledBench {
    corpus_records: u64,
    corpus_unique_certs: usize,
    corpus_spool_bytes: u64,
    spool_ms: f64,
    classify_ms: f64,
    match_ms: f64,
    match_records_per_sec: f64,
    matched_records: u64,
    isp_replicas: u64,
    isp_lines: u64,
    isp_ms: f64,
    isp_total_dn_bytes: u64,
}

/// A scaled phase hit an I/O or corpus error — exit 1 like any other
/// stage failure.
fn die_scaled(e: String) -> ! {
    eprintln!("# bench: scaled phase failed: {e}");
    std::process::exit(1);
}

/// The `--scale N` phases over one prepared experiment.
///
/// **Out-of-core match**: replicate the largest Censys snapshot `scale`×
/// into a length-prefixed spool ([`iotmap_scan::ScaledCorpus`]), classify
/// the unique certificate pool *once* with the single-pass engine, then
/// stream the spooled records back, resolving each against the per-cert
/// provider mask. That is how a 100× corpus must be processed to stay in
/// RSS: the cert work amortizes over the pool, the per-record work is a
/// mask lookup, and the corpus itself never materializes.
///
/// **Replicated ISP pass**: the §5 analysis fold over a replicated
/// subscriber population (replica `r` shifts line ids by `r × n`) for
/// one day, streamed block by block. At `scale >= 16` the replica count
/// is raised to cover at least 2M subscriber lines — the acceptance bar
/// for the scaled run.
fn run_bench_scaled(
    exp: &Experiment,
    registry: &PatternRegistry,
    period: StudyPeriod,
    scale: u64,
) -> ScaledBench {
    use iotmap_scan::ScaledCorpus;

    let base = exp
        .scans
        .censys
        .iter()
        .max_by_key(|s| s.records.len())
        .unwrap_or_else(|| die_scaled("no censys snapshots to replicate".into()));
    let spool_path = std::env::temp_dir().join(format!(
        "iotmap-bench-corpus-{}-x{scale}.spool",
        std::process::id()
    ));
    eprintln!(
        "# bench: spooling scaled corpus ({} records × {scale})…",
        base.records.len()
    );
    let t = std::time::Instant::now();
    let corpus = ScaledCorpus::replicate(base, scale, &spool_path, 64 * 1024)
        .unwrap_or_else(|e| die_scaled(e));
    let spool_ms = t.elapsed().as_secs_f64() * 1e3;

    // Classify the unique cert pool once. The index skips certs invalid
    // over the study period (exactly like the discovery harvest), so
    // verification is a pure regex walk.
    let t = std::time::Instant::now();
    let mut cert_index = iotmap_nettypes::SuffixIndex::new();
    let mut buf = String::new();
    for (row, cert) in corpus.certs().iter().enumerate() {
        if cert.valid_during(&period) {
            cert.for_each_name(&mut buf, |name| cert_index.insert(name, row as u32));
        }
    }
    let engine = iotmap_core::MatchEngine::sans(registry);
    let providers = registry.providers();
    let mut vbuf = String::new();
    let table = engine.classify(
        &cert_index,
        corpus.certs().len(),
        |p, row| {
            let mut hit = false;
            corpus.certs()[row as usize]
                .for_each_name(&mut vbuf, |name| hit |= providers[p].matches_san(name));
            hit
        },
        |row, f| {
            let cert = &corpus.certs()[row as usize];
            if cert.valid_during(&period) {
                cert.for_each_name(&mut buf, |name| f(name));
            }
        },
    );
    let mask: Vec<bool> = (0..corpus.certs().len()).map(|r| table.any(r)).collect();
    let classify_ms = t.elapsed().as_secs_f64() * 1e3;

    // The timed phase: stream every spooled record through the mask.
    let t = std::time::Instant::now();
    let mut matched = 0u64;
    let mut streamed = 0u64;
    let mut reader = corpus.stream().unwrap_or_else(|e| die_scaled(e));
    loop {
        match reader.next_batch() {
            Ok(Some(batch)) => {
                for record in batch {
                    matched += mask[record.cert as usize] as u64;
                }
                streamed += batch.len() as u64;
            }
            Ok(None) => break,
            Err(e) => die_scaled(e),
        }
    }
    let match_ms = t.elapsed().as_secs_f64() * 1e3;
    let match_records_per_sec = streamed as f64 / (match_ms / 1e3);
    let (corpus_records, corpus_spool_bytes, corpus_unique_certs) =
        (corpus.records(), corpus.spool_bytes(), corpus.certs().len());
    corpus.remove();
    if streamed != corpus_records {
        die_scaled(format!(
            "corpus streamed {streamed} of {corpus_records} records"
        ));
    }

    // The replicated ISP pass, over one day of the study period.
    let lines = exp.world.isp.lines.len() as u64;
    let isp_replicas = if scale >= 16 {
        scale.max(2_000_000u64.div_ceil(lines))
    } else {
        scale
    };
    let day = {
        let d = period.start.date();
        StudyPeriod::from_dates(d, d.succ())
    };
    eprintln!(
        "# bench: replicated ISP pass ({isp_replicas} replicas = {} lines, 1 day)…",
        isp_replicas * lines
    );
    let t = std::time::Instant::now();
    let contacts = exp.contact_pass(day);
    let excluded = exp.excluded_lines(&contacts);
    drop(contacts);
    let isp_report = exp.scaled_analysis_pass(day, isp_replicas, &excluded);
    let isp_ms = t.elapsed().as_secs_f64() * 1e3;
    let isp_total_dn_bytes: u64 = isp_report
        .providers()
        .iter()
        .map(|p| isp_report.total_downstream(p))
        .sum();

    ScaledBench {
        corpus_records,
        corpus_unique_certs,
        corpus_spool_bytes,
        spool_ms,
        classify_ms,
        match_ms,
        match_records_per_sec,
        matched_records: matched,
        isp_replicas,
        isp_lines: isp_replicas * lines,
        isp_ms,
        isp_total_dn_bytes,
    }
}

/// `exp profile` — run the full pipeline instrumented and report where
/// the time went: top-N spans by self-time, per-shard imbalance, and the
/// busiest counters. `--smoke` skips the traffic passes (the fast path
/// `scripts/check.sh` exercises); `--trace-out`/`--metrics` write the
/// same artifacts as any instrumented run, including on failure.
fn run_profile(
    opts: &iotmap_bench::CliOptions,
    config: &WorldConfig,
    faults: &iotmap_faults::FaultPlan,
) {
    eprintln!(
        "# profile: preparing world (seed {}, preset {}, faults {})…",
        config.seed, opts.preset, opts.faults
    );
    let registry = std::rc::Rc::new(iotmap_obs::Registry::new());
    iotmap_obs::install(registry.clone());
    let t0 = std::time::Instant::now();
    let exp = match Experiment::try_prepare_opts(
        config,
        faults.clone(),
        opts.checkpoints.as_deref(),
        opts.resume.as_deref(),
        opts.cache.as_deref(),
    ) {
        Ok(exp) => exp,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            iotmap_obs::uninstall();
            emit_observability(opts, &registry.report());
            std::process::exit(1);
        }
    };
    if !opts.smoke {
        eprintln!("# profile: simulating main-week ISP traffic…");
        let contacts = exp.contact_pass(config.study_period);
        let excluded = exp.excluded_lines(&contacts);
        let _ = exp.analysis_pass(config.study_period, &excluded);
    }
    let wall = t0.elapsed();
    iotmap_obs::uninstall();
    let report = registry.report();

    println!(
        "profile (preset {}, seed {}, threads {}, faults {}{})",
        opts.preset,
        config.seed,
        opts.threads,
        opts.faults,
        if opts.smoke { ", smoke" } else { "" }
    );
    println!(
        "  wall time            : {:9.1} ms",
        wall.as_secs_f64() * 1e3
    );
    println!("  discovered IPs       : {}", exp.discovery.all_ips().len());

    let total: u64 = report.spans.iter().map(|s| s.nanos).sum();
    println!("\n  top {} spans by self-time:", opts.top);
    for (path, self_nanos) in report.top_self_time(opts.top) {
        println!(
            "    {:>9.1} ms  {:>5.1}%  {path}",
            self_nanos as f64 / 1e6,
            self_nanos as f64 / total.max(1) as f64 * 100.0,
        );
    }

    // Per-shard imbalance: group attributed spans by name, sum each
    // shard's time, and compare the slowest shard to the mean.
    let mut sharded: BTreeMap<String, BTreeMap<u64, (u64, u64, bool)>> = BTreeMap::new();
    collect_sharded(&report.spans, &mut sharded);
    println!("\n  per-shard imbalance:");
    if sharded.is_empty() {
        println!("    (no sharded spans recorded — single-shard run)");
    }
    for (name, shards) in &sharded {
        let times: Vec<f64> = shards.values().map(|&(ns, _, _)| ns as f64 / 1e6).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let (max_shard, max_ms) = shards
            .iter()
            .map(|(&s, &(ns, _, _))| (s, ns as f64 / 1e6))
            .fold((0u64, 0.0f64), |a, b| if b.1 > a.1 { b } else { a });
        let items: u64 = shards.values().map(|&(_, i, _)| i).sum();
        let quarantined = shards.values().filter(|&&(_, _, q)| q).count();
        print!(
            "    {name}: {} shards, {items} items, mean {mean:.1} ms, \
             max {max_ms:.1} ms (shard {max_shard}), imbalance {:.2}x",
            shards.len(),
            max_ms / mean.max(1e-9),
        );
        if quarantined > 0 {
            print!(", {quarantined} quarantined");
        }
        println!();
    }

    // Counter deltas: the busiest counters of the whole run.
    let mut counters: Vec<(&String, &u64)> = report.counters.iter().collect();
    counters.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    println!("\n  top {} counters:", opts.top);
    for (name, value) in counters.into_iter().take(opts.top) {
        println!("    {value:>12}  {name}");
    }

    emit_observability(opts, &report);
}

/// Accumulate per-shard `(nanos, items, quarantined)` sums for every
/// span name that carries shard attribution, at any depth.
fn collect_sharded(
    nodes: &[iotmap_obs::SpanNode],
    out: &mut BTreeMap<String, BTreeMap<u64, (u64, u64, bool)>>,
) {
    for n in nodes {
        if let Some(shard) = n.meta_value("shard") {
            let entry = out
                .entry(n.name.clone())
                .or_default()
                .entry(shard)
                .or_insert((0, 0, false));
            entry.0 += n.nanos;
            // Every root merged from one shard carries the same item
            // count — take it, don't sum it.
            entry.1 = n.meta_value("items").unwrap_or(entry.1);
            entry.2 |= n.meta_value("quarantined").is_some();
        }
        collect_sharded(&n.children, out);
    }
}

/// The crash-recovery drill: for every stage boundary, run the pipeline
/// with the supervisor's kill switch armed after that stage (checkpointing
/// into a scratch run directory), resume from the checkpoints, and demand
/// the resumed artifacts are byte-identical to an uninterrupted run. A
/// final chaos pass injects seeded stage and shard crashes (no
/// checkpoints) and demands the retries converge to the same bytes.
/// Any divergence, failed resume, or unfired kill switch exits 1.
fn run_crash_recovery(
    opts: &iotmap_bench::CliOptions,
    config: &WorldConfig,
    faults: &iotmap_faults::FaultPlan,
) {
    use iotmap_bench::Pipeline;

    if faults.crash.is_active() {
        eprintln!(
            "# crash-recovery: note — the plan's own crash settings are overridden per scenario"
        );
    }
    let run = |plan: iotmap_faults::FaultPlan,
               dir: Option<&std::path::Path>,
               resume: bool|
     -> Result<iotmap_bench::RunArtifacts, iotmap_nettypes::Error> {
        let mut p = Pipeline::new(config.clone())
            .threads(opts.threads)
            .faults(plan);
        if let Some(dir) = dir {
            p = if resume {
                p.resume(dir)
            } else {
                p.checkpoints(dir)
            };
        }
        if let Some(cache) = opts.cache.as_deref() {
            p = p.cache(cache);
        }
        p.run()
    };

    eprintln!(
        "# crash-recovery: uninterrupted baseline (seed {}, preset {}, faults {})…",
        config.seed, opts.preset, opts.faults
    );
    let mut clean = faults.clone();
    clean.crash = iotmap_faults::CrashFaults::NONE;
    let baseline = match run(clean.clone(), None, false) {
        Ok(a) => a.canonical_dump(),
        Err(e) => {
            eprintln!("crash-recovery: baseline run failed: {e}");
            std::process::exit(1);
        }
    };

    let root = opts.out_dir.as_ref().map_or_else(
        || std::env::temp_dir().join(format!("iotmap-crash-recovery-{}", std::process::id())),
        |d| std::path::Path::new(d).join("crash-recovery"),
    );
    let stages = ["world", "scans", "discovery", "footprints", "shared-ip"];
    let mut failures = 0usize;
    for stage in stages {
        let dir = root.join(stage);
        let _ = std::fs::remove_dir_all(&dir);
        let mut kill = clean.clone();
        kill.crash.kill_after_stage = Some(stage.to_string());
        match run(kill, Some(&dir), false) {
            Err(_) => {}
            Ok(_) => {
                eprintln!("# {stage}: kill switch did not fire — nothing to resume from");
                failures += 1;
                continue;
            }
        }
        match run(clean.clone(), Some(&dir), true) {
            Ok(a) if a.canonical_dump() == baseline => {
                println!("{stage:>10}: killed after stage, resumed, artifacts byte-identical");
            }
            Ok(_) => {
                eprintln!("# {stage}: resumed artifacts DIVERGE from the uninterrupted run");
                failures += 1;
            }
            Err(e) => {
                eprintln!("# {stage}: resume failed: {e}");
                failures += 1;
            }
        }
    }

    // Chaos pass: seeded stage and shard crashes, contained by the
    // supervisor's retries and the shard quarantine — no checkpoints.
    let mut chaos = clean;
    chaos.crash.stage_rate = 0.4;
    chaos.crash.shard_rate = 0.02;
    chaos.crash.max_crashes = 2;
    match run(chaos, None, false) {
        Ok(a) if a.canonical_dump() == baseline => {
            println!(
                "{:>10}: injected crashes contained, artifacts byte-identical",
                "chaos"
            );
        }
        Ok(_) => {
            eprintln!("# chaos: artifacts DIVERGE after contained crashes");
            failures += 1;
        }
        Err(e) => {
            eprintln!("# chaos: run failed despite retry budget: {e}");
            failures += 1;
        }
    }

    if opts.out_dir.is_none() {
        let _ = std::fs::remove_dir_all(&root);
    }
    if failures > 0 {
        eprintln!("# crash-recovery: {failures} scenario(s) FAILED");
        std::process::exit(1);
    }
    println!("crash-recovery: all scenarios recovered byte-identically");
}

/// `exp longitudinal` — the paper's study as an incremental run: prepare
/// the world once, then roll the artifacts forward one day at a time via
/// `PreparedWorld::advance`, checking every rolled state byte-identical
/// to a from-scratch re-run over the merged corpus and recording how much
/// cheaper the incremental path is. Any divergence exits 1. Writes
/// `BENCH_longitudinal.json` plus a tagged perf-history line; `--gate`
/// additionally demands the mean per-day incremental cost stays below 25%
/// of a full re-run and has not regressed >25% vs the last comparable
/// history entry.
fn run_longitudinal(
    opts: &iotmap_bench::CliOptions,
    config: &WorldConfig,
    faults: &iotmap_faults::FaultPlan,
) {
    use iotmap_bench::Pipeline;

    eprintln!(
        "# longitudinal: preparing world (seed {}, preset {}, faults {}, {} days)…",
        config.seed, opts.preset, opts.faults, opts.days
    );
    let mut pipeline = Pipeline::new(config.clone())
        .threads(opts.threads)
        .faults(faults.clone());
    if let Some(dir) = opts.cache.as_deref() {
        pipeline = pipeline.cache(dir);
    }
    let mut prepared = match pipeline.prepare() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            std::process::exit(1);
        }
    };

    // Bootstrap the rolled run before the day loop, so each day's timing
    // measures `advance`, not the initial full execution.
    let t0 = std::time::Instant::now();
    if let Err(e) = prepared.rolled() {
        eprintln!("pipeline failed: {e}");
        std::process::exit(1);
    }
    let bootstrap_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("# longitudinal: day-0 bootstrap in {bootstrap_ms:.1} ms");

    struct DayRow {
        date: Date,
        scan_records: u64,
        certificates: u64,
        pdns_rows: u64,
        discovered_ips: usize,
        incremental_ms: f64,
        full_ms: f64,
    }
    let mut rows: Vec<DayRow> = Vec::with_capacity(opts.days);
    for day in 1..=opts.days {
        let delta = prepared.next_delta();
        // Churn is counted against the pristine database: every row the
        // widened window newly reveals, degraded or not downstream.
        let churn = delta.summary(&prepared.world.passive_dns);
        let date = Date::from_epoch_days((delta.to_end.unix() / 86_400) as i64 - 1);

        let t = std::time::Instant::now();
        let rolled_dump = match prepared.advance(&delta) {
            Ok(artifacts) => artifacts.canonical_dump(),
            Err(e) => {
                eprintln!("# longitudinal: day {day}: advance failed: {e}");
                std::process::exit(1);
            }
        };
        let incremental_ms = t.elapsed().as_secs_f64() * 1e3;

        // `advance` extends the pristine corpus in lockstep, so a plain
        // execute IS the from-scratch run over the merged corpus.
        let t = std::time::Instant::now();
        let oracle = match prepared.execute() {
            Ok(artifacts) => artifacts,
            Err(e) => {
                eprintln!("# longitudinal: day {day}: from-scratch re-run failed: {e}");
                std::process::exit(1);
            }
        };
        let full_ms = t.elapsed().as_secs_f64() * 1e3;
        if oracle.canonical_dump() != rolled_dump {
            eprintln!(
                "# longitudinal: day {day} ({date}): rolled artifacts DIVERGE from the \
                 from-scratch re-run over the merged corpus"
            );
            std::process::exit(1);
        }
        eprintln!(
            "# longitudinal: day {day}/{} ({date}): incremental {incremental_ms:.1} ms, \
             full re-run {full_ms:.1} ms, byte-identical",
            opts.days
        );
        rows.push(DayRow {
            date,
            scan_records: churn.scan_records,
            certificates: churn.certificates,
            pdns_rows: churn.pdns_rows_revealed,
            discovered_ips: oracle.discovery.all_ips().len(),
            incremental_ms,
            full_ms,
        });
    }

    let incremental_total_ms: f64 = rows.iter().map(|r| r.incremental_ms).sum();
    let full_total_ms: f64 = rows.iter().map(|r| r.full_ms).sum();
    let ratio = incremental_total_ms / full_total_ms;

    println!(
        "longitudinal (preset {}, seed {}, threads {}, faults {}, {} days)",
        opts.preset, config.seed, opts.threads, opts.faults, opts.days
    );
    println!("  day-0 bootstrap      : {bootstrap_ms:9.1} ms");
    println!(
        "  {:<5} {:<12} {:>8} {:>7} {:>10} {:>8} {:>12} {:>10} {:>7}",
        "day", "date", "records", "certs", "pdns-rows", "ips", "incr-ms", "full-ms", "ratio"
    );
    for (i, r) in rows.iter().enumerate() {
        println!(
            "  {:<5} {:<12} {:>8} {:>7} {:>10} {:>8} {:>12.1} {:>10.1} {:>6.1}%",
            i + 1,
            r.date.to_string(),
            r.scan_records,
            r.certificates,
            r.pdns_rows,
            r.discovered_ips,
            r.incremental_ms,
            r.full_ms,
            r.incremental_ms / r.full_ms * 100.0,
        );
    }
    println!(
        "  total                : incremental {incremental_total_ms:.1} ms vs full re-runs \
         {full_total_ms:.1} ms ({:.1}%)",
        ratio * 100.0
    );
    println!(
        "  byte-identity        : all {} days identical to from-scratch",
        opts.days
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"iotmap-bench/longitudinal-v1\",\n");
    json.push_str(&format!("  \"preset\": \"{}\",\n", opts.preset));
    json.push_str(&format!("  \"seed\": {},\n", config.seed));
    json.push_str(&format!("  \"threads\": {},\n", opts.threads));
    json.push_str(&format!("  \"faults\": \"{}\",\n", opts.faults));
    json.push_str(&format!("  \"days\": {},\n", opts.days));
    json.push_str(&format!("  \"bootstrap_ms\": {bootstrap_ms:.1},\n"));
    json.push_str("  \"per_day\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"day\": {}, \"date\": \"{}\", \"scan_records\": {}, \
             \"certificates\": {}, \"pdns_rows_revealed\": {}, \"discovered_ips\": {}, \
             \"incremental_ms\": {:.3}, \"full_ms\": {:.3}, \"ratio\": {:.4}}}{comma}\n",
            i + 1,
            r.date,
            r.scan_records,
            r.certificates,
            r.pdns_rows,
            r.discovered_ips,
            r.incremental_ms,
            r.full_ms,
            r.incremental_ms / r.full_ms,
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"incremental_total_ms\": {incremental_total_ms:.3},\n"
    ));
    json.push_str(&format!("  \"full_total_ms\": {full_total_ms:.3},\n"));
    json.push_str(&format!("  \"ratio\": {ratio:.4}\n"));
    json.push_str("}\n");

    let path = match &opts.out_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("# failed to create {dir}: {e}");
                std::process::exit(1);
            }
            std::path::Path::new(dir).join("BENCH_longitudinal.json")
        }
        None => std::path::PathBuf::from("BENCH_longitudinal.json"),
    };
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("# failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("# wrote {}", path.display());

    // Perf history: same file as bench, tagged so the two modes only ever
    // compare against their own entries.
    let history_path = opts
        .history
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| match &opts.out_dir {
            Some(dir) => std::path::Path::new(dir).join("BENCH_history.jsonl"),
            None => std::path::PathBuf::from("BENCH_history.jsonl"),
        });
    let previous = std::fs::read_to_string(&history_path).unwrap_or_default();
    let comparable = previous.lines().rev().find(|line| {
        json_str(line, "experiment").as_deref() == Some("longitudinal")
            && json_str(line, "preset").as_deref() == Some(opts.preset.as_str())
            && json_f64(line, "seed") == Some(config.seed as f64)
            && json_f64(line, "threads") == Some(opts.threads as f64)
            && json_str(line, "faults").as_deref() == Some(opts.faults.as_str())
            && json_f64(line, "days") == Some(opts.days as f64)
    });
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = format!(
        "{{\"schema\":\"iotmap-bench/history-v1\",\"experiment\":\"longitudinal\",\
         \"unix_time\":{unix_time},\"git\":\"{}\",\"preset\":\"{}\",\"seed\":{},\
         \"threads\":{},\"faults\":\"{}\",\"days\":{},\"bootstrap_ms\":{bootstrap_ms:.1},\
         \"incremental_ms\":{incremental_total_ms:.3},\"full_ms\":{full_total_ms:.3},\
         \"ratio\":{ratio:.4}}}\n",
        git_rev(),
        opts.preset,
        config.seed,
        opts.threads,
        opts.faults,
        opts.days,
    );
    let appended = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&history_path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    match appended {
        Ok(()) => eprintln!("# appended history to {}", history_path.display()),
        Err(e) => {
            eprintln!("# failed to append {}: {e}", history_path.display());
            std::process::exit(1);
        }
    }

    if opts.gate {
        // The tentpole's cost contract: rolling a day forward must cost
        // less than a quarter of re-running the merged corpus.
        if ratio >= 0.25 {
            eprintln!(
                "# longitudinal: gate FAILED — mean incremental cost is {:.1}% of a full \
                 re-run (must stay below 25%)",
                ratio * 100.0
            );
            std::process::exit(1);
        }
        match comparable {
            None => println!(
                "  history gate         : no comparable entry in {} — pass",
                history_path.display()
            ),
            Some(prev) => {
                let prev_git = json_str(prev, "git").unwrap_or_else(|| "?".to_string());
                let prev_ms = json_f64(prev, "incremental_ms").unwrap_or(f64::INFINITY);
                if incremental_total_ms > prev_ms * 1.25 {
                    eprintln!(
                        "# longitudinal: REGRESSION — incremental total {incremental_total_ms:.1} \
                         ms vs {prev_ms:.1} ms ({:+.0}%) at git {prev_git}",
                        (incremental_total_ms / prev_ms - 1.0) * 100.0
                    );
                    std::process::exit(1);
                }
                println!("  history gate         : ok (vs entry at git {prev_git})");
            }
        }
        println!(
            "  cost gate            : ok ({:.1}% of a full re-run, floor 25%)",
            ratio * 100.0
        );
    }
}

/// `exp scenario` — run declarative world-event scenarios and measure
/// graceful degradation. An event-free baseline runs first; then every
/// scenario file runs over the same `(config, faults, threads)`, its
/// engine phase executes twice as a byte-determinism oracle, and the
/// per-event precision/recall/footprint-stability deltas against the
/// baseline land in BENCH_scenarios.json.
fn run_scenario(
    opts: &iotmap_bench::CliOptions,
    config: &WorldConfig,
    faults: &iotmap_faults::FaultPlan,
) {
    use iotmap::scenario::{measure_resilience, Scenario};
    use iotmap_bench::Pipeline;

    // Collect (file, parsed scenario) pairs from --file / --matrix.
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    if let Some(f) = &opts.file {
        files.push(std::path::PathBuf::from(f));
    }
    if let Some(dir) = &opts.matrix {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("--matrix {dir:?}: {e}");
                std::process::exit(2);
            }
        };
        let mut found: Vec<std::path::PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
            .collect();
        found.sort();
        if found.is_empty() {
            eprintln!("--matrix {dir:?}: no *.scn files");
            std::process::exit(2);
        }
        files.extend(found);
    }
    if files.is_empty() {
        eprintln!("the scenario experiment needs --file SCENARIO.scn or --matrix DIR");
        std::process::exit(2);
    }
    let scenarios: Vec<(std::path::PathBuf, Scenario)> = files
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("{}: {e}", path.display());
                std::process::exit(2);
            });
            let scenario = Scenario::parse(&text).unwrap_or_else(|e| {
                eprintln!("{}: {e}", path.display());
                std::process::exit(2);
            });
            (path, scenario)
        })
        .collect();

    // `--trace`/`--metrics`/`--trace-out` instrument the whole matrix; the
    // `scenario.*` gauges emitted by measure_resilience land in the run
    // report, so the metrics markdown carries the `## Resilience` table.
    let instrumented = opts.trace || opts.metrics.is_some() || opts.trace_out.is_some();
    let registry = std::rc::Rc::new(iotmap_obs::Registry::new());
    if instrumented {
        iotmap_obs::install(registry.clone());
    }

    let prepare = |scenario: Option<&Scenario>| {
        let mut pipeline = Pipeline::new(config.clone())
            .threads(opts.threads)
            .faults(faults.clone());
        if let Some(dir) = opts.cache.as_deref() {
            pipeline = pipeline.cache(dir);
        }
        if let Some(sc) = scenario {
            pipeline = pipeline.scenario(sc.clone());
        }
        pipeline.prepare().unwrap_or_else(|e| {
            eprintln!("pipeline failed: {e}");
            std::process::exit(1);
        })
    };
    let execute = |prepared: &iotmap::PreparedWorld, what: &str| {
        prepared.execute().unwrap_or_else(|e| {
            eprintln!("{what}: engine failed: {e}");
            std::process::exit(1);
        })
    };
    let discovered_providers = |artifacts: &iotmap::RunArtifacts| {
        artifacts
            .discovery
            .per_provider()
            .filter(|(_, d)| !d.ips.is_empty())
            .count()
    };

    eprintln!(
        "# scenario: event-free baseline (seed {}, preset {}, faults {}, threads {})…",
        config.seed, opts.preset, opts.faults, opts.threads
    );
    let t0 = std::time::Instant::now();
    let baseline = execute(&prepare(None), "baseline");
    let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "# scenario: baseline ready in {baseline_ms:.1} ms ({} providers, {} IPs)",
        discovered_providers(&baseline),
        baseline.discovery.all_ips().len()
    );

    struct ScenarioRow {
        file: String,
        name: String,
        fingerprint: u64,
        events: usize,
        skipped: u64,
        providers_discovered: usize,
        discovered_ips: usize,
        deterministic: bool,
        run_ms: f64,
        resilience: Vec<iotmap::scenario::EventResilience>,
    }
    let mut rows: Vec<ScenarioRow> = Vec::new();
    let mut all_deterministic = true;
    for (path, scenario) in &scenarios {
        eprintln!(
            "# scenario: {} ({} events)…",
            scenario.name,
            scenario.timeline.events.len()
        );
        let t = std::time::Instant::now();
        let prepared = prepare(Some(scenario));
        let artifacts = execute(&prepared, &scenario.name);
        let run_ms = t.elapsed().as_secs_f64() * 1e3;
        // Determinism oracle: a second engine execution over the same
        // prepared world must produce byte-identical artifacts.
        let deterministic =
            execute(&prepared, &scenario.name).canonical_dump() == artifacts.canonical_dump();
        all_deterministic &= deterministic;
        let resilience = measure_resilience(
            scenario,
            &artifacts.world,
            &baseline.discovery,
            &baseline.footprints,
            &artifacts.discovery,
            &artifacts.footprints,
        );
        eprintln!(
            "# scenario: {}: {} providers, {} IPs, {} skipped events, {}",
            scenario.name,
            discovered_providers(&artifacts),
            artifacts.discovery.all_ips().len(),
            artifacts.world.timeline.skipped,
            if deterministic {
                "deterministic"
            } else {
                "NON-DETERMINISTIC"
            }
        );
        rows.push(ScenarioRow {
            file: path.display().to_string(),
            name: scenario.name.clone(),
            fingerprint: scenario.fingerprint(),
            events: scenario.timeline.events.len(),
            skipped: artifacts.world.timeline.skipped,
            providers_discovered: discovered_providers(&artifacts),
            discovered_ips: artifacts.discovery.all_ips().len(),
            deterministic,
            run_ms,
            resilience,
        });
    }

    println!(
        "scenario matrix (preset {}, seed {}, threads {}, faults {})",
        opts.preset, config.seed, opts.threads, opts.faults
    );
    println!(
        "  baseline             : {} providers, {} IPs, {baseline_ms:.1} ms",
        discovered_providers(&baseline),
        baseline.discovery.all_ips().len()
    );
    for row in &rows {
        println!(
            "  {:<20} : {} events, {} providers, {} IPs, {}, {:.1} ms",
            row.name,
            row.events,
            row.providers_discovered,
            row.discovered_ips,
            if row.deterministic {
                "deterministic"
            } else {
                "NON-DETERMINISTIC"
            },
            row.run_ms,
        );
        for ev in &row.resilience {
            for p in &ev.providers {
                println!(
                    "    {:<40} {:<12} Δprecision {:+5}‰  Δrecall {:+5}‰  stability {:4}‰",
                    ev.label,
                    p.provider,
                    p.precision_delta_pm,
                    p.recall_delta_pm,
                    p.footprint_stability_pm,
                );
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"iotmap-bench/scenarios-v1\",\n");
    json.push_str(&format!("  \"preset\": \"{}\",\n", opts.preset));
    json.push_str(&format!("  \"seed\": {},\n", config.seed));
    json.push_str(&format!("  \"threads\": {},\n", opts.threads));
    json.push_str(&format!("  \"faults\": \"{}\",\n", opts.faults));
    json.push_str(&format!(
        "  \"baseline\": {{\"providers_discovered\": {}, \"discovered_ips\": {}, \
         \"run_ms\": {baseline_ms:.3}}},\n",
        discovered_providers(&baseline),
        baseline.discovery.all_ips().len()
    ));
    json.push_str("  \"scenarios\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"file\": \"{}\", \"fingerprint\": \"{:016x}\", \
             \"events\": {}, \"skipped_events\": {}, \"providers_discovered\": {}, \
             \"discovered_ips\": {}, \"deterministic\": {}, \"run_ms\": {:.3}, \
             \"resilience\": [",
            row.name,
            row.file,
            row.fingerprint,
            row.events,
            row.skipped,
            row.providers_discovered,
            row.discovered_ips,
            row.deterministic,
            row.run_ms,
        ));
        let mut first = true;
        for ev in &row.resilience {
            for p in &ev.providers {
                if !first {
                    json.push_str(", ");
                }
                first = false;
                json.push_str(&format!(
                    "{{\"event\": \"{}\", \"provider\": \"{}\", \"precision_delta_pm\": {}, \
                     \"recall_delta_pm\": {}, \"footprint_stability_pm\": {}, \
                     \"discovered\": {}}}",
                    ev.label,
                    p.provider,
                    p.precision_delta_pm,
                    p.recall_delta_pm,
                    p.footprint_stability_pm,
                    p.discovered,
                ));
            }
        }
        json.push_str(&format!("]}}{comma}\n"));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    let path = match &opts.out_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("# failed to create {dir}: {e}");
                std::process::exit(1);
            }
            std::path::Path::new(dir).join("BENCH_scenarios.json")
        }
        None => std::path::PathBuf::from("BENCH_scenarios.json"),
    };
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("# failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("# wrote {}", path.display());

    if instrumented {
        iotmap_obs::uninstall();
        emit_observability(opts, &registry.report());
    }

    if !all_deterministic {
        eprintln!("# scenario: determinism oracle FAILED — see rows above");
        std::process::exit(1);
    }
}
