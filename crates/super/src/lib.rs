//! # iotmap-super — the supervised pipeline runtime
//!
//! The paper's campaign runs for days over flaky infrastructure; a
//! production pipeline must survive its *own* failures, not just degraded
//! inputs. This crate supervises a sequence of named stages:
//!
//! * **Panic containment + retry** — every stage attempt runs under
//!   `catch_unwind`; a panicked attempt is retried up to the policy's
//!   budget with **seeded exponential backoff** (pure-hash jitter via
//!   `iotmap_faults::roll`, so the retry schedule is a deterministic
//!   function of `(seed, stage, attempt)` — never of wall-clock or
//!   thread identity).
//! * **Deadlines** — a stage attempt that completes past its deadline is
//!   treated as failed and retried (checked post-hoc: safe Rust cannot
//!   kill a hung thread, so a deadline bounds what the supervisor
//!   *accepts*, not what it can interrupt).
//! * **Checkpoint/resume** — after each completed stage the supervisor
//!   serializes the stage's artifact into a [`CheckpointStore`]
//!   (std-only, length-prefixed binary, FNV-1a checksum, run fingerprint
//!   in the header; see [`checkpoint`]). A resumed run restores stages
//!   whose checkpoints verify and recomputes the rest — corrupted or
//!   mismatched files are detected, reported, and discarded, never
//!   trusted.
//! * **Crash injection** — the `crash` fault family
//!   ([`iotmap_faults::CrashFaults`]) is armed around every attempt, so
//!   seeded stage/shard panics and the post-stage kill switch exercise
//!   exactly the paths above.
//!
//! Stages must be **pure** functions of their (already-computed) inputs:
//! retrying one re-runs `f` against untouched borrows, and restoring one
//! from a checkpoint must be indistinguishable from computing it. The
//! facade's pipeline stages all have this shape. Every supervision event
//! is observable through `iotmap-obs` counters under `super.*`, which the
//! run report renders as its "Recovery" section.
//!
//! Generative stages whose artifact is the whole synthetic world are
//! checkpointed as a **replay witness** ([`StageArtifact::Replay`]):
//! the stage is deterministic from the fingerprinted inputs, so a resume
//! recomputes it and the checkpoint only stores a digest to verify the
//! replay against. Derived stages store their full artifact
//! ([`StageArtifact::Bytes`]) and are skipped entirely on resume.

mod checkpoint;
pub mod codec;
pub mod spool;

pub use checkpoint::{CheckpointStore, CkptError, KIND_BYTES, KIND_WITNESS, MAGIC};
pub use codec::{fnv1a, ByteReader, ByteWriter};
pub use spool::{Spool, SpoolReader, SpoolWriter, SPOOL_MAGIC};

use iotmap_faults::{crash, key2, CrashFaults};
use iotmap_nettypes::Error;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// How a stage's artifact is checkpointed.
pub enum StageArtifact<T> {
    /// Never checkpointed: cheap to rebuild, always recomputed.
    Volatile,
    /// Deterministically replayable from the fingerprinted run inputs:
    /// the checkpoint stores only a witness digest, and a resume
    /// recomputes the stage and verifies the replay against it.
    Replay {
        /// Cheap digest of the artifact (e.g. element counts folded
        /// through FNV); a replay that produces a different digest
        /// invalidates the run's remaining checkpoints.
        witness: fn(&T) -> u64,
    },
    /// Fully serialized: a resume with a verified checkpoint skips the
    /// stage entirely.
    Bytes {
        /// Serialize the artifact into a checkpoint payload.
        encode: fn(&T, &mut ByteWriter),
        /// Deserialize a verified checkpoint payload. Every error is
        /// treated as corruption (the stage recomputes).
        decode: fn(&mut ByteReader) -> Result<T, String>,
    },
}

/// Retry/deadline policy for supervised stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePolicy {
    /// Extra attempts after the first (so `retries = 2` means up to 3
    /// attempts).
    pub retries: u32,
    /// Default per-attempt deadline; `None` means unbounded. Checked
    /// after the attempt completes.
    pub deadline: Option<Duration>,
    /// Base backoff before the first retry, in milliseconds; doubles per
    /// attempt, plus up to the same again in seeded jitter.
    pub backoff_base_ms: u64,
    /// Actually sleep the backoff between attempts. Off by default: the
    /// schedule is always *recorded* (deterministic), but tests and the
    /// simulation have nothing to wait for.
    pub sleep_on_retry: bool,
}

impl Default for StagePolicy {
    fn default() -> StagePolicy {
        StagePolicy {
            retries: 2,
            deadline: None,
            backoff_base_ms: 250,
            sleep_on_retry: false,
        }
    }
}

/// How a supervised stage concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutcome {
    /// Computed by running the stage body.
    Computed,
    /// Restored from a verified checkpoint without running the body.
    Restored,
    /// Recomputed and verified against a stored replay witness.
    Replayed,
    /// Every attempt failed; the run error carries the detail.
    Failed,
}

/// One stage's supervision record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// The stage name.
    pub stage: String,
    /// Attempts taken (0 if restored from a checkpoint).
    pub attempts: u32,
    /// Attempts that panicked.
    pub panics: u32,
    /// Attempts that completed past the deadline.
    pub deadline_misses: u32,
    /// Total seeded backoff scheduled between attempts.
    pub backoff_ms: u64,
    /// How the stage concluded.
    pub outcome: StageOutcome,
}

/// The seeded backoff before retry number `attempt + 1` of `stage`:
/// exponential in the attempt index with pure-hash jitter, so the whole
/// schedule is a deterministic function of the plan seed.
pub fn backoff_ms(seed: u64, stage: &str, attempt: u32, base_ms: u64) -> u64 {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(16));
    let jitter = (iotmap_faults::roll(
        seed,
        "super.backoff",
        key2(iotmap_faults::hash_str(stage), attempt as u64),
    ) * exp as f64) as u64;
    exp + jitter
}

/// Human-readable description of a caught panic payload.
pub fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(injected) = payload.downcast_ref::<crash::InjectedCrash>() {
        format!("injected crash at {}", injected.site)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs each pipeline stage as a named, retryable, checkpointable unit.
pub struct Supervisor {
    seed: u64,
    policy: StagePolicy,
    deadlines: Vec<(String, Duration)>,
    crash: CrashFaults,
    store: Option<CheckpointStore>,
    resume: bool,
    next_index: usize,
    /// Per-stage supervision records, in execution order.
    pub log: Vec<StageReport>,
}

impl Supervisor {
    /// A supervisor whose retry schedules derive from `seed`.
    pub fn new(seed: u64) -> Supervisor {
        Supervisor {
            seed,
            policy: StagePolicy::default(),
            deadlines: Vec::new(),
            crash: CrashFaults::NONE,
            store: None,
            resume: false,
            next_index: 0,
            log: Vec::new(),
        }
    }

    /// Set the retry/deadline policy.
    pub fn policy(mut self, policy: StagePolicy) -> Supervisor {
        self.policy = policy;
        self
    }

    /// Override the deadline for one named stage.
    pub fn deadline_for(mut self, stage: &str, deadline: Duration) -> Supervisor {
        self.deadlines.push((stage.to_string(), deadline));
        self
    }

    /// Arm seeded crash injection for every stage attempt.
    pub fn crash(mut self, faults: CrashFaults) -> Supervisor {
        self.crash = faults;
        self
    }

    /// Attach a checkpoint store. With `resume` set, stages whose
    /// checkpoints verify are restored (or replay-verified) instead of
    /// trusted blindly; without it the store is write-only.
    pub fn store(mut self, store: CheckpointStore, resume: bool) -> Supervisor {
        self.store = Some(store);
        self.resume = resume;
        self
    }

    /// Start numbering stages at `n` instead of 0, so a pipeline split
    /// across several supervisors (e.g. a prepare phase and an execute
    /// phase) keeps the stable `{index:02}-{stage}.ckpt` file names of the
    /// single-supervisor layout.
    pub fn start_index(mut self, n: usize) -> Supervisor {
        self.next_index = n;
        self
    }

    /// Whether checkpoint restoration is still trusted: `true` only if a
    /// resume was requested and no witness mismatch has been detected so
    /// far. A later supervisor continuing this run should resume only when
    /// this still holds.
    pub fn resume_trusted(&self) -> bool {
        self.resume
    }

    fn deadline_of(&self, stage: &str) -> Option<Duration> {
        self.deadlines
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, d)| *d)
            .or(self.policy.deadline)
    }

    /// Run (or restore) one stage. `f` must be a pure function of its
    /// captures: it may run zero times (checkpoint restore), once, or
    /// several times (retry after panic/deadline).
    pub fn run_stage<T>(
        &mut self,
        name: &str,
        artifact: StageArtifact<T>,
        mut f: impl FnMut() -> T,
    ) -> Result<T, Error> {
        let index = self.next_index;
        self.next_index += 1;
        let _span = iotmap_obs::span!(format!("super.stage.{name}"));

        // Restore path: a fully-serialized stage with a verified
        // checkpoint skips computation entirely.
        if self.resume {
            if let StageArtifact::Bytes { decode, .. } = &artifact {
                if let Some(value) = self.try_restore(index, name, *decode) {
                    self.log.push(StageReport {
                        stage: name.to_string(),
                        attempts: 0,
                        panics: 0,
                        deadline_misses: 0,
                        backoff_ms: 0,
                        outcome: StageOutcome::Restored,
                    });
                    iotmap_obs::count!(format!("super.stage.{name}.restored"));
                    iotmap_obs::annotate!("restored", 1u64);
                    return Ok(value);
                }
            }
        }

        // Attempt loop: catch panics, check the deadline post-hoc,
        // schedule seeded backoff between attempts.
        let allowed = self.policy.retries + 1;
        let deadline = self.deadline_of(name);
        let mut attempts = 0u32;
        let mut panics = 0u32;
        let mut deadline_misses = 0u32;
        let mut total_backoff_ms = 0u64;
        let value = loop {
            let attempt = attempts;
            attempts += 1;
            iotmap_obs::count!(format!("super.stage.{name}.attempts"));
            crash::arm(self.seed, &self.crash, name, attempt);
            let started = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                crash::maybe_crash_stage(self.seed, &self.crash, name, attempt);
                f()
            }));
            let elapsed = started.elapsed();
            crash::disarm();

            let failure = match result {
                Ok(value) => match deadline {
                    Some(limit) if elapsed > limit => {
                        deadline_misses += 1;
                        iotmap_obs::count!(format!("super.stage.{name}.deadline_misses"));
                        format!(
                            "attempt {attempt} completed in {elapsed:?}, past its {limit:?} deadline"
                        )
                    }
                    _ => break value,
                },
                Err(payload) => {
                    panics += 1;
                    iotmap_obs::count!(format!("super.stage.{name}.panics"));
                    format!("attempt {attempt} panicked: {}", describe_panic(&*payload))
                }
            };
            if attempts >= allowed {
                self.log.push(StageReport {
                    stage: name.to_string(),
                    attempts,
                    panics,
                    deadline_misses,
                    backoff_ms: total_backoff_ms,
                    outcome: StageOutcome::Failed,
                });
                return Err(Error::stage(
                    name,
                    format!("failed after {attempts} attempts; last: {failure}"),
                ));
            }
            let backoff = backoff_ms(self.seed, name, attempt, self.policy.backoff_base_ms);
            total_backoff_ms += backoff;
            iotmap_obs::count!(format!("super.stage.{name}.backoff_ms"), backoff);
            if self.policy.sleep_on_retry {
                std::thread::sleep(Duration::from_millis(backoff.min(10_000)));
            }
        };

        // Stamp the retry history onto the stage span so the trace tree
        // shows recovery effort in place; clean runs stay unannotated
        // beyond the attempt count.
        iotmap_obs::annotate!("attempts", attempts);
        if panics > 0 {
            iotmap_obs::annotate!("panics", panics);
        }
        if deadline_misses > 0 {
            iotmap_obs::annotate!("deadline_misses", deadline_misses);
        }
        if total_backoff_ms > 0 {
            iotmap_obs::annotate!("backoff_ms", total_backoff_ms);
        }

        // Replay verification: the recomputed artifact must match the
        // witness a previous run checkpointed. A mismatch means the
        // stored run diverged from this one despite an identical
        // fingerprint, so nothing else in the store can be trusted.
        let mut outcome = StageOutcome::Computed;
        if self.resume {
            if let StageArtifact::Replay { witness } = &artifact {
                if self.verify_replay(index, name, witness(&value)) {
                    outcome = StageOutcome::Replayed;
                    iotmap_obs::count!(format!("super.stage.{name}.replayed"));
                }
            }
        }

        self.save_checkpoint(index, name, &artifact, &value);

        if self.crash.kill_after_stage.as_deref() == Some(name) {
            iotmap_obs::count!("super.run.killed");
            self.log.push(StageReport {
                stage: name.to_string(),
                attempts,
                panics,
                deadline_misses,
                backoff_ms: total_backoff_ms,
                outcome: StageOutcome::Failed,
            });
            return Err(Error::stage(
                name,
                "injected kill after stage completion (crash.kill_after_stage)",
            ));
        }

        self.log.push(StageReport {
            stage: name.to_string(),
            attempts,
            panics,
            deadline_misses,
            backoff_ms: total_backoff_ms,
            outcome,
        });
        Ok(value)
    }

    /// Try to restore a `Bytes` stage from its checkpoint; `None` means
    /// the stage must be computed (missing, corrupt, or mismatched —
    /// each reported).
    fn try_restore<T>(
        &mut self,
        index: usize,
        name: &str,
        decode: fn(&mut ByteReader) -> Result<T, String>,
    ) -> Option<T> {
        let store = self.store.as_ref()?;
        match store.load(index, name, KIND_BYTES) {
            Ok(payload) => {
                let mut reader = ByteReader::new(&payload);
                match decode(&mut reader).and_then(|v| reader.finish().map(|()| v)) {
                    Ok(value) => Some(value),
                    Err(detail) => {
                        self.report_bad_checkpoint(index, name, "corrupt", &detail, true);
                        None
                    }
                }
            }
            Err(CkptError::Missing) => None,
            Err(CkptError::Corrupt(detail)) => {
                self.report_bad_checkpoint(index, name, "corrupt", &detail, true);
                None
            }
            Err(CkptError::Mismatch(detail)) => {
                self.report_bad_checkpoint(index, name, "mismatched", &detail, false);
                None
            }
        }
    }

    /// Check a recomputed `Replay` stage against its stored witness.
    /// Returns whether a stored witness matched.
    fn verify_replay(&mut self, index: usize, name: &str, witness: u64) -> bool {
        let Some(store) = self.store.as_ref() else {
            return false;
        };
        match store.load(index, name, KIND_WITNESS) {
            Ok(payload) => {
                let mut reader = ByteReader::new(&payload);
                match reader.get_u64().and_then(|w| reader.finish().map(|()| w)) {
                    Ok(stored) if stored == witness => true,
                    Ok(stored) => {
                        iotmap_obs::count!("super.checkpoints.witness_mismatch");
                        eprintln!(
                            "# checkpoint {index:02}-{name}: replay witness {witness:#x} != \
                             stored {stored:#x}; distrusting the remaining checkpoints"
                        );
                        // The store's artifacts came from a run this one
                        // does not reproduce: recompute everything else.
                        self.resume = false;
                        false
                    }
                    Err(detail) => {
                        self.report_bad_checkpoint(index, name, "corrupt", &detail, true);
                        false
                    }
                }
            }
            Err(CkptError::Missing) => false,
            Err(CkptError::Corrupt(detail)) => {
                self.report_bad_checkpoint(index, name, "corrupt", &detail, true);
                false
            }
            Err(CkptError::Mismatch(detail)) => {
                self.report_bad_checkpoint(index, name, "mismatched", &detail, false);
                false
            }
        }
    }

    fn report_bad_checkpoint(
        &self,
        index: usize,
        name: &str,
        class: &str,
        detail: &str,
        discard: bool,
    ) {
        match class {
            "corrupt" => iotmap_obs::count!("super.checkpoints.corrupt"),
            _ => iotmap_obs::count!("super.checkpoints.mismatched"),
        }
        eprintln!("# checkpoint {index:02}-{name}: {class} ({detail}); stage will recompute");
        if discard {
            if let Some(store) = self.store.as_ref() {
                store.discard(index, name);
            }
        }
    }

    fn save_checkpoint<T>(
        &mut self,
        index: usize,
        name: &str,
        artifact: &StageArtifact<T>,
        value: &T,
    ) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        let (kind, payload) = match artifact {
            StageArtifact::Volatile => return,
            StageArtifact::Replay { witness } => {
                let mut writer = ByteWriter::new();
                writer.put_u64(witness(value));
                (KIND_WITNESS, writer.into_bytes())
            }
            StageArtifact::Bytes { encode, .. } => {
                let mut writer = ByteWriter::new();
                encode(value, &mut writer);
                (KIND_BYTES, writer.into_bytes())
            }
        };
        match store.save(index, name, kind, &payload) {
            Ok(()) => iotmap_obs::count!("super.checkpoints.written"),
            Err(e) => {
                iotmap_obs::count!("super.checkpoints.write_failed");
                eprintln!("# checkpoint {index:02}-{name}: write failed ({e}); run continues");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iotmap-super-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const U64_STAGE: StageArtifact<u64> = StageArtifact::Bytes {
        encode: |v, w| w.put_u64(*v),
        decode: |r| r.get_u64(),
    };

    #[test]
    fn transient_panics_are_retried_to_success() {
        let mut sup = Supervisor::new(7);
        let calls = Cell::new(0u32);
        let out = sup
            .run_stage("flaky", StageArtifact::Volatile, || {
                calls.set(calls.get() + 1);
                if calls.get() < 3 {
                    panic!("transient");
                }
                41u64 + 1
            })
            .expect("third attempt succeeds");
        assert_eq!(out, 42);
        assert_eq!(calls.get(), 3);
        let report = &sup.log[0];
        assert_eq!(report.attempts, 3);
        assert_eq!(report.panics, 2);
        assert_eq!(report.outcome, StageOutcome::Computed);
        // The backoff schedule is seeded and deterministic.
        let expected = backoff_ms(7, "flaky", 0, 250) + backoff_ms(7, "flaky", 1, 250);
        assert_eq!(report.backoff_ms, expected);
        assert!(report.backoff_ms >= 250 + 500, "exponential floor");
    }

    #[test]
    fn exhausted_retries_fail_with_a_stage_error() {
        let mut sup = Supervisor::new(7).policy(StagePolicy {
            retries: 1,
            ..StagePolicy::default()
        });
        let err = sup
            .run_stage("doomed", StageArtifact::<u64>::Volatile, || {
                panic!("persistent")
            })
            .expect_err("both attempts panic");
        let msg = err.to_string();
        assert!(msg.contains("doomed"), "{msg}");
        assert!(msg.contains("2 attempts"), "{msg}");
        assert_eq!(sup.log[0].outcome, StageOutcome::Failed);
    }

    #[test]
    fn injected_stage_crashes_exhaust_their_budget_then_pass() {
        let mut sup = Supervisor::new(7).crash(CrashFaults {
            stage_rate: 1.0,
            max_crashes: 2,
            ..CrashFaults::NONE
        });
        let out = sup
            .run_stage("injected", StageArtifact::Volatile, || 5u64)
            .expect("attempt 2 is past the crash budget");
        assert_eq!(out, 5);
        assert_eq!(sup.log[0].attempts, 3);
        assert_eq!(sup.log[0].panics, 2);
    }

    #[test]
    fn missed_deadlines_are_failures() {
        let mut sup = Supervisor::new(7).policy(StagePolicy {
            retries: 1,
            deadline: Some(Duration::ZERO),
            ..StagePolicy::default()
        });
        let err = sup
            .run_stage("slow", StageArtifact::Volatile, || 1u64)
            .expect_err("zero deadline always misses");
        assert!(err.to_string().contains("deadline"), "{err}");
        assert_eq!(sup.log[0].deadline_misses, 2);

        // A per-stage override can relax the default.
        let mut sup = Supervisor::new(7)
            .policy(StagePolicy {
                deadline: Some(Duration::ZERO),
                ..StagePolicy::default()
            })
            .deadline_for("slow", Duration::from_secs(3600));
        assert!(sup
            .run_stage("slow", StageArtifact::Volatile, || 1u64)
            .is_ok());
    }

    #[test]
    fn checkpointed_stages_restore_without_running() {
        let dir = temp_dir("restore");
        let mut first =
            Supervisor::new(7).store(CheckpointStore::open(&dir, 0xF00D).unwrap(), false);
        assert_eq!(
            first.run_stage("derived", U64_STAGE, || 1234u64).unwrap(),
            1234
        );

        let mut resumed =
            Supervisor::new(7).store(CheckpointStore::open(&dir, 0xF00D).unwrap(), true);
        let out = resumed
            .run_stage("derived", U64_STAGE, || {
                panic!("must not run: checkpoint verifies")
            })
            .unwrap();
        assert_eq!(out, 1234);
        assert_eq!(resumed.log[0].outcome, StageOutcome::Restored);
        assert_eq!(resumed.log[0].attempts, 0);

        // A different fingerprint refuses the file and recomputes.
        let mut other =
            Supervisor::new(7).store(CheckpointStore::open(&dir, 0xBEEF).unwrap(), true);
        assert_eq!(other.run_stage("derived", U64_STAGE, || 9u64).unwrap(), 9);
        assert_eq!(other.log[0].outcome, StageOutcome::Computed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_witness_mismatch_distrusts_the_store() {
        const REPLAYED: StageArtifact<u64> = StageArtifact::Replay { witness: |v| *v };
        let dir = temp_dir("witness");
        let mut first = Supervisor::new(7).store(CheckpointStore::open(&dir, 1).unwrap(), false);
        first.run_stage("gen", REPLAYED, || 10u64).unwrap();
        first.run_stage("derived", U64_STAGE, || 20u64).unwrap();

        // Resume where the replayed stage produces a different artifact:
        // the witness mismatch must invalidate the derived checkpoint.
        let mut diverged = Supervisor::new(7).store(CheckpointStore::open(&dir, 1).unwrap(), true);
        assert_eq!(diverged.run_stage("gen", REPLAYED, || 11u64).unwrap(), 11);
        assert_eq!(diverged.log[0].outcome, StageOutcome::Computed);
        let out = diverged.run_stage("derived", U64_STAGE, || 21u64).unwrap();
        assert_eq!(out, 21, "derived checkpoint no longer trusted");

        // A faithful resume replay-verifies and restores. (The diverged
        // run above overwrote the witness with 11.)
        let mut faithful = Supervisor::new(7).store(CheckpointStore::open(&dir, 1).unwrap(), true);
        assert_eq!(faithful.run_stage("gen", REPLAYED, || 11u64).unwrap(), 11);
        assert_eq!(faithful.log[0].outcome, StageOutcome::Replayed);
        assert_eq!(
            faithful
                .run_stage("derived", U64_STAGE, || panic!("restored"))
                .unwrap(),
            21
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_switch_fires_after_the_checkpoint_is_written() {
        let dir = temp_dir("kill");
        let mut sup = Supervisor::new(7)
            .store(CheckpointStore::open(&dir, 2).unwrap(), false)
            .crash(CrashFaults {
                kill_after_stage: Some("derived".to_string()),
                ..CrashFaults::NONE
            });
        let err = sup
            .run_stage("derived", U64_STAGE, || 77u64)
            .expect_err("kill switch aborts the run");
        assert!(err.to_string().contains("injected kill"), "{err}");

        // The checkpoint survived the kill: a resume restores it.
        let mut resumed = Supervisor::new(7).store(CheckpointStore::open(&dir, 2).unwrap(), true);
        assert_eq!(
            resumed
                .run_stage("derived", U64_STAGE, || panic!("restored"))
                .unwrap(),
            77
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
