//! Out-of-core spill spool: bounded-memory sequential storage for
//! corpora too large to hold resident.
//!
//! A spool is a single file of length-prefixed, FNV-1a-checksummed
//! batches in the same spirit as the checkpoint format: little-endian,
//! no self-description, every read bounds-checked, corruption
//! *detected* rather than trusted. Callers encode each batch with
//! [`ByteWriter`](crate::ByteWriter) and decode with
//! [`ByteReader`](crate::ByteReader); the spool only frames and
//! verifies the opaque payloads.
//!
//! Layout: `MAGIC (u32 LE)` then per batch `len (u64 LE) · fnv1a (u64
//! LE) · payload bytes`. Reading is strictly sequential — the scaled
//! scan corpus streams batches through a reusable buffer, so peak RSS
//! is one batch plus the aggregate state, never the corpus.

use crate::codec::fnv1a;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// `"SPL1"` — bumped if the framing ever changes.
pub const SPOOL_MAGIC: u32 = 0x5350_4c31;

/// Streaming writer: append batches, then [`SpoolWriter::finish`].
pub struct SpoolWriter {
    file: BufWriter<File>,
    path: PathBuf,
    batches: u64,
    bytes: u64,
}

impl SpoolWriter {
    /// Create (truncating) a spool at `path` and write the header.
    pub fn create(path: &Path) -> io::Result<SpoolWriter> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&SPOOL_MAGIC.to_le_bytes())?;
        Ok(SpoolWriter {
            file,
            path: path.to_path_buf(),
            batches: 0,
            bytes: 4,
        })
    }

    /// Append one checksummed batch.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.file.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.file.write_all(&fnv1a(payload).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.batches += 1;
        self.bytes += 16 + payload.len() as u64;
        Ok(())
    }

    /// Flush and seal the spool.
    pub fn finish(mut self) -> io::Result<Spool> {
        self.file.flush()?;
        Ok(Spool {
            path: self.path,
            batches: self.batches,
            bytes: self.bytes,
        })
    }
}

/// A sealed spool on disk; cheap handle, open readers as needed.
#[derive(Debug, Clone)]
pub struct Spool {
    path: PathBuf,
    batches: u64,
    bytes: u64,
}

impl Spool {
    /// Number of batches written.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total file size in bytes (header + framing + payloads).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open a sequential reader positioned at the first batch.
    pub fn reader(&self) -> Result<SpoolReader, String> {
        let file = File::open(&self.path)
            .map_err(|e| format!("spool {}: open failed: {e}", self.path.display()))?;
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 4];
        reader
            .read_exact(&mut magic)
            .map_err(|e| format!("spool {}: truncated header: {e}", self.path.display()))?;
        if u32::from_le_bytes(magic) != SPOOL_MAGIC {
            return Err(format!("spool {}: bad magic", self.path.display()));
        }
        Ok(SpoolReader {
            file: reader,
            path: self.path.clone(),
            remaining: self.batches,
        })
    }

    /// Delete the backing file (best effort — the corpus is derived
    /// state, a leftover file is waste, not corruption).
    pub fn remove(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Sequential batch reader; verifies each batch's checksum before
/// handing the payload to the caller.
#[derive(Debug)]
pub struct SpoolReader {
    file: BufReader<File>,
    path: PathBuf,
    remaining: u64,
}

impl SpoolReader {
    /// Read the next batch into `buf` (replacing its contents). Returns
    /// `false` once all batches have been consumed. A short read or a
    /// checksum mismatch is corruption and errors.
    pub fn next_batch(&mut self, buf: &mut Vec<u8>) -> Result<bool, String> {
        if self.remaining == 0 {
            return Ok(false);
        }
        let mut frame = [0u8; 16];
        self.file
            .read_exact(&mut frame)
            .map_err(|e| format!("spool {}: truncated batch frame: {e}", self.path.display()))?;
        let len = u64::from_le_bytes(frame[..8].try_into().unwrap());
        let want = u64::from_le_bytes(frame[8..].try_into().unwrap());
        buf.clear();
        buf.resize(len as usize, 0);
        self.file.read_exact(buf).map_err(|e| {
            format!(
                "spool {}: truncated batch payload: {e}",
                self.path.display()
            )
        })?;
        let got = fnv1a(buf);
        if got != want {
            return Err(format!(
                "spool {}: batch checksum mismatch (want {want:#x}, got {got:#x})",
                self.path.display()
            ));
        }
        self.remaining -= 1;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{ByteReader, ByteWriter};

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("iotmap-spool-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_batches_in_order() {
        let path = temp_path("roundtrip");
        let mut w = SpoolWriter::create(&path).unwrap();
        for i in 0..5u32 {
            let mut enc = ByteWriter::new();
            enc.put_u32(i);
            enc.put_str(&format!("batch-{i}"));
            w.append(&enc.into_bytes()).unwrap();
        }
        let spool = w.finish().unwrap();
        assert_eq!(spool.batches(), 5);

        let mut r = spool.reader().unwrap();
        let mut buf = Vec::new();
        let mut seen = 0u32;
        while r.next_batch(&mut buf).unwrap() {
            let mut dec = ByteReader::new(&buf);
            assert_eq!(dec.get_u32().unwrap(), seen);
            assert_eq!(dec.get_str().unwrap(), format!("batch-{seen}"));
            dec.finish().unwrap();
            seen += 1;
        }
        assert_eq!(seen, 5);
        spool.remove();
    }

    #[test]
    fn corruption_is_detected_not_trusted() {
        let path = temp_path("corrupt");
        let mut w = SpoolWriter::create(&path).unwrap();
        w.append(b"payload-zero").unwrap();
        w.append(b"payload-one").unwrap();
        let spool = w.finish().unwrap();

        // Flip one payload byte of the second batch on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let mut r = spool.reader().unwrap();
        let mut buf = Vec::new();
        assert!(r.next_batch(&mut buf).unwrap());
        let err = r.next_batch(&mut buf).unwrap_err();
        assert!(err.contains("checksum mismatch"), "unexpected error: {err}");
        spool.remove();
    }

    #[test]
    fn bad_magic_and_truncation_error() {
        let path = temp_path("magic");
        std::fs::write(&path, [0u8; 2]).unwrap();
        let spool = Spool {
            path: path.clone(),
            batches: 1,
            bytes: 2,
        };
        assert!(spool.reader().unwrap_err().contains("truncated header"));

        std::fs::write(&path, 0xdead_beefu32.to_le_bytes()).unwrap();
        assert!(spool.reader().unwrap_err().contains("bad magic"));

        let mut w = SpoolWriter::create(&path).unwrap();
        w.append(b"whole").unwrap();
        let sealed = w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let mut r = sealed.reader().unwrap();
        let mut buf = Vec::new();
        assert!(r
            .next_batch(&mut buf)
            .unwrap_err()
            .contains("truncated batch payload"));
        spool.remove();
    }
}
