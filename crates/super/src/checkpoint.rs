//! On-disk checkpoint store: one file per completed stage, each carrying
//! enough header to refuse everything it shouldn't be trusted with.
//!
//! ## File format (all integers little-endian)
//!
//! ```text
//! magic     8 bytes   b"IOTCKPT1"
//! fingerprint u64     FNV-1a over the run identity (config ⊕ data
//!                     faults ⊕ seed) — a resume with any different
//!                     artifact-affecting input rejects the file
//! kind      u8        payload kind (bytes / replay witness)
//! stage     u32+N     length-prefixed stage name
//! payload   u64+N     length-prefixed stage payload
//! checksum  u64       FNV-1a over every preceding byte
//! ```
//!
//! Writes go to a `.tmp` sibling first and rename into place, so a crash
//! mid-write leaves no half-valid checkpoint behind. Loads verify magic,
//! checksum, stage name, kind, and fingerprint — in that order — and
//! classify failures as [`CkptError::Corrupt`] (damaged bytes) or
//! [`CkptError::Mismatch`] (a valid file from a different run or stage),
//! so the supervisor can report which happened.

use crate::codec::fnv1a;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The format magic; bump the trailing digit on layout changes.
pub const MAGIC: &[u8; 8] = b"IOTCKPT1";

/// Payload kind: a full serialized artifact.
pub const KIND_BYTES: u8 = 1;
/// Payload kind: a replay witness (u64 digest of a recomputed artifact).
pub const KIND_WITNESS: u8 = 2;

/// Why a checkpoint could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// No checkpoint file for the stage.
    Missing,
    /// The file exists but its bytes cannot be trusted (bad magic,
    /// failed checksum, truncation, undecodable payload).
    Corrupt(String),
    /// The file is intact but belongs to a different run, stage, or
    /// payload kind.
    Mismatch(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Missing => write!(f, "missing"),
            CkptError::Corrupt(detail) => write!(f, "corrupt: {detail}"),
            CkptError::Mismatch(detail) => write!(f, "mismatch: {detail}"),
        }
    }
}

/// A run directory of per-stage checkpoints, bound to one run
/// fingerprint.
pub struct CheckpointStore {
    dir: PathBuf,
    fingerprint: u64,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory for a run with
    /// the given identity fingerprint.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64) -> std::io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, fingerprint })
    }

    /// The run fingerprint this store accepts.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file one stage's checkpoint lives in.
    pub fn path(&self, index: usize, stage: &str) -> PathBuf {
        self.dir.join(format!("{index:02}-{stage}.ckpt"))
    }

    /// Persist one stage's payload: header + payload + checksum, written
    /// to a temp file and renamed into place.
    pub fn save(&self, index: usize, stage: &str, kind: u8, payload: &[u8]) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(payload.len() + stage.len() + 64);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&self.fingerprint.to_le_bytes());
        bytes.push(kind);
        bytes.extend_from_slice(&(stage.len() as u32).to_le_bytes());
        bytes.extend_from_slice(stage.as_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());

        let path = self.path(index, stage);
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    }

    /// Load and fully verify one stage's payload.
    pub fn load(&self, index: usize, stage: &str, kind: u8) -> Result<Vec<u8>, CkptError> {
        let path = self.path(index, stage);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CkptError::Missing),
            Err(e) => return Err(CkptError::Corrupt(format!("unreadable: {e}"))),
        };
        // Fixed header (magic + fingerprint + kind + name length) plus
        // the trailing checksum.
        if bytes.len() < 8 + 8 + 1 + 4 + 8 + 8 {
            return Err(CkptError::Corrupt(format!(
                "{} bytes is too short for a checkpoint",
                bytes.len()
            )));
        }
        let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored_checksum = u64::from_le_bytes(checksum_bytes.try_into().unwrap());
        if &body[..8] != MAGIC {
            return Err(CkptError::Corrupt("bad magic".to_string()));
        }
        if fnv1a(body) != stored_checksum {
            return Err(CkptError::Corrupt("checksum failed".to_string()));
        }
        let fingerprint = u64::from_le_bytes(body[8..16].try_into().unwrap());
        let file_kind = body[16];
        let name_len = u32::from_le_bytes(body[17..21].try_into().unwrap()) as usize;
        let rest = &body[21..];
        if rest.len() < name_len + 8 {
            return Err(CkptError::Corrupt("truncated stage name".to_string()));
        }
        let name = &rest[..name_len];
        let payload_len =
            u64::from_le_bytes(rest[name_len..name_len + 8].try_into().unwrap()) as usize;
        let payload = &rest[name_len + 8..];
        if payload.len() != payload_len {
            return Err(CkptError::Corrupt(format!(
                "payload is {} bytes, header says {payload_len}",
                payload.len()
            )));
        }
        if name != stage.as_bytes() {
            return Err(CkptError::Mismatch(format!(
                "stage {:?} in a file named for {stage:?}",
                String::from_utf8_lossy(name)
            )));
        }
        if fingerprint != self.fingerprint {
            return Err(CkptError::Mismatch(format!(
                "run fingerprint {fingerprint:#018x} != expected {:#018x} \
                 (different config, faults, or seed)",
                self.fingerprint
            )));
        }
        if file_kind != kind {
            return Err(CkptError::Mismatch(format!(
                "payload kind {file_kind} != expected {kind}"
            )));
        }
        Ok(payload.to_vec())
    }

    /// Remove one stage's checkpoint file, ignoring absence.
    pub fn discard(&self, index: usize, stage: &str) {
        let _ = std::fs::remove_file(self.path(index, stage));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iotmap-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir, 0xABCD).unwrap();
        store
            .save(0, "world", KIND_BYTES, b"payload bytes")
            .unwrap();
        assert_eq!(
            store.load(0, "world", KIND_BYTES).unwrap(),
            b"payload bytes"
        );
        assert_eq!(store.load(1, "scans", KIND_BYTES), Err(CkptError::Missing));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_and_mismatch_are_distinguished() {
        let dir = temp_dir("verify");
        let store = CheckpointStore::open(&dir, 1).unwrap();
        store.save(0, "world", KIND_BYTES, b"0123456789").unwrap();

        // Truncation → corrupt.
        let path = store.path(0, "world");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            store.load(0, "world", KIND_BYTES),
            Err(CkptError::Corrupt(_))
        ));

        // Bit flip in the payload → corrupt (checksum catches it).
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            store.load(0, "world", KIND_BYTES),
            Err(CkptError::Corrupt(_))
        ));

        // Intact file, wrong fingerprint → mismatch.
        std::fs::write(&path, &bytes).unwrap();
        let other = CheckpointStore::open(&dir, 2).unwrap();
        assert!(matches!(
            other.load(0, "world", KIND_BYTES),
            Err(CkptError::Mismatch(_))
        ));
        // Intact file, wrong kind → mismatch.
        assert!(matches!(
            store.load(0, "world", KIND_WITNESS),
            Err(CkptError::Mismatch(_))
        ));
        // And the original still verifies.
        assert!(store.load(0, "world", KIND_BYTES).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
