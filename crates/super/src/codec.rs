//! The std-only binary codec checkpoints use: length-prefixed,
//! little-endian, no self-description — the stage that wrote a payload is
//! the only one that reads it, and the checkpoint header pins the run
//! fingerprint, so a schema is overkill. Every read is bounds-checked and
//! returns an error string instead of panicking: corrupted checkpoints
//! must be *detected*, never trusted.

use std::net::IpAddr;

/// FNV-1a over raw bytes — the checkpoint integrity checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only encoder for checkpoint payloads.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Exact bit pattern — round-trips NaN and signed zero.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed UTF-8.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Family tag (4/6) plus the raw octets.
    pub fn put_ip(&mut self, ip: IpAddr) {
        match ip {
            IpAddr::V4(a) => {
                self.put_u8(4);
                self.buf.extend_from_slice(&a.octets());
            }
            IpAddr::V6(a) => {
                self.put_u8(6);
                self.buf.extend_from_slice(&a.octets());
            }
        }
    }
}

/// Bounds-checked decoder over a checkpoint payload.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated payload: need {n} bytes at offset {}", self.pos))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bool(&mut self) -> Result<bool, String> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bad bool byte {other}")),
        }
    }

    pub fn get_str(&mut self) -> Result<String, String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 in payload: {e}"))
    }

    pub fn get_ip(&mut self) -> Result<IpAddr, String> {
        match self.get_u8()? {
            4 => {
                let o: [u8; 4] = self.take(4)?.try_into().unwrap();
                Ok(IpAddr::from(o))
            }
            6 => {
                let o: [u8; 16] = self.take(16)?.try_into().unwrap();
                Ok(IpAddr::from(o))
            }
            other => Err(format!("bad IP family tag {other}")),
        }
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once the payload is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Assert the payload was fully consumed — trailing garbage means the
    /// encoder and decoder disagree, which must surface as corruption.
    pub fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_str("grüße");
        w.put_ip("192.0.2.7".parse().unwrap());
        w.put_ip("2001:db8::7".parse().unwrap());
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "grüße");
        assert_eq!(r.get_ip().unwrap(), "192.0.2.7".parse::<IpAddr>().unwrap());
        assert_eq!(
            r.get_ip().unwrap(),
            "2001:db8::7".parse::<IpAddr>().unwrap()
        );
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_errors_not_panics() {
        let mut w = ByteWriter::new();
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..3]);
        assert!(r.get_str().is_err(), "truncated string detected");
        let mut r = ByteReader::new(&bytes);
        r.get_str().unwrap();
        let mut with_garbage = ByteReader::new(&bytes);
        with_garbage.get_u32().unwrap();
        assert!(with_garbage.finish().is_err(), "unconsumed bytes detected");
        let mut bad_tag = ByteReader::new(&[9]);
        assert!(bad_tag.get_ip().is_err());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"iotmap"), fnv1a(b"iotmap"));
        assert_ne!(fnv1a(b"iotmap"), fnv1a(b"iotmaq"));
    }
}
