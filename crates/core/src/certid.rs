//! Certificate-identity interning: classify each *distinct* certificate
//! once, not once per scan record.
//!
//! Scan corpora share certificates heavily — a gateway fleet presents
//! one cert from thousands of IPs, and replicated/scaled corpora repeat
//! the same `Arc<Certificate>` across millions of rows. The discovery
//! hot path only ever asks two questions of a record's certificate:
//! *does it match provider P?* (verification behind the suffix-index
//! prefilter) and *what evidence do its names contribute?* (region
//! hint plus matched names). Both are pure functions of the cert, so a
//! [`CertSet`] dedupes rows to unique certs by `Arc` pointer identity
//! and the answers are computed once per `(provider, cert)` pair:
//!
//! * [`CertVerifyMemo`] caches verification verdicts, so the regex runs
//!   once per unique cert instead of once per candidate row;
//! * [`evidence_memos`] precomputes each matched pair's
//!   [`CertEvidence`] — the minimum region hint and the
//!   lexicographically smallest matched names (the same capped
//!   semilattice as `IpEvidence`), which the per-record fold replays
//!   with order-insensitive joins. Replaying the memo is byte-identical
//!   to re-walking the cert's names for every record.

use crate::discovery::{join_hint, note_smallest};
use crate::matcher::MatchTable;
use crate::patterns::ProviderPatterns;
use iotmap_tls::Certificate;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Unique certificates of a corpus, in first-row order, plus the
/// row → cert mapping.
#[derive(Debug, Default)]
pub struct CertSet {
    row_cert: Vec<u32>,
    certs: Vec<Arc<Certificate>>,
}

impl CertSet {
    /// Dedupe a row-ordered certificate stream by pointer identity.
    /// Identical certificates behind distinct allocations stay distinct —
    /// the memo layer is an optimization for shared `Arc`s, never a
    /// semantic dedupe.
    pub fn dedupe<'a>(rows: impl Iterator<Item = &'a Arc<Certificate>>) -> CertSet {
        let mut ids: HashMap<*const Certificate, u32> = HashMap::new();
        let mut set = CertSet::default();
        for cert in rows {
            let next = set.certs.len() as u32;
            let id = *ids.entry(Arc::as_ptr(cert)).or_insert_with(|| {
                set.certs.push(Arc::clone(cert));
                next
            });
            set.row_cert.push(id);
        }
        set
    }

    /// Unique-cert id of a row.
    pub fn cert_of_row(&self, row: usize) -> u32 {
        self.row_cert[row]
    }

    /// A unique certificate by id.
    pub fn cert(&self, id: u32) -> &Certificate {
        &self.certs[id as usize]
    }

    /// Number of unique certificates.
    pub fn unique(&self) -> usize {
        self.certs.len()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_cert.len()
    }
}

/// Lazily-filled per-`(provider, cert)` verification cache for
/// [`MatchEngine::classify`](crate::MatchEngine::classify) closures.
#[derive(Debug)]
pub struct CertVerifyMemo {
    /// 0 = unknown, 1 = no, 2 = yes; indexed `provider * certs + cert`.
    cache: Vec<u8>,
    certs: usize,
}

impl CertVerifyMemo {
    /// Memo over `certs` unique certificates × `providers` providers.
    pub fn new(certs: usize, providers: usize) -> CertVerifyMemo {
        CertVerifyMemo {
            cache: vec![0; certs * providers],
            certs,
        }
    }

    /// The memoized verdict for `(provider, cert)`, computing it on first
    /// use.
    pub fn check(&mut self, provider: usize, cert: u32, compute: impl FnOnce() -> bool) -> bool {
        let slot = provider * self.certs + cert as usize;
        match self.cache[slot] {
            0 => {
                let verdict = compute();
                self.cache[slot] = if verdict { 2 } else { 1 };
                verdict
            }
            v => v == 2,
        }
    }
}

/// What one certificate contributes to a provider's per-IP evidence:
/// the minimum region hint and the smallest matched names, exactly the
/// joins the per-record loop would have produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CertEvidence {
    /// Min-join of the region hints extracted from matching names.
    pub hint: Option<String>,
    /// The lexicographically smallest matching names (capped like
    /// `IpEvidence::matched_names` — the cap is lossless under joins).
    pub names: BTreeSet<String>,
}

/// Evidence one certificate contributes toward one provider.
pub fn cert_evidence(certificate: &Certificate, patterns: &ProviderPatterns) -> CertEvidence {
    let mut ev = CertEvidence::default();
    let mut buf = String::new();
    certificate.for_each_name(&mut buf, |name| {
        if patterns.matches_san(name) {
            join_hint(&mut ev.hint, patterns.region_hint.extract(name));
            note_smallest(&mut ev.names, name);
        }
    });
    ev
}

/// Precompute [`CertEvidence`] for every `(provider, cert)` pair the
/// match table actually produced, sharded over the pairs. The result is
/// independent of shard count — each memo is a pure function of one
/// certificate and one pattern set.
pub fn evidence_memos(
    set: &CertSet,
    table: &MatchTable,
    providers: &[ProviderPatterns],
) -> HashMap<(usize, u32), CertEvidence> {
    let mut pairs: BTreeSet<(usize, u32)> = BTreeSet::new();
    for row in 0..set.rows() {
        if !table.any(row) {
            continue;
        }
        let cert = set.cert_of_row(row);
        for p in table.providers(row) {
            pairs.insert((p, cert));
        }
    }
    let pairs: Vec<(usize, u32)> = pairs.into_iter().collect();
    let memos = iotmap_par::shard_map(&pairs, |_i, &(p, cert)| {
        cert_evidence(set.cert(cert), &providers[p])
    });
    pairs.into_iter().zip(memos).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::IpEvidence;
    use crate::patterns::PatternRegistry;
    use iotmap_nettypes::{Date, StudyPeriod};
    use iotmap_tls::SanName;

    fn cert(names: &[&str]) -> Arc<Certificate> {
        Arc::new(Certificate::new(
            names[0],
            names.iter().map(|n| SanName::parse(n).unwrap()).collect(),
            StudyPeriod::from_dates(Date::new(2021, 6, 1), Date::new(2023, 6, 1)),
        ))
    }

    #[test]
    fn dedupe_is_by_pointer_in_first_row_order() {
        let a = cert(&["a.example.com"]);
        let b = cert(&["b.example.com"]);
        let rows = [&a, &b, &a, &a, &b];
        let set = CertSet::dedupe(rows.into_iter());
        assert_eq!(set.unique(), 2);
        assert_eq!(set.rows(), 5);
        assert_eq!(
            (0..5).map(|r| set.cert_of_row(r)).collect::<Vec<_>>(),
            vec![0, 1, 0, 0, 1]
        );
        // An identical cert behind a different Arc stays distinct.
        let a2 = cert(&["a.example.com"]);
        let set = CertSet::dedupe([&a, &a2].into_iter());
        assert_eq!(set.unique(), 2);
    }

    #[test]
    fn verify_memo_computes_once() {
        let mut memo = CertVerifyMemo::new(3, 2);
        let mut calls = 0;
        for _ in 0..10 {
            assert!(memo.check(1, 2, || {
                calls += 1;
                true
            }));
        }
        assert_eq!(calls, 1);
        assert!(!memo.check(0, 2, || false));
        // A cached false is never recomputed either.
        assert!(!memo.check(0, 2, || panic!("cached")));
    }

    #[test]
    fn memo_replay_equals_per_record_walk() {
        let registry = PatternRegistry::paper_defaults();
        let amazon = registry
            .providers()
            .iter()
            .find(|p| p.name == "amazon")
            .unwrap();
        let c = cert(&[
            "t1.iot.eu-west-1.amazonaws.com",
            "t1.iot.us-east-1.amazonaws.com",
            "unrelated.example.com",
        ]);
        let memo = cert_evidence(&c, amazon);

        // The per-record path: walk every name, join into the evidence.
        let mut direct = IpEvidence::default();
        let mut buf = String::new();
        c.for_each_name(&mut buf, |name| {
            if amazon.matches_san(name) {
                direct.note_hint(amazon.region_hint.extract(name));
                direct.note_name(name);
            }
        });

        // The memoized path: replay hint + names.
        let mut replayed = IpEvidence::default();
        replayed.note_hint(memo.hint.clone());
        for name in &memo.names {
            replayed.note_name(name);
        }
        assert_eq!(replayed.domain_hint, direct.domain_hint);
        assert_eq!(replayed.matched_names, direct.matched_names);
        assert!(memo.hint.is_some(), "region hint extracted");
    }
}
