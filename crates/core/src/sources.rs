//! The measurement artifacts the pipeline consumes (Figure 2 of the
//! paper).
//!
//! Nothing in here is ground truth: these are the datasets a real
//! measurement study buys, collects, or downloads — daily certificate
//! snapshots, IPv6 banner grabs, a passive-DNS database, the live DNS it
//! can query, the RouteViews table, and (optionally) looking glasses.

use iotmap_dns::{PassiveDnsDb, ZoneDb};
use iotmap_nettypes::BgpTable;
use iotmap_scan::{CensysSnapshot, LatencyProber, ZgrabRecord};

/// Everything the discovery pipeline and downstream analyses may read.
pub struct DataSources<'a> {
    /// Daily Censys-style IPv4 snapshots covering the study period.
    pub censys: &'a [CensysSnapshot],
    /// ZGrab2 results from the IPv6 hitlist campaign.
    pub zgrab_v6: &'a [ZgrabRecord],
    /// The passive-DNS database (DNSDB stand-in).
    pub passive_dns: &'a PassiveDnsDb,
    /// The live DNS, queried by the active resolution campaign.
    pub zones: &'a ZoneDb,
    /// RouteViews/CAIDA prefix→AS table with Hurricane-Electric-style
    /// announcement locations.
    pub routeviews: &'a BgpTable,
    /// Looking glasses for RTT-based location estimation (§4.2 fallback).
    pub latency: Option<&'a dyn LatencyProber>,
}
