//! The multi-source discovery pipeline (§3.3).
//!
//! For each provider pattern, four instruments contribute candidate
//! backend IPs, each tagged with its source so Figure 3's per-source
//! breakdown and Figure 7's TLS-only ablation fall out directly:
//!
//! * **TLS certificates** from daily IPv4 snapshots (`Certificate`),
//! * **IPv6 hitlist banner grabs** (`Ipv6Scan`),
//! * **passive DNS** regex searches, including two-step CNAME chasing
//!   (`PassiveDns`),
//! * **active DNS** — daily resolution of every passive-DNS-discovered
//!   domain from three vantage points (`ActiveDns`).
//!
//! Each harvest is a **single pass over the records**: a
//! [`crate::matcher::MatchEngine`] classifies every record against all
//! sixteen providers at once (literal-suffix index lookups plus a combined
//! fallback VM), then one `iotmap-par::shard_fold` over the records
//! accumulates per-provider partial evidence which merges in shard order —
//! so a multi-threaded run is byte-identical to a serial one, and the
//! record corpus is walked once instead of once per provider.
//!
//! [`DiscoveryPipeline::run_fanout`] keeps the original per-provider
//! fan-out (sixteen full scans, one worker per provider) as the reference
//! implementation: the differential tests pin the engine's output to it
//! byte-for-byte, and `exp bench` measures one against the other.

use crate::matcher::MatchEngine;
use crate::patterns::PatternRegistry;
use crate::sources::DataSources;
use iotmap_dns::{ActiveCampaign, RData};
use iotmap_faults::ActiveDnsFaults;
use iotmap_nettypes::{DomainName, Error, Location, StudyPeriod, SuffixIndex};
use iotmap_scan::zgrab::filter_records;
use iotmap_scan::CensysRecord;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::net::IpAddr;

/// One discovery channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Source {
    Certificate,
    Ipv6Scan,
    PassiveDns,
    ActiveDns,
}

impl Source {
    /// All channels, in report order.
    pub const ALL: [Source; 4] = [
        Source::Certificate,
        Source::Ipv6Scan,
        Source::PassiveDns,
        Source::ActiveDns,
    ];

    /// Report label (Fig. 3 legend).
    pub fn label(&self) -> &'static str {
        match self {
            Source::Certificate => "TLS Certificates",
            Source::Ipv6Scan => "IPv6 Scans",
            Source::PassiveDns => "Passive DNS",
            Source::ActiveDns => "Active DNS",
        }
    }

    /// Stable lowercase key used in metric names
    /// (`discovery.<key>.ips_discovered`).
    pub fn metric_key(&self) -> &'static str {
        match self {
            Source::Certificate => "certificates",
            Source::Ipv6Scan => "ipv6_scan",
            Source::PassiveDns => "passive_dns",
            Source::ActiveDns => "active_dns",
        }
    }

    fn bit(&self) -> u8 {
        match self {
            Source::Certificate => 1,
            Source::Ipv6Scan => 2,
            Source::PassiveDns => 4,
            Source::ActiveDns => 8,
        }
    }
}

/// A set of discovery channels (bitset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceSet(u8);

impl SourceSet {
    /// Empty set.
    pub fn empty() -> Self {
        SourceSet(0)
    }

    /// Add a channel.
    pub fn insert(&mut self, s: Source) {
        self.0 |= s.bit();
    }

    /// Membership test.
    pub fn contains(&self, s: Source) -> bool {
        self.0 & s.bit() != 0
    }

    /// Number of channels that contributed.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// The single contributing channel, if exactly one.
    pub fn sole_source(&self) -> Option<Source> {
        if self.count() != 1 {
            return None;
        }
        Source::ALL.into_iter().find(|s| self.contains(*s))
    }
}

/// Evidence accumulated for one discovered IP.
///
/// Every field is a **join-semilattice**: accumulation is commutative,
/// associative, and idempotent (`sources`/`days` are set unions,
/// `matched_names` keeps the lexicographically smallest
/// [`MAX_MATCHED_NAMES`] names, the two options keep their smallest
/// `Some`). That is what lets sharded partials merge in any grouping,
/// lets the incremental engine re-apply a record's evidence without
/// drift, and makes a rolled-forward run byte-identical to a
/// from-scratch one.
#[derive(Debug, Clone, Default)]
pub struct IpEvidence {
    pub sources: SourceSet,
    /// Epoch days on which the IP was (re-)discovered — drives Fig. 4.
    pub days: BTreeSet<i64>,
    /// Region code extracted from a matching domain, if the scheme has one.
    pub domain_hint: Option<String>,
    /// Scanner-metadata geolocation (Censys).
    pub censys_location: Option<Location>,
    /// A few of the matching names (diagnostics; capped).
    pub matched_names: BTreeSet<String>,
}

const MAX_MATCHED_NAMES: usize = 12;

impl IpEvidence {
    pub(crate) fn note_name(&mut self, name: &str) {
        note_smallest(&mut self.matched_names, name);
    }

    pub(crate) fn note_hint(&mut self, hint: Option<String>) {
        join_hint(&mut self.domain_hint, hint);
    }

    pub(crate) fn note_location(&mut self, location: Option<Location>) {
        join_location(&mut self.censys_location, location);
    }
}

/// Keep the [`MAX_MATCHED_NAMES`] lexicographically smallest distinct
/// names: insert, then evict the largest when over the cap. The cap is
/// lossless under joins — the smallest `cap` of a union depend only on
/// the smallest `cap` of each side.
pub(crate) fn note_smallest(names: &mut BTreeSet<String>, name: &str) {
    if names.len() >= MAX_MATCHED_NAMES {
        match names.last() {
            Some(max) if name < max.as_str() => {}
            _ => return,
        }
    }
    names.insert(name.to_string());
    if names.len() > MAX_MATCHED_NAMES {
        names.pop_last();
    }
}

/// Join for the hint slot: the smallest `Some` ever offered.
pub(crate) fn join_hint(slot: &mut Option<String>, candidate: Option<String>) {
    if let Some(c) = candidate {
        match slot {
            Some(cur) if *cur <= c => {}
            _ => *slot = Some(c),
        }
    }
}

/// A total order over locations (floats via `total_cmp`), so the
/// location slot has a deterministic min-join.
fn location_cmp(a: &Location, b: &Location) -> std::cmp::Ordering {
    a.city
        .cmp(&b.city)
        .then_with(|| a.country.as_str().cmp(b.country.as_str()))
        .then_with(|| a.continent.cmp(&b.continent))
        .then_with(|| a.lat.total_cmp(&b.lat))
        .then_with(|| a.lon.total_cmp(&b.lon))
}

/// Join for the location slot: the smallest `Some` under [`location_cmp`].
fn join_location(slot: &mut Option<Location>, candidate: Option<Location>) {
    if let Some(c) = candidate {
        match slot {
            Some(cur) if location_cmp(cur, &c) != std::cmp::Ordering::Greater => {}
            _ => *slot = Some(c),
        }
    }
}

/// Evidence for one IP accumulated by one shard of a single-pass harvest
/// — the same semilattice as [`IpEvidence`] minus the source bit, so
/// merging partials (in any grouping) and applying them onto the shared
/// evidence reproduces the serial fan-out byte-for-byte at any thread
/// count.
#[derive(Debug, Clone, Default)]
struct PartialEvidence {
    days: BTreeSet<i64>,
    domain_hint: Option<String>,
    censys_location: Option<Location>,
    matched_names: BTreeSet<String>,
}

impl PartialEvidence {
    fn note_name(&mut self, name: &str) {
        note_smallest(&mut self.matched_names, name);
    }

    fn note_hint(&mut self, hint: Option<String>) {
        join_hint(&mut self.domain_hint, hint);
    }

    fn note_location(&mut self, location: Option<Location>) {
        join_location(&mut self.censys_location, location);
    }

    /// Fold another shard's evidence in (a lattice join, so the shard
    /// grouping cannot matter).
    fn merge(&mut self, other: PartialEvidence) {
        self.days.extend(other.days);
        join_hint(&mut self.domain_hint, other.domain_hint);
        join_location(&mut self.censys_location, other.censys_location);
        for name in other.matched_names {
            if self.matched_names.len() >= MAX_MATCHED_NAMES {
                match self.matched_names.last() {
                    Some(max) if name < *max => {}
                    _ => continue,
                }
            }
            self.matched_names.insert(name);
            if self.matched_names.len() > MAX_MATCHED_NAMES {
                self.matched_names.pop_last();
            }
        }
    }

    /// Join onto the shared per-provider evidence.
    fn apply(self, source: Source, entry: &mut IpEvidence) {
        entry.sources.insert(source);
        entry.days.extend(self.days);
        join_hint(&mut entry.domain_hint, self.domain_hint);
        join_location(&mut entry.censys_location, self.censys_location);
        for name in self.matched_names {
            note_smallest(&mut entry.matched_names, &name);
        }
    }
}

/// Per-provider partial state for one shard of the certificate / IPv6
/// harvests: just the per-IP evidence.
type IpPartials = Vec<HashMap<IpAddr, PartialEvidence>>;

fn merge_ip_partials(
    a: &mut HashMap<IpAddr, PartialEvidence>,
    b: HashMap<IpAddr, PartialEvidence>,
) {
    for (ip, pe) in b {
        a.entry(ip).or_default().merge(pe);
    }
}

/// Apply per-provider IP partials onto the result, one worker per
/// provider (disjoint `&mut`, no merge step).
fn apply_ip_partials(result: &mut DiscoveryResult, source: Source, partials: IpPartials) {
    let mut work: Vec<(&mut ProviderDiscovery, HashMap<IpAddr, PartialEvidence>)> =
        result.providers.iter_mut().zip(partials).collect();
    iotmap_par::shard_map_mut(&mut work, |_i, (prov, partial)| {
        for (ip, pe) in std::mem::take(partial) {
            pe.apply(source, prov.ips.entry(ip).or_default());
        }
    });
}

/// Per-provider partial state for one shard of the passive-DNS harvest:
/// direct per-IP evidence, matched owner domains, and the CNAME pairs to
/// chase once the direct pass has been applied.
#[derive(Debug, Clone, Default)]
struct PdnsPartial {
    ips: HashMap<IpAddr, PartialEvidence>,
    domains: BTreeSet<DomainName>,
    cnames: Vec<(DomainName, DomainName)>,
}

impl PdnsPartial {
    fn merge(&mut self, later: PdnsPartial) {
        merge_ip_partials(&mut self.ips, later.ips);
        self.domains.extend(later.domains);
        self.cnames.extend(later.cnames);
    }
}

/// Everything discovered for one provider.
#[derive(Debug, Clone, Default)]
pub struct ProviderDiscovery {
    pub name: String,
    pub ips: HashMap<IpAddr, IpEvidence>,
    /// Domains that matched the provider's patterns (used to seed active
    /// resolution and the shared-IP analysis).
    pub domains: BTreeSet<DomainName>,
}

impl ProviderDiscovery {
    /// Discovered IPv4 addresses.
    pub fn v4_ips(&self) -> impl Iterator<Item = IpAddr> + '_ {
        self.ips.keys().copied().filter(|ip| ip.is_ipv4())
    }

    /// Discovered IPv6 addresses.
    pub fn v6_ips(&self) -> impl Iterator<Item = IpAddr> + '_ {
        self.ips.keys().copied().filter(|ip| ip.is_ipv6())
    }

    /// IPs discoverable from a subset of channels only (Fig. 7 ablation).
    pub fn ips_from_sources(&self, allowed: &[Source]) -> HashSet<IpAddr> {
        self.ips
            .iter()
            .filter(|(_, ev)| allowed.iter().any(|s| ev.sources.contains(*s)))
            .map(|(ip, _)| *ip)
            .collect()
    }

    /// The set discovered on one specific day (Fig. 4 stability input).
    pub fn daily_set(&self, epoch_day: i64) -> HashSet<IpAddr> {
        self.ips
            .iter()
            .filter(|(_, ev)| ev.days.contains(&epoch_day))
            .map(|(ip, _)| *ip)
            .collect()
    }

    /// Per-source exclusive/multi breakdown (Fig. 3): returns
    /// `(per-source-exclusive counts, multi-source count)` for one address
    /// family.
    pub fn source_breakdown(&self, v6: bool) -> (BTreeMap<Source, usize>, usize) {
        let mut exclusive: BTreeMap<Source, usize> = BTreeMap::new();
        let mut multi = 0usize;
        for (ip, ev) in &self.ips {
            if ip.is_ipv6() != v6 {
                continue;
            }
            match ev.sources.sole_source() {
                Some(s) => *exclusive.entry(s).or_default() += 1,
                None => multi += 1,
            }
        }
        (exclusive, multi)
    }
}

/// Pipeline output: all providers.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryResult {
    pub(crate) providers: Vec<ProviderDiscovery>,
}

impl DiscoveryResult {
    /// Assemble from pre-built provider discoveries (harness and test
    /// use; the pipeline builds its own).
    pub fn from_providers(providers: Vec<ProviderDiscovery>) -> Self {
        DiscoveryResult { providers }
    }

    /// Per-provider view, in registry order.
    pub fn per_provider(&self) -> impl Iterator<Item = (&str, &ProviderDiscovery)> {
        self.providers.iter().map(|p| (p.name.as_str(), p))
    }

    /// Lookup one provider's discovery.
    pub fn get(&self, name: &str) -> Option<&ProviderDiscovery> {
        self.providers.iter().find(|p| p.name == name)
    }

    /// Lookup one provider's discovery, failing with
    /// [`Error::MissingProvider`] when absent — for callers that treat a
    /// missing provider as a pipeline error rather than an option.
    pub fn require(&self, name: &str) -> Result<&ProviderDiscovery, Error> {
        self.get(name)
            .ok_or_else(|| Error::MissingProvider(name.to_string()))
    }

    /// All discovered IPs across providers.
    pub fn all_ips(&self) -> HashSet<IpAddr> {
        self.providers
            .iter()
            .flat_map(|p| p.ips.keys().copied())
            .collect()
    }

    /// All discovered IPv4 addresses.
    pub fn all_v4(&self) -> HashSet<IpAddr> {
        self.all_ips()
            .into_iter()
            .filter(|ip| ip.is_ipv4())
            .collect()
    }

    /// All discovered IPv6 addresses.
    pub fn all_v6(&self) -> HashSet<IpAddr> {
        self.all_ips()
            .into_iter()
            .filter(|ip| ip.is_ipv6())
            .collect()
    }
}

/// The discovery pipeline.
pub struct DiscoveryPipeline {
    registry: PatternRegistry,
    campaign: ActiveCampaign,
    active_dns_faults: ActiveDnsFaults,
    fault_seed: u64,
}

impl DiscoveryPipeline {
    /// Pipeline with the paper's three active-DNS vantage points.
    pub fn new(registry: PatternRegistry) -> Self {
        DiscoveryPipeline {
            registry,
            campaign: ActiveCampaign::paper_defaults(),
            active_dns_faults: ActiveDnsFaults::NONE,
            fault_seed: 0,
        }
    }

    /// Pipeline with a custom campaign (e.g. single-vantage ablation).
    pub fn with_campaign(registry: PatternRegistry, campaign: ActiveCampaign) -> Self {
        DiscoveryPipeline {
            registry,
            campaign,
            active_dns_faults: ActiveDnsFaults::NONE,
            fault_seed: 0,
        }
    }

    /// Apply an active-DNS fault plan: the resolution campaigns this
    /// pipeline launches suffer the plan's vantage outages and query
    /// timeouts. The other sources degrade upstream (the scan datasets
    /// and passive-DNS database arrive already faulted), so this is the
    /// only fault knob the discovery stage itself needs.
    pub fn faults(mut self, fault_seed: u64, faults: ActiveDnsFaults) -> Self {
        self.active_dns_faults = faults;
        self.fault_seed = fault_seed;
        self
    }

    /// The registry in use.
    pub fn registry(&self) -> &PatternRegistry {
        &self.registry
    }

    /// Run this pipeline's resolution campaign (with its fault plan) over
    /// an explicit seed set — the incremental engine replays campaigns for
    /// delta periods and freshly matched owners.
    pub(crate) fn run_campaign(
        &self,
        zones: &iotmap_dns::ZoneDb,
        domains: &[DomainName],
        period: &StudyPeriod,
    ) -> iotmap_dns::CampaignResult {
        self.campaign.run_with_faults(
            zones,
            domains,
            period,
            self.fault_seed,
            &self.active_dns_faults,
        )
    }

    fn empty_result(&self) -> DiscoveryResult {
        DiscoveryResult {
            providers: self
                .registry
                .providers()
                .iter()
                .map(|p| ProviderDiscovery {
                    name: p.name.to_string(),
                    ..Default::default()
                })
                .collect(),
        }
    }

    /// Run all four instruments over a study period, using the single-pass
    /// matching engine.
    pub fn run(&self, sources: &DataSources<'_>, period: StudyPeriod) -> DiscoveryResult {
        let _span = iotmap_obs::span!("core.discovery");
        let mut result = self.empty_result();
        self.harvest_certificates(sources, period, &mut result);
        self.harvest_v6_scans(sources, period, &mut result);
        self.harvest_passive_dns(sources, period, &mut result);
        self.harvest_active_dns(sources, period, &mut result);
        flush_discovery_totals(&result);
        result
    }

    /// Run all four instruments with the original per-provider fan-out
    /// (sixteen full scans over every corpus). Kept as the reference
    /// implementation: [`DiscoveryPipeline::run`] must produce the exact
    /// same [`DiscoveryResult`], and `exp bench` times the two against
    /// each other.
    pub fn run_fanout(&self, sources: &DataSources<'_>, period: StudyPeriod) -> DiscoveryResult {
        let _span = iotmap_obs::span!("core.discovery.fanout");
        let mut result = self.empty_result();
        self.harvest_certificates_fanout(sources, period, &mut result);
        self.harvest_v6_scans_fanout(sources, period, &mut result);
        self.harvest_passive_dns_fanout(sources, period, &mut result);
        self.harvest_active_dns_fanout(sources, period, &mut result);
        flush_discovery_totals(&result);
        result
    }

    /// Run with a restricted channel set (ablations; Fig. 7 uses
    /// certificates only).
    pub fn run_channels(
        &self,
        sources: &DataSources<'_>,
        period: StudyPeriod,
        channels: &[Source],
    ) -> DiscoveryResult {
        let mut result = self.empty_result();
        let _span = iotmap_obs::span!("core.discovery.channels");
        if channels.contains(&Source::Certificate) {
            self.harvest_certificates(sources, period, &mut result);
        }
        if channels.contains(&Source::Ipv6Scan) {
            self.harvest_v6_scans(sources, period, &mut result);
        }
        if channels.contains(&Source::PassiveDns) {
            self.harvest_passive_dns(sources, period, &mut result);
        }
        if channels.contains(&Source::ActiveDns) {
            self.harvest_active_dns(sources, period, &mut result);
        }
        flush_discovery_totals(&result);
        result
    }

    /// Single-pass certificate harvest: classify every in-period snapshot
    /// record against all providers at once, then shard the records and
    /// fan the evidence back in per provider.
    fn harvest_certificates(
        &self,
        sources: &DataSources<'_>,
        period: StudyPeriod,
        result: &mut DiscoveryResult,
    ) {
        self.harvest_certificate_snapshots(sources.censys, period, result);
    }

    /// The certificate harvest over an explicit snapshot slice — the
    /// incremental engine feeds it just the day's fresh snapshots, since
    /// evidence joins make the per-snapshot contributions independent.
    pub(crate) fn harvest_certificate_snapshots(
        &self,
        snapshots: &[iotmap_scan::CensysSnapshot],
        period: StudyPeriod,
        result: &mut DiscoveryResult,
    ) {
        let _span = iotmap_obs::span!("discovery.certificates");
        let providers = self.registry.providers();
        let engine = MatchEngine::sans(&self.registry);
        // One flattened row list over the in-period snapshots, in source
        // order — the same per-provider event sequence as the fan-out's
        // snapshot walk.
        let rows: Vec<(i64, &CensysRecord)> = snapshots
            .iter()
            .filter(|s| period.contains(s.date.midnight()))
            .flat_map(|s| {
                let day = s.date.epoch_days();
                s.records.iter().map(move |r| (day, r))
            })
            .collect();
        let index = iotmap_scan::censys::san_suffix_index(rows.iter().map(|&(_, r)| r), period);
        // Records share certificates heavily (one gateway cert behind
        // thousands of IPs, and scaled corpora replicate rows): verify and
        // harvest each distinct cert once, then replay per record.
        let certs = crate::certid::CertSet::dedupe(rows.iter().map(|&(_, r)| &r.certificate));
        let mut verify_memo = crate::certid::CertVerifyMemo::new(certs.unique(), providers.len());
        let table = {
            let mut buf = String::new();
            engine.classify(
                &index,
                rows.len(),
                |p, row| {
                    verify_memo.check(p, certs.cert_of_row(row as usize), || {
                        let re = &providers[p].san_regex;
                        rows[row as usize]
                            .1
                            .certificate
                            .sans
                            .iter()
                            .any(|san| re.is_match(san.presentation_into(&mut buf)))
                    })
                },
                |row, emit| {
                    let (_, record) = rows[row as usize];
                    if record.certificate.valid_during(&period) {
                        let mut name_buf = String::new();
                        record.certificate.for_each_name(&mut name_buf, emit);
                    }
                },
            )
        };
        let matches = table.matched_per_provider();
        let memos = crate::certid::evidence_memos(&certs, &table, providers);
        let partials = iotmap_par::shard_fold(
            &rows,
            |_ctx| {
                providers
                    .iter()
                    .map(|_| HashMap::new())
                    .collect::<IpPartials>()
            },
            |acc, i, &(day, record)| {
                if !table.any(i) {
                    return;
                }
                let cert = certs.cert_of_row(i);
                for p in table.providers(i) {
                    let pe = acc[p].entry(record.ip).or_default();
                    pe.days.insert(day);
                    pe.note_location(record.location.clone());
                    if let Some(memo) = memos.get(&(p, cert)) {
                        pe.note_hint(memo.hint.clone());
                        for name in &memo.names {
                            pe.note_name(name);
                        }
                    }
                }
            },
            |a, b| {
                for (pa, pb) in a.iter_mut().zip(b) {
                    merge_ip_partials(pa, pb);
                }
            },
        );
        apply_ip_partials(result, Source::Certificate, partials);
        flush_provider_matches(Source::Certificate, result, &matches);
    }

    /// Single-pass IPv6 banner-grab harvest.
    fn harvest_v6_scans(
        &self,
        sources: &DataSources<'_>,
        period: StudyPeriod,
        result: &mut DiscoveryResult,
    ) {
        let _span = iotmap_obs::span!("discovery.ipv6_scan");
        let first_day = period.start.epoch_days();
        let providers = self.registry.providers();
        let engine = MatchEngine::sans(&self.registry);
        let records = sources.zgrab_v6;
        let index = iotmap_scan::zgrab::san_suffix_index(records, period);
        let certs = crate::certid::CertSet::dedupe(records.iter().map(|r| &r.certificate));
        let mut verify_memo = crate::certid::CertVerifyMemo::new(certs.unique(), providers.len());
        let table = {
            let mut buf = String::new();
            engine.classify(
                &index,
                records.len(),
                |p, row| {
                    verify_memo.check(p, certs.cert_of_row(row as usize), || {
                        let re = &providers[p].san_regex;
                        records[row as usize]
                            .certificate
                            .sans
                            .iter()
                            .any(|san| re.is_match(san.presentation_into(&mut buf)))
                    })
                },
                |row, emit| {
                    let record = &records[row as usize];
                    if record.certificate.valid_during(&period) {
                        let mut name_buf = String::new();
                        record.certificate.for_each_name(&mut name_buf, emit);
                    }
                },
            )
        };
        let matches = table.matched_per_provider();
        let memos = crate::certid::evidence_memos(&certs, &table, providers);
        let partials = iotmap_par::shard_fold(
            records,
            |_ctx| {
                providers
                    .iter()
                    .map(|_| HashMap::new())
                    .collect::<IpPartials>()
            },
            |acc, i, record| {
                if !table.any(i) {
                    return;
                }
                let cert = certs.cert_of_row(i);
                for p in table.providers(i) {
                    let pe = acc[p].entry(IpAddr::V6(record.ip)).or_default();
                    pe.days.insert(first_day);
                    if let Some(memo) = memos.get(&(p, cert)) {
                        pe.note_hint(memo.hint.clone());
                        for name in &memo.names {
                            pe.note_name(name);
                        }
                    }
                }
            },
            |a, b| {
                for (pa, pb) in a.iter_mut().zip(b) {
                    merge_ip_partials(pa, pb);
                }
            },
        );
        apply_ip_partials(result, Source::Ipv6Scan, partials);
        flush_provider_matches(Source::Ipv6Scan, result, &matches);
    }

    /// Single-pass passive-DNS harvest: one classification of the rrset
    /// table via the database's owner suffix index, one sharded evidence
    /// pass, then per-provider CNAME chasing over the merged pairs.
    fn harvest_passive_dns(
        &self,
        sources: &DataSources<'_>,
        period: StudyPeriod,
        result: &mut DiscoveryResult,
    ) {
        let _span = iotmap_obs::span!("discovery.passive_dns");
        let pdns = sources.passive_dns;
        let entries = pdns.entries_slice();
        let providers = self.registry.providers();
        let engine = MatchEngine::owners(&self.registry);
        let table = {
            let mut buf = String::new();
            engine.classify(
                pdns.owner_suffix_index(),
                entries.len(),
                |p, row| {
                    let entry = &entries[row as usize];
                    entry.observed_in(&period)
                        && providers[p]
                            .owner_regex
                            .is_match(entry.owner.fqdn_into(&mut buf))
                },
                |row, emit| {
                    let entry = &entries[row as usize];
                    if entry.observed_in(&period) {
                        let mut fqdn = String::new();
                        emit(entry.owner.fqdn_into(&mut fqdn));
                    }
                },
            )
        };
        iotmap_obs::count!("discovery.pdns.rrsets_scanned", entries.len() as u64);
        let matches = table.matched_per_provider();
        let partials = iotmap_par::shard_fold(
            entries,
            |_ctx| {
                providers
                    .iter()
                    .map(|_| PdnsPartial::default())
                    .collect::<Vec<_>>()
            },
            |acc, i, entry| {
                if !table.any(i) {
                    return;
                }
                for p in table.providers(i) {
                    let partial = &mut acc[p];
                    partial.domains.insert(entry.owner.clone());
                    match &entry.rdata {
                        RData::Cname(target) => {
                            partial.cnames.push((entry.owner.clone(), target.clone()));
                        }
                        rdata => {
                            if let Some(ip) = rdata.ip() {
                                let pe = partial.ips.entry(ip).or_default();
                                let first =
                                    entry.time_first.epoch_days().max(period.start.epoch_days());
                                let last = entry
                                    .time_last
                                    .epoch_days()
                                    .min(period.end.epoch_days() - 1);
                                for d in first..=last {
                                    pe.days.insert(d);
                                }
                                pe.note_hint(
                                    providers[p].region_hint.extract(entry.owner.as_str()),
                                );
                                pe.note_name(entry.owner.as_str());
                            }
                        }
                    }
                }
            },
            |a, b| {
                for (pa, pb) in a.iter_mut().zip(b) {
                    pa.merge(pb);
                }
            },
        );
        // Apply direct evidence, then chase the merged CNAME pairs —
        // direct-before-chase per provider, exactly as the fan-out.
        let mut work: Vec<(&mut ProviderDiscovery, PdnsPartial)> =
            result.providers.iter_mut().zip(partials).collect();
        iotmap_par::shard_map_mut(&mut work, |pi, (prov, partial)| {
            let patterns = &providers[pi];
            let partial = std::mem::take(partial);
            prov.domains.extend(partial.domains);
            for (ip, pe) in partial.ips {
                pe.apply(Source::PassiveDns, prov.ips.entry(ip).or_default());
            }
            for (owner, target) in partial.cnames {
                for entry in pdns.entries_for_owner(&target, period) {
                    if let Some(ip) = entry.rdata.ip() {
                        Self::note_pdns_ip(
                            prov,
                            patterns,
                            ip,
                            &owner,
                            entry.time_first.epoch_days().max(period.start.epoch_days()),
                            entry
                                .time_last
                                .epoch_days()
                                .min(period.end.epoch_days() - 1),
                        );
                    }
                }
            }
        });
        flush_provider_matches(Source::PassiveDns, result, &matches);
    }

    /// Single-pass active-DNS seeding: the in-period owner corpus is
    /// classified once for every provider, then each provider's campaign
    /// runs exactly as in the fan-out.
    fn harvest_active_dns(
        &self,
        sources: &DataSources<'_>,
        period: StudyPeriod,
        result: &mut DiscoveryResult,
    ) {
        let _span = iotmap_obs::span!("discovery.active_dns");
        let providers = self.registry.providers();
        let owners = sources.passive_dns.owners_in(period);
        let engine = MatchEngine::owners(&self.registry);
        let mut index = SuffixIndex::new();
        for (i, owner) in owners.iter().enumerate() {
            index.insert(owner.as_str(), i as u32);
        }
        let table = {
            let mut buf = String::new();
            engine.classify(
                &index,
                owners.len(),
                |p, row| {
                    providers[p]
                        .owner_regex
                        .is_match(owners[row as usize].fqdn_into(&mut buf))
                },
                |row, emit| {
                    let mut fqdn = String::new();
                    emit(owners[row as usize].fqdn_into(&mut fqdn));
                },
            )
        };
        let matches = iotmap_par::shard_map_mut(&mut result.providers, |pi, prov| {
            let patterns = &providers[pi];
            let mut seeds: BTreeSet<DomainName> = prov.domains.clone();
            for (i, owner) in owners.iter().enumerate() {
                if table.contains(i, pi) {
                    seeds.insert(owner.clone());
                }
            }
            if seeds.is_empty() {
                return 0;
            }
            let domains: Vec<DomainName> = seeds.iter().cloned().collect();
            let campaign_result = self.campaign.run_with_faults(
                sources.zones,
                &domains,
                &period,
                self.fault_seed,
                &self.active_dns_faults,
            );
            let matched = Self::apply_campaign_observations(prov, patterns, &campaign_result);
            prov.domains = seeds;
            matched
        });
        flush_provider_matches(Source::ActiveDns, result, &matches);
    }

    fn harvest_certificates_fanout(
        &self,
        sources: &DataSources<'_>,
        period: StudyPeriod,
        result: &mut DiscoveryResult,
    ) {
        let _span = iotmap_obs::span!("discovery.certificates.fanout");
        // Per-provider fan-out: each worker owns exactly one provider's
        // discovery (disjoint `&mut`), walking the snapshots in
        // chronological order — the same per-provider event sequence as
        // a serial run, so evidence accumulation is byte-identical.
        let providers = self.registry.providers();
        let matches = iotmap_par::shard_map_mut(&mut result.providers, |pi, prov| {
            let patterns = &providers[pi];
            let mut matched = 0u64;
            for snapshot in sources.censys {
                let day = snapshot.date.epoch_days();
                let midnight = snapshot.date.midnight();
                if !period.contains(midnight) {
                    continue;
                }
                for record in snapshot.search_regex(&patterns.san_regex, period) {
                    matched += 1;
                    let entry = prov.ips.entry(record.ip).or_default();
                    entry.sources.insert(Source::Certificate);
                    entry.days.insert(day);
                    entry.note_location(record.location.clone());
                    Self::note_cert_names(entry, patterns, &record.certificate);
                }
            }
            matched
        });
        flush_provider_matches(Source::Certificate, result, &matches);
    }

    fn harvest_v6_scans_fanout(
        &self,
        sources: &DataSources<'_>,
        period: StudyPeriod,
        result: &mut DiscoveryResult,
    ) {
        let _span = iotmap_obs::span!("discovery.ipv6_scan.fanout");
        let first_day = period.start.epoch_days();
        let providers = self.registry.providers();
        let matches = iotmap_par::shard_map_mut(&mut result.providers, |pi, prov| {
            let patterns = &providers[pi];
            let mut matched = 0u64;
            for record in filter_records(sources.zgrab_v6, &patterns.san_regex, period) {
                matched += 1;
                let entry = prov.ips.entry(IpAddr::V6(record.ip)).or_default();
                entry.sources.insert(Source::Ipv6Scan);
                entry.days.insert(first_day);
                Self::note_cert_names(entry, patterns, &record.certificate);
            }
            matched
        });
        flush_provider_matches(Source::Ipv6Scan, result, &matches);
    }

    fn harvest_passive_dns_fanout(
        &self,
        sources: &DataSources<'_>,
        period: StudyPeriod,
        result: &mut DiscoveryResult,
    ) {
        let _span = iotmap_obs::span!("discovery.passive_dns.fanout");
        let pdns = sources.passive_dns;
        let providers = self.registry.providers();
        let per_provider: Vec<(u64, u64)> =
            iotmap_par::shard_map_mut(&mut result.providers, |pi, prov| {
                let patterns = &providers[pi];
                let mut matched = 0u64;
                let mut rrsets_scanned = 0u64;
                // Direct search: every entry whose owner matches the pattern.
                // (One linear scan per provider — DNSDB's flexible search.)
                let mut cname_targets: Vec<(DomainName, DomainName)> = Vec::new();
                for entry in pdns.entries() {
                    rrsets_scanned += 1;
                    if !entry.observed_in(&period) || !patterns.matches_owner(&entry.owner) {
                        continue;
                    }
                    matched += 1;
                    prov.domains.insert(entry.owner.clone());
                    match &entry.rdata {
                        RData::Cname(target) => {
                            cname_targets.push((entry.owner.clone(), target.clone()));
                        }
                        rdata => {
                            if let Some(ip) = rdata.ip() {
                                Self::note_pdns_ip(
                                    prov,
                                    patterns,
                                    ip,
                                    &entry.owner,
                                    entry.time_first.epoch_days().max(period.start.epoch_days()),
                                    entry
                                        .time_last
                                        .epoch_days()
                                        .min(period.end.epoch_days() - 1),
                                );
                            }
                        }
                    }
                }
                // CNAME chasing: A/AAAA records live under the alias target's
                // owner name (cloud load balancers).
                for (owner, target) in cname_targets {
                    for entry in pdns.entries_for_owner(&target, period) {
                        if let Some(ip) = entry.rdata.ip() {
                            Self::note_pdns_ip(
                                prov,
                                patterns,
                                ip,
                                &owner,
                                entry.time_first.epoch_days().max(period.start.epoch_days()),
                                entry
                                    .time_last
                                    .epoch_days()
                                    .min(period.end.epoch_days() - 1),
                            );
                        }
                    }
                }
                (matched, rrsets_scanned)
            });
        let matches: Vec<u64> = per_provider.iter().map(|(m, _)| *m).collect();
        let rrsets_scanned: u64 = per_provider.iter().map(|(_, s)| *s).sum();
        iotmap_obs::count!("discovery.pdns.rrsets_scanned", rrsets_scanned);
        flush_provider_matches(Source::PassiveDns, result, &matches);
    }

    /// Join a matching certificate's names into one IP's evidence — the
    /// shared inner loop of both fan-out certificate harvests.
    fn note_cert_names(
        entry: &mut IpEvidence,
        patterns: &crate::patterns::ProviderPatterns,
        certificate: &iotmap_tls::Certificate,
    ) {
        let mut buf = String::new();
        certificate.for_each_name(&mut buf, |name| {
            if patterns.matches_san(name) {
                entry.note_hint(patterns.region_hint.extract(name));
                entry.note_name(name);
            }
        });
    }

    /// Join a resolution campaign's observations into one provider's
    /// discovery — shared by the single-pass and fan-out active-DNS
    /// harvests. Returns the observation count for the match counters.
    fn apply_campaign_observations(
        prov: &mut ProviderDiscovery,
        patterns: &crate::patterns::ProviderPatterns,
        campaign_result: &iotmap_dns::CampaignResult,
    ) -> u64 {
        let mut matched = 0u64;
        for obs in &campaign_result.observations {
            matched += 1;
            let entry = prov.ips.entry(obs.ip).or_default();
            entry.sources.insert(Source::ActiveDns);
            entry.days.insert(obs.day);
            entry.note_hint(patterns.region_hint.extract(obs.domain.as_str()));
            entry.note_name(obs.domain.as_str());
        }
        matched
    }

    pub(crate) fn note_pdns_ip(
        provider: &mut ProviderDiscovery,
        patterns: &crate::patterns::ProviderPatterns,
        ip: IpAddr,
        owner: &DomainName,
        first_day: i64,
        last_day: i64,
    ) {
        let entry = provider.ips.entry(ip).or_default();
        entry.sources.insert(Source::PassiveDns);
        for d in first_day..=last_day {
            entry.days.insert(d);
        }
        entry.note_hint(patterns.region_hint.extract(owner.as_str()));
        entry.note_name(owner.as_str());
    }

    fn harvest_active_dns_fanout(
        &self,
        sources: &DataSources<'_>,
        period: StudyPeriod,
        result: &mut DiscoveryResult,
    ) {
        // Seed: every matching domain seen in passive DNS during the
        // period (the paper resolves "all domains identified via DNSDB").
        let _span = iotmap_obs::span!("discovery.active_dns.fanout");
        let providers = self.registry.providers();
        let matches = iotmap_par::shard_map_mut(&mut result.providers, |pi, prov| {
            let patterns = &providers[pi];
            let mut seeds: BTreeSet<DomainName> = prov.domains.clone();
            for owner in sources.passive_dns.owners_in(period) {
                if patterns.matches_owner(&owner) {
                    seeds.insert(owner);
                }
            }
            if seeds.is_empty() {
                return 0;
            }
            let domains: Vec<DomainName> = seeds.iter().cloned().collect();
            let campaign_result = self.campaign.run_with_faults(
                sources.zones,
                &domains,
                &period,
                self.fault_seed,
                &self.active_dns_faults,
            );
            let matched = Self::apply_campaign_observations(prov, patterns, &campaign_result);
            prov.domains = seeds;
            matched
        });
        flush_provider_matches(Source::ActiveDns, result, &matches);
    }
}

/// Report per-provider pattern-match counts for one discovery channel
/// (`discovery.<source>.matches.<provider>`), plus the channel total.
pub(crate) fn flush_provider_matches(source: Source, result: &DiscoveryResult, matches: &[u64]) {
    if !iotmap_obs::enabled() {
        return;
    }
    let key = source.metric_key();
    let mut total = 0u64;
    for (provider, &n) in result.providers.iter().zip(matches) {
        total += n;
        if n > 0 {
            iotmap_obs::count!(format!("discovery.{key}.matches.{}", provider.name), n);
        }
    }
    iotmap_obs::count!(format!("discovery.{key}.matches"), total);
}

/// Report the per-source and total distinct-IP tallies once a discovery
/// run has finished (`discovery.<source>.ips_discovered`).
pub(crate) fn flush_discovery_totals(result: &DiscoveryResult) {
    if !iotmap_obs::enabled() {
        return;
    }
    let mut per_source = [0u64; Source::ALL.len()];
    let mut total = 0u64;
    for provider in &result.providers {
        total += provider.ips.len() as u64;
        for ev in provider.ips.values() {
            for (i, s) in Source::ALL.iter().enumerate() {
                if ev.sources.contains(*s) {
                    per_source[i] += 1;
                }
            }
        }
    }
    for (i, s) in Source::ALL.iter().enumerate() {
        iotmap_obs::count!(
            format!("discovery.{}.ips_discovered", s.metric_key()),
            per_source[i]
        );
    }
    iotmap_obs::count!("discovery.ips_discovered", total);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_set_operations() {
        let mut s = SourceSet::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.sole_source(), None);
        s.insert(Source::PassiveDns);
        assert!(s.contains(Source::PassiveDns));
        assert!(!s.contains(Source::Certificate));
        assert_eq!(s.sole_source(), Some(Source::PassiveDns));
        s.insert(Source::ActiveDns);
        assert_eq!(s.count(), 2);
        assert_eq!(s.sole_source(), None);
        s.insert(Source::ActiveDns); // idempotent
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn evidence_name_cap() {
        let mut ev = IpEvidence::default();
        for i in 0..50 {
            ev.note_name(&format!("n{i}.example.com"));
        }
        assert_eq!(ev.matched_names.len(), MAX_MATCHED_NAMES);
    }

    #[test]
    fn provider_discovery_breakdowns() {
        let mut p = ProviderDiscovery {
            name: "x".to_string(),
            ..Default::default()
        };
        let mut cert_only = IpEvidence::default();
        cert_only.sources.insert(Source::Certificate);
        cert_only.days.insert(10);
        p.ips.insert("192.0.2.1".parse().unwrap(), cert_only);

        let mut both = IpEvidence::default();
        both.sources.insert(Source::Certificate);
        both.sources.insert(Source::PassiveDns);
        both.days.insert(11);
        p.ips.insert("192.0.2.2".parse().unwrap(), both);

        let mut v6 = IpEvidence::default();
        v6.sources.insert(Source::Ipv6Scan);
        v6.days.insert(10);
        p.ips.insert("2001:db8::1".parse().unwrap(), v6);

        let (excl, multi) = p.source_breakdown(false);
        assert_eq!(excl.get(&Source::Certificate), Some(&1));
        assert_eq!(multi, 1);
        let (excl6, multi6) = p.source_breakdown(true);
        assert_eq!(excl6.get(&Source::Ipv6Scan), Some(&1));
        assert_eq!(multi6, 0);

        assert_eq!(p.daily_set(10).len(), 2);
        assert_eq!(p.daily_set(11).len(), 1);
        assert_eq!(p.v4_ips().count(), 2);
        assert_eq!(p.v6_ips().count(), 1);

        let cert_view = p.ips_from_sources(&[Source::Certificate]);
        assert_eq!(cert_view.len(), 2);
        let pdns_view = p.ips_from_sources(&[Source::PassiveDns]);
        assert_eq!(pdns_view.len(), 1);
    }
}
