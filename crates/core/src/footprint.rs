//! Footprint inference (§4.2).
//!
//! Per discovered IP, up to four location sources are consulted:
//!
//! 1. the **domain hint** (region code in the matched name, mapped via
//!    provider documentation),
//! 2. the **announcement location** of the covering prefix
//!    (Hurricane-Electric-style),
//! 3. **scanner geolocation** metadata (Censys),
//! 4. **looking-glass pings** (RTT triangulation against the candidate
//!    cities), used when the other sources disagree.
//!
//! "Typically, all alternatives point to the same location. In less than
//! 7% of cases, these sources report different locations, in which case we
//! use the majority vote."

use crate::discovery::ProviderDiscovery;
use crate::sources::DataSources;
use iotmap_nettypes::{Continent, Location};
use iotmap_scan::{estimate_location, lookingglass::default_sites};
use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

/// The inferred location of one backend IP.
#[derive(Debug, Clone)]
pub struct IpLocation {
    /// Site label: the domain/announcement region code when available,
    /// else the voted city name.
    pub label: String,
    /// The voted geography.
    pub location: Location,
    /// Sources disagreed and majority vote / ping arbitration was needed.
    pub contested: bool,
}

/// A provider's inferred footprint.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Per-IP inferences.
    pub per_ip: BTreeMap<IpAddr, IpLocation>,
    /// IPs with no locatable evidence.
    pub unlocated: u64,
}

impl Footprint {
    /// Distinct location labels (the Table 1 "# Locations" column).
    pub fn location_count(&self) -> usize {
        self.per_ip
            .values()
            .map(|l| l.label.as_str())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Distinct countries.
    pub fn countries(&self) -> BTreeSet<String> {
        self.per_ip
            .values()
            .map(|l| l.location.country.as_str().to_string())
            .collect()
    }

    /// IP count per continent.
    pub fn per_continent(&self) -> BTreeMap<Continent, usize> {
        let mut out = BTreeMap::new();
        for l in self.per_ip.values() {
            *out.entry(l.location.continent).or_default() += 1;
        }
        out
    }

    /// Fraction of IPs whose sources disagreed.
    pub fn contested_fraction(&self) -> f64 {
        if self.per_ip.is_empty() {
            return 0.0;
        }
        self.per_ip.values().filter(|l| l.contested).count() as f64 / self.per_ip.len() as f64
    }
}

/// The inference engine.
pub struct FootprintInference;

impl FootprintInference {
    /// Infer the footprint of one provider's discovery.
    pub fn infer(discovery: &ProviderDiscovery, sources: &DataSources<'_>) -> Footprint {
        let _span = iotmap_obs::span!(format!("core.footprint.{}", discovery.name));
        let lg_sites = default_sites();
        let mut footprint = Footprint::default();

        for (&ip, evidence) in &discovery.ips {
            // Collect candidate locations.
            let announcement = sources.routeviews.origin(ip);
            let ann_loc = announcement.and_then(|o| o.location.clone());
            let ann_label = announcement
                .map(|o| o.location_label.clone())
                .filter(|l| !l.is_empty());
            let censys_loc = evidence.censys_location.clone();

            let mut candidates: Vec<Location> = Vec::new();
            if let Some(l) = &ann_loc {
                candidates.push(l.clone());
            }
            if let Some(l) = &censys_loc {
                candidates.push(l.clone());
            }

            let (voted, contested) = match (&ann_loc, &censys_loc) {
                (Some(a), Some(c)) if a.city == c.city => (Some(a.clone()), false),
                (Some(_), Some(_)) => {
                    // Disagreement: let the looking glasses arbitrate; fall
                    // back to the announcement (operator geofeeds beat
                    // commercial geo databases).
                    let pick = sources
                        .latency
                        .and_then(|prober| {
                            estimate_location(prober, &lg_sites, ip, &candidates).cloned()
                        })
                        .or_else(|| ann_loc.clone());
                    (pick, true)
                }
                (Some(a), None) => (Some(a.clone()), false),
                (None, Some(c)) => (Some(c.clone()), false),
                (None, None) => (None, false),
            };

            match voted {
                Some(location) => {
                    let label = evidence
                        .domain_hint
                        .clone()
                        .or(ann_label)
                        .unwrap_or_else(|| location.city.clone());
                    footprint.per_ip.insert(
                        ip,
                        IpLocation {
                            label,
                            location,
                            contested,
                        },
                    );
                }
                None => footprint.unlocated += 1,
            }
        }
        if iotmap_obs::enabled() {
            let contested = footprint.per_ip.values().filter(|l| l.contested).count();
            iotmap_obs::count!("footprint.ips_located", footprint.per_ip.len() as u64);
            iotmap_obs::count!("footprint.ips_contested", contested as u64);
            iotmap_obs::count!("footprint.ips_unlocated", footprint.unlocated);
        }
        footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::IpEvidence;
    use iotmap_dns::{PassiveDnsDb, ZoneDb};
    use iotmap_nettypes::{Asn, BgpOrigin, BgpTable};

    fn loc(city: &str, cc: &str, cont: Continent) -> Location {
        Location::new(city, cc, cont, 0.0, 0.0)
    }

    fn sources_with_bgp(bgp: &BgpTable) -> (PassiveDnsDb, ZoneDb) {
        let _ = bgp;
        (PassiveDnsDb::new(), ZoneDb::new())
    }

    fn make_sources<'a>(
        bgp: &'a BgpTable,
        pdns: &'a PassiveDnsDb,
        zones: &'a ZoneDb,
    ) -> DataSources<'a> {
        DataSources {
            censys: &[],
            zgrab_v6: &[],
            passive_dns: pdns,
            zones,
            routeviews: bgp,
            latency: None,
        }
    }

    #[test]
    fn agreement_is_uncontested() {
        let mut bgp = BgpTable::new();
        bgp.announce_v4(
            "10.0.0.0/16".parse().unwrap(),
            BgpOrigin {
                asn: Asn(1),
                org: "X".into(),
                location_label: "eu-west-1".into(),
                location: Some(loc("Dublin", "IE", Continent::Europe)),
            },
        );
        let (pdns, zones) = sources_with_bgp(&bgp);
        let sources = make_sources(&bgp, &pdns, &zones);

        let mut disc = ProviderDiscovery {
            name: "x".into(),
            ..Default::default()
        };
        let ev = IpEvidence {
            censys_location: Some(loc("Dublin", "IE", Continent::Europe)),
            ..Default::default()
        };
        disc.ips.insert("10.0.0.1".parse().unwrap(), ev);

        let fp = FootprintInference::infer(&disc, &sources);
        let l = &fp.per_ip[&"10.0.0.1".parse::<IpAddr>().unwrap()];
        assert!(!l.contested);
        assert_eq!(l.location.city, "Dublin");
        assert_eq!(l.label, "eu-west-1"); // announcement label preferred
        assert_eq!(fp.location_count(), 1);
        assert!(fp.countries().contains("IE"));
    }

    #[test]
    fn domain_hint_wins_label() {
        let mut bgp = BgpTable::new();
        bgp.announce_v4(
            "10.0.0.0/16".parse().unwrap(),
            BgpOrigin {
                asn: Asn(1),
                org: "X".into(),
                location_label: "pop-fra".into(),
                location: Some(loc("Frankfurt", "DE", Continent::Europe)),
            },
        );
        let (pdns, zones) = sources_with_bgp(&bgp);
        let sources = make_sources(&bgp, &pdns, &zones);

        let mut disc = ProviderDiscovery {
            name: "x".into(),
            ..Default::default()
        };
        let ev = IpEvidence {
            domain_hint: Some("eu-central-1".into()),
            ..Default::default()
        };
        disc.ips.insert("10.0.0.2".parse().unwrap(), ev);

        let fp = FootprintInference::infer(&disc, &sources);
        assert_eq!(
            fp.per_ip[&"10.0.0.2".parse::<IpAddr>().unwrap()].label,
            "eu-central-1"
        );
    }

    #[test]
    fn disagreement_marks_contested_and_falls_back_to_announcement() {
        let mut bgp = BgpTable::new();
        bgp.announce_v4(
            "10.0.0.0/16".parse().unwrap(),
            BgpOrigin {
                asn: Asn(1),
                org: "X".into(),
                location_label: "ams".into(),
                location: Some(loc("Amsterdam", "NL", Continent::Europe)),
            },
        );
        let (pdns, zones) = sources_with_bgp(&bgp);
        let sources = make_sources(&bgp, &pdns, &zones);

        let mut disc = ProviderDiscovery {
            name: "x".into(),
            ..Default::default()
        };
        let ev = IpEvidence {
            censys_location: Some(loc("Tokyo", "JP", Continent::Asia)),
            ..Default::default()
        };
        disc.ips.insert("10.0.0.3".parse().unwrap(), ev);

        let fp = FootprintInference::infer(&disc, &sources);
        let l = &fp.per_ip[&"10.0.0.3".parse::<IpAddr>().unwrap()];
        assert!(l.contested);
        assert_eq!(l.location.city, "Amsterdam");
        assert_eq!(fp.contested_fraction(), 1.0);
    }

    #[test]
    fn unlocatable_ips_counted() {
        let bgp = BgpTable::new();
        let (pdns, zones) = sources_with_bgp(&bgp);
        let sources = make_sources(&bgp, &pdns, &zones);
        let mut disc = ProviderDiscovery {
            name: "x".into(),
            ..Default::default()
        };
        disc.ips
            .insert("10.9.9.9".parse().unwrap(), IpEvidence::default());
        let fp = FootprintInference::infer(&disc, &sources);
        assert_eq!(fp.unlocated, 1);
        assert!(fp.per_ip.is_empty());
    }

    #[test]
    fn per_continent_counts() {
        let mut bgp = BgpTable::new();
        bgp.announce_v4(
            "10.0.0.0/16".parse().unwrap(),
            BgpOrigin {
                asn: Asn(1),
                org: "X".into(),
                location_label: "eu".into(),
                location: Some(loc("Paris", "FR", Continent::Europe)),
            },
        );
        bgp.announce_v4(
            "10.1.0.0/16".parse().unwrap(),
            BgpOrigin {
                asn: Asn(1),
                org: "X".into(),
                location_label: "us".into(),
                location: Some(loc("Dallas", "US", Continent::NorthAmerica)),
            },
        );
        let (pdns, zones) = sources_with_bgp(&bgp);
        let sources = make_sources(&bgp, &pdns, &zones);
        let mut disc = ProviderDiscovery {
            name: "x".into(),
            ..Default::default()
        };
        disc.ips
            .insert("10.0.0.1".parse().unwrap(), IpEvidence::default());
        disc.ips
            .insert("10.0.0.2".parse().unwrap(), IpEvidence::default());
        disc.ips
            .insert("10.1.0.1".parse().unwrap(), IpEvidence::default());
        let fp = FootprintInference::infer(&disc, &sources);
        let by_cont = fp.per_continent();
        assert_eq!(by_cont[&Continent::Europe], 2);
        assert_eq!(by_cont[&Continent::NorthAmerica], 1);
    }
}
