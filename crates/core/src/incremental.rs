//! Incremental (longitudinal) discovery: roll a [`DiscoveryResult`]
//! forward by one day instead of re-matching the full corpus.
//!
//! The paper's methodology is longitudinal — daily snapshots drive its
//! footprint-growth and outage findings — and every source decomposes
//! cleanly by day once evidence accumulation is a join (order-free,
//! idempotent; see the `IpEvidence` join helpers in [`crate::discovery`]):
//!
//! * **Certificates** — each snapshot's contribution is independent, so
//!   day N+1 only harvests the fresh snapshots.
//! * **IPv6 banner grabs** — the hitlist campaign runs once at period
//!   start; extending the end observes nothing new.
//! * **Passive DNS** — `observed_in` is monotone in the period end: the
//!   rows that become visible when the end moves from E to E' are exactly
//!   those with `E ≤ time_first < E'`. Day clamps widen with the end, so
//!   previously matched rows are *re-applied* under the new window —
//!   joins make re-application land exactly on the from-scratch state.
//! * **Active DNS** — fault rolls and resolutions key on the absolute
//!   `(day, vantage, domain, rrtype)`, so a campaign over the extended
//!   period is the disjoint union of the old seeds over the delta days
//!   and the freshly visible owners over the full period.
//!
//! The correctness oracle is byte-identity: `tests/incremental_equivalence.rs`
//! pins the rolled-forward artifacts' `canonical_dump()` against a
//! from-scratch run over the merged corpus at every day, thread count,
//! and fault plan.

use crate::discovery::{
    flush_discovery_totals, flush_provider_matches, DiscoveryPipeline, DiscoveryResult, Source,
};
use crate::matcher::MatchEngine;
use crate::patterns::ProviderPatterns;
use crate::sources::DataSources;
use iotmap_dns::{CampaignResult, PassiveDnsDb, RData};
use iotmap_nettypes::{DomainName, StudyPeriod};
use std::collections::BTreeSet;
use std::net::IpAddr;

/// The per-provider match state an incremental run carries between days:
/// which passive-DNS rows matched so far (they must be re-applied under
/// each widened window), plus the full entry table ordered by first-seen
/// time so one binary search finds the rows a day boundary reveals.
#[derive(Debug)]
pub struct IncrementalDiscovery {
    period: StudyPeriod,
    /// Per provider: matched rows (indices into `entries_slice`), ascending.
    pdns_matched: Vec<Vec<u32>>,
    /// Every entry keyed by `(time_first, row)`, ascending.
    by_time_first: Vec<(u64, u32)>,
}

impl IncrementalDiscovery {
    /// Capture the match state of a finished from-scratch run over
    /// `period`. `pdns` must be the database that run consumed (i.e. the
    /// degraded copy when a fault plan was active).
    pub fn bootstrap(
        pipeline: &DiscoveryPipeline,
        pdns: &PassiveDnsDb,
        period: StudyPeriod,
    ) -> Self {
        let _span = iotmap_obs::span!("core.incremental.bootstrap");
        let providers = pipeline.registry().providers();
        let entries = pdns.entries_slice();
        let engine = MatchEngine::owners(pipeline.registry());
        // The same classification the single-pass harvest ran, so the
        // captured rows are exactly the ones whose evidence is already in
        // the artifacts.
        let table = {
            let mut buf = String::new();
            engine.classify(
                pdns.owner_suffix_index(),
                entries.len(),
                |p, row| {
                    let entry = &entries[row as usize];
                    entry.observed_in(&period)
                        && providers[p]
                            .owner_regex
                            .is_match(entry.owner.fqdn_into(&mut buf))
                },
                |row, emit| {
                    let entry = &entries[row as usize];
                    if entry.observed_in(&period) {
                        let mut fqdn = String::new();
                        emit(entry.owner.fqdn_into(&mut fqdn));
                    }
                },
            )
        };
        let mut pdns_matched = vec![Vec::new(); providers.len()];
        for row in 0..entries.len() {
            if !table.any(row) {
                continue;
            }
            for p in table.providers(row) {
                pdns_matched[p].push(row as u32);
            }
        }
        let mut by_time_first: Vec<(u64, u32)> = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.time_first.unix(), i as u32))
            .collect();
        by_time_first.sort_unstable();
        IncrementalDiscovery {
            period,
            pdns_matched,
            by_time_first,
        }
    }

    /// The period the tracked result currently covers.
    pub fn period(&self) -> StudyPeriod {
        self.period
    }

    /// Roll `result` forward so it covers `new_period` (same start, later
    /// end). `sources` must already hold the merged corpus — in
    /// particular, the last `fresh_snapshots` entries of `sources.censys`
    /// are the snapshots the delta appended.
    ///
    /// Returns the distinct rdata IPs of the passive-DNS rows the widened
    /// window newly revealed — exactly the IPs whose inverse-lookup answer
    /// (`domains_for_ip`) changed, which downstream consumers (shared-IP
    /// classification) use to re-derive only what the day touched.
    pub fn advance(
        &mut self,
        pipeline: &DiscoveryPipeline,
        result: &mut DiscoveryResult,
        sources: &DataSources<'_>,
        new_period: StudyPeriod,
        fresh_snapshots: usize,
    ) -> Vec<IpAddr> {
        let _span = iotmap_obs::span!("core.incremental.advance");
        let old_period = self.period;
        debug_assert_eq!(old_period.start, new_period.start);
        debug_assert!(new_period.end > old_period.end);
        let providers = pipeline.registry().providers();
        let entries = sources.passive_dns.entries_slice();

        // Certificates: only the fresh snapshots contribute new evidence.
        let fresh = &sources.censys[sources.censys.len() - fresh_snapshots..];
        pipeline.harvest_certificate_snapshots(fresh, new_period, result);

        // IPv6 banner grabs run once at period start: nothing to do.

        // Rows the widened window reveals: E_old ≤ time_first < E_new
        // (time_last ≥ time_first ≥ E_old > start holds automatically).
        let lo = self
            .by_time_first
            .partition_point(|&(t, _)| t < old_period.end.unix());
        let hi = self
            .by_time_first
            .partition_point(|&(t, _)| t < new_period.end.unix());
        let mut fresh_rows: Vec<u32> = self.by_time_first[lo..hi].iter().map(|&(_, r)| r).collect();
        fresh_rows.sort_unstable();
        iotmap_obs::count!("incremental.pdns.rows_fresh", fresh_rows.len() as u64);
        let mut fresh_ips: Vec<IpAddr> = fresh_rows
            .iter()
            .filter_map(|&row| entries[row as usize].rdata.ip())
            .collect();
        fresh_ips.sort_unstable();
        fresh_ips.dedup();
        let mut fresh_matched: Vec<Vec<u32>> = vec![Vec::new(); providers.len()];
        for &row in &fresh_rows {
            let entry = &entries[row as usize];
            for (p, patterns) in providers.iter().enumerate() {
                if patterns.matches_owner(&entry.owner) {
                    fresh_matched[p].push(row);
                }
            }
        }

        // The active campaign's seed set at the old end, captured before
        // the re-application below inserts the fresh owners.
        let old_seeds: Vec<BTreeSet<DomainName>> =
            result.providers.iter().map(|p| p.domains.clone()).collect();

        let pdns_counts: Vec<u64> = fresh_matched.iter().map(|rows| rows.len() as u64).collect();
        for (p, fresh) in fresh_matched.iter().enumerate() {
            let merged = &mut self.pdns_matched[p];
            merged.extend_from_slice(fresh);
            merged.sort_unstable();
        }

        let pdns = sources.passive_dns;
        let zones = sources.zones;
        let matched_rows = &self.pdns_matched;
        // A matched row's passive-DNS contribution is fully determined by
        // its day clamp `[max(tf, start), min(tl, end-1)]`. The start never
        // moves, so re-application is a no-op join — skippable — unless the
        // row is newly visible or the end clamp actually widened its days.
        let old_end_day = old_period.end.epoch_days() - 1;
        let new_end_day = new_period.end.epoch_days() - 1;
        let unchanged = |time_first: iotmap_nettypes::SimTime, last_days: i64| {
            time_first < old_period.end && last_days.min(old_end_day) == last_days.min(new_end_day)
        };
        let adns_counts = iotmap_par::shard_map_mut(&mut result.providers, |pi, prov| {
            let patterns = &providers[pi];
            // Passive DNS: re-apply the matched rows whose contribution
            // changed under the widened window. Day clamps only grow, and
            // evidence writes are idempotent joins, so this lands exactly
            // on the from-scratch state while costing O(changed), not
            // O(corpus).
            for &row in &matched_rows[pi] {
                let entry = &entries[row as usize];
                match &entry.rdata {
                    RData::Cname(target) => {
                        prov.domains.insert(entry.owner.clone());
                        // A freshly matched alias has never been chased for
                        // this owner: apply every visible target entry, not
                        // just the changed ones.
                        let row_fresh = entry.time_first >= old_period.end;
                        for chased in pdns.entries_for_owner(target, new_period) {
                            if !row_fresh
                                && unchanged(chased.time_first, chased.time_last.epoch_days())
                            {
                                continue;
                            }
                            if let Some(ip) = chased.rdata.ip() {
                                DiscoveryPipeline::note_pdns_ip(
                                    prov,
                                    patterns,
                                    ip,
                                    &entry.owner,
                                    chased
                                        .time_first
                                        .epoch_days()
                                        .max(new_period.start.epoch_days()),
                                    chased.time_last.epoch_days().min(new_end_day),
                                );
                            }
                        }
                    }
                    rdata => {
                        if unchanged(entry.time_first, entry.time_last.epoch_days()) {
                            continue;
                        }
                        prov.domains.insert(entry.owner.clone());
                        if let Some(ip) = rdata.ip() {
                            DiscoveryPipeline::note_pdns_ip(
                                prov,
                                patterns,
                                ip,
                                &entry.owner,
                                entry
                                    .time_first
                                    .epoch_days()
                                    .max(new_period.start.epoch_days()),
                                entry.time_last.epoch_days().min(new_end_day),
                            );
                        }
                    }
                }
            }

            // Active DNS, decomposed: old seeds resolve over the delta
            // days only; freshly visible owners resolve over the full
            // extended period. Fault rolls key on the absolute
            // (day, vantage, domain, rrtype), so the union is exactly the
            // from-scratch campaign over the merged seed set.
            let mut matched = 0u64;
            if !old_seeds[pi].is_empty() {
                let domains: Vec<DomainName> = old_seeds[pi].iter().cloned().collect();
                let delta_period = StudyPeriod::new(old_period.end, new_period.end);
                let campaign = pipeline.run_campaign(zones, &domains, &delta_period);
                matched += apply_observations(prov, patterns, &campaign);
            }
            let fresh_owners: BTreeSet<DomainName> = fresh_matched[pi]
                .iter()
                .map(|&row| entries[row as usize].owner.clone())
                .filter(|o| !old_seeds[pi].contains(o))
                .collect();
            if !fresh_owners.is_empty() {
                let domains: Vec<DomainName> = fresh_owners.into_iter().collect();
                let campaign = pipeline.run_campaign(zones, &domains, &new_period);
                matched += apply_observations(prov, patterns, &campaign);
            }
            matched
        });
        flush_provider_matches(Source::PassiveDns, result, &pdns_counts);
        flush_provider_matches(Source::ActiveDns, result, &adns_counts);
        flush_discovery_totals(result);
        self.period = new_period;
        fresh_ips
    }
}

fn apply_observations(
    prov: &mut crate::discovery::ProviderDiscovery,
    patterns: &ProviderPatterns,
    campaign: &CampaignResult,
) -> u64 {
    let mut matched = 0u64;
    for obs in &campaign.observations {
        matched += 1;
        let entry = prov.ips.entry(obs.ip).or_default();
        entry.sources.insert(Source::ActiveDns);
        entry.days.insert(obs.day);
        entry.note_hint(patterns.region_hint.extract(obs.domain.as_str()));
        entry.note_name(obs.domain.as_str());
    }
    matched
}
