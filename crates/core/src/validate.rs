//! Validation of discovered IPs (§3.4).
//!
//! Two checks:
//!
//! 1. **Shared vs. dedicated** — an IP also carrying many domains that do
//!    *not* match any IoT pattern is not exclusively an IoT gateway
//!    (CDN-fronted or co-hosted infrastructure). The paper discovered
//!    Google's MQTT/HTTPS split this way and excludes shared IPs from the
//!    traffic analysis.
//! 2. **Ground truth** — compare against the IP lists / prefixes that
//!    Cisco, Siemens and Microsoft publish.

use crate::discovery::ProviderDiscovery;
use crate::patterns::PatternRegistry;
use iotmap_dns::PassiveDnsDb;
use iotmap_nettypes::{Ipv4Prefix, StudyPeriod};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// Verdict for one IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedVerdict {
    /// Exclusively IoT: few or no unrelated domains point here.
    Dedicated,
    /// Also serves non-IoT content (`count` unrelated domains observed).
    Shared { non_iot_domains: u32 },
}

impl SharedVerdict {
    /// Is the IP shared?
    pub fn is_shared(&self) -> bool {
        matches!(self, SharedVerdict::Shared { .. })
    }
}

/// The shared-vs-dedicated classifier.
pub struct SharedIpClassifier<'a> {
    registry: &'a PatternRegistry,
    /// Maximum number of unrelated domains an exclusive IoT gateway may
    /// carry (stray vanity records exist; the paper chose the threshold by
    /// inspection).
    pub threshold: u32,
}

impl<'a> SharedIpClassifier<'a> {
    /// Classifier with the default threshold of 3 unrelated domains.
    pub fn new(registry: &'a PatternRegistry) -> Self {
        SharedIpClassifier {
            registry,
            threshold: 3,
        }
    }

    /// Classify one IP by inverse passive-DNS lookup.
    pub fn classify(&self, ip: IpAddr, pdns: &PassiveDnsDb, period: StudyPeriod) -> SharedVerdict {
        let mut non_iot = 0u32;
        let mut seen: HashSet<&str> = HashSet::new();
        for entry in pdns.domains_for_ip(ip, period) {
            if !seen.insert(entry.owner.as_str()) {
                continue;
            }
            if self.registry.classify_owner(&entry.owner).is_none() {
                non_iot += 1;
            }
        }
        if non_iot > self.threshold {
            SharedVerdict::Shared {
                non_iot_domains: non_iot,
            }
        } else {
            SharedVerdict::Dedicated
        }
    }

    /// Classify a whole provider: returns `(dedicated, shared)` IP sets.
    pub fn split_provider(
        &self,
        discovery: &ProviderDiscovery,
        pdns: &PassiveDnsDb,
        period: StudyPeriod,
    ) -> (HashSet<IpAddr>, HashMap<IpAddr, u32>) {
        let mut dedicated = HashSet::new();
        let mut shared = HashMap::new();
        for &ip in discovery.ips.keys() {
            match self.classify(ip, pdns, period) {
                SharedVerdict::Dedicated => {
                    dedicated.insert(ip);
                }
                SharedVerdict::Shared { non_iot_domains } => {
                    shared.insert(ip, non_iot_domains);
                }
            }
        }
        (dedicated, shared)
    }
}

/// §3.4's comparison against published ground truth.
#[derive(Debug, Clone)]
pub struct GroundTruthReport {
    pub provider: String,
    /// IPs the provider publishes (expanded from prefixes when needed).
    pub published_total: u64,
    /// Discovered IPs that fall inside the published space.
    pub discovered_inside: u64,
    /// Discovered IPs outside the published space (not an error —
    /// publication can be partial).
    pub discovered_outside: u64,
}

impl GroundTruthReport {
    /// Compare a discovery against a published full IP list (Cisco,
    /// Siemens).
    pub fn against_ip_list(
        provider: &str,
        discovery: &ProviderDiscovery,
        published: &[IpAddr],
    ) -> Self {
        let published_set: HashSet<&IpAddr> = published.iter().collect();
        let discovered: HashSet<IpAddr> = discovery.ips.keys().copied().collect();
        let inside = discovered
            .iter()
            .filter(|ip| published_set.contains(ip))
            .count() as u64;
        GroundTruthReport {
            provider: provider.to_string(),
            published_total: published.len() as u64,
            discovered_inside: inside,
            discovered_outside: discovered.len() as u64 - inside,
        }
    }

    /// Compare against published prefixes (Microsoft).
    pub fn against_prefixes(
        provider: &str,
        discovery: &ProviderDiscovery,
        published: &[Ipv4Prefix],
    ) -> Self {
        let published_total: u64 = published.iter().map(|p| p.size()).sum();
        let mut inside = 0u64;
        let mut outside = 0u64;
        for ip in discovery.ips.keys() {
            match ip {
                IpAddr::V4(a) if published.iter().any(|p| p.contains(*a)) => inside += 1,
                _ => outside += 1,
            }
        }
        GroundTruthReport {
            provider: provider.to_string(),
            published_total,
            discovered_inside: inside,
            discovered_outside: outside,
        }
    }

    /// Of the published IPs, how many did we find? (Only meaningful for
    /// full-list publication.)
    pub fn recall_of_published(&self, discovery: &ProviderDiscovery, published: &[IpAddr]) -> f64 {
        if published.is_empty() {
            return 1.0;
        }
        let found = published
            .iter()
            .filter(|ip| discovery.ips.contains_key(ip))
            .count();
        found as f64 / published.len() as f64
    }
}

/// The §3.4 traffic cross-check: of the published addresses that are
/// *actually active* (appear as flow remotes), how many did discovery
/// miss, and what traffic share do the misses carry?
#[derive(Debug, Clone, Default)]
pub struct ActiveCoverage {
    pub active_published: u64,
    pub missed: u64,
    pub missed_traffic_fraction: f64,
}

impl ActiveCoverage {
    /// `active` maps published-space IPs seen in traffic to their byte
    /// volume.
    pub fn compute(discovery: &ProviderDiscovery, active: &HashMap<IpAddr, u64>) -> Self {
        let mut missed = 0u64;
        let mut missed_bytes = 0u64;
        let mut total_bytes = 0u64;
        for (ip, bytes) in active {
            total_bytes += bytes;
            if !discovery.ips.contains_key(ip) {
                missed += 1;
                missed_bytes += bytes;
            }
        }
        ActiveCoverage {
            active_published: active.len() as u64,
            missed,
            missed_traffic_fraction: if total_bytes == 0 {
                0.0
            } else {
                missed_bytes as f64 / total_bytes as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::IpEvidence;
    use iotmap_dns::RData;
    use iotmap_nettypes::{Date, DomainName};

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn week() -> StudyPeriod {
        StudyPeriod::main_week()
    }

    fn t() -> iotmap_nettypes::SimTime {
        Date::new(2022, 3, 1).midnight()
    }

    #[test]
    fn dedicated_ip_with_only_iot_domains() {
        let registry = PatternRegistry::paper_defaults();
        let mut pdns = PassiveDnsDb::new();
        let ip: IpAddr = "192.0.2.1".parse().unwrap();
        pdns.observe(
            d("hub-1.azure-devices.net"),
            RData::A("192.0.2.1".parse().unwrap()),
            t(),
        );
        pdns.observe(
            d("hub-2.azure-devices.net"),
            RData::A("192.0.2.1".parse().unwrap()),
            t(),
        );
        let c = SharedIpClassifier::new(&registry);
        assert_eq!(c.classify(ip, &pdns, week()), SharedVerdict::Dedicated);
    }

    #[test]
    fn shared_ip_with_many_web_domains() {
        let registry = PatternRegistry::paper_defaults();
        let mut pdns = PassiveDnsDb::new();
        let ip: IpAddr = "192.0.2.2".parse().unwrap();
        pdns.observe(
            d("mqtt.googleapis.com"),
            RData::A("192.0.2.2".parse().unwrap()),
            t(),
        );
        for i in 0..6 {
            pdns.observe(
                d(&format!("svc{i}.google-web.example")),
                RData::A("192.0.2.2".parse().unwrap()),
                t(),
            );
        }
        let c = SharedIpClassifier::new(&registry);
        assert!(c.classify(ip, &pdns, week()).is_shared());
    }

    #[test]
    fn threshold_tolerates_stray_records() {
        let registry = PatternRegistry::paper_defaults();
        let mut pdns = PassiveDnsDb::new();
        let ip: IpAddr = "192.0.2.3".parse().unwrap();
        pdns.observe(
            d("hub-9.iot.sap"),
            RData::A("192.0.2.3".parse().unwrap()),
            t(),
        );
        for i in 0..3 {
            pdns.observe(
                d(&format!("stray{i}.example.org")),
                RData::A("192.0.2.3".parse().unwrap()),
                t(),
            );
        }
        let c = SharedIpClassifier::new(&registry);
        assert_eq!(c.classify(ip, &pdns, week()), SharedVerdict::Dedicated);
    }

    fn discovery_with(ips: &[&str]) -> ProviderDiscovery {
        let mut p = ProviderDiscovery {
            name: "x".to_string(),
            ..Default::default()
        };
        for ip in ips {
            p.ips.insert(ip.parse().unwrap(), IpEvidence::default());
        }
        p
    }

    #[test]
    fn ground_truth_ip_list_comparison() {
        let disc = discovery_with(&["10.0.0.1", "10.0.0.2", "10.0.0.9"]);
        let published: Vec<IpAddr> = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let r = GroundTruthReport::against_ip_list("cisco", &disc, &published);
        assert_eq!(r.published_total, 3);
        assert_eq!(r.discovered_inside, 2);
        assert_eq!(r.discovered_outside, 1);
        let recall = r.recall_of_published(&disc, &published);
        assert!((recall - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ground_truth_prefix_comparison() {
        let disc = discovery_with(&["10.1.0.5", "10.2.0.5"]);
        let published = vec!["10.1.0.0/24".parse().unwrap()];
        let r = GroundTruthReport::against_prefixes("microsoft", &disc, &published);
        assert_eq!(r.published_total, 256);
        assert_eq!(r.discovered_inside, 1);
        assert_eq!(r.discovered_outside, 1);
    }

    #[test]
    fn active_coverage_misses() {
        let disc = discovery_with(&["10.1.0.5"]);
        let mut active = HashMap::new();
        active.insert("10.1.0.5".parse().unwrap(), 900u64);
        active.insert("10.1.0.6".parse().unwrap(), 100u64);
        let c = ActiveCoverage::compute(&disc, &active);
        assert_eq!(c.active_published, 2);
        assert_eq!(c.missed, 1);
        assert!((c.missed_traffic_fraction - 0.1).abs() < 1e-9);
    }
}
