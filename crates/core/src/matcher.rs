//! The single-pass multi-provider matching engine (§3.2/§3.3 hot path).
//!
//! The naive discovery loop asks, for each of the sixteen providers in
//! turn, "which records match this provider's pattern?" — sixteen full
//! scans over every certificate SAN and DNSDB owner name. This module
//! inverts the loop: one pass over the records answers all providers at
//! once.
//!
//! Two mechanisms cooperate, chosen per pattern at build time:
//!
//! * **Literal-suffix index lookups.** Every paper pattern is
//!   end-anchored with a mandatory literal tail (`\.amazonaws\.com$`,
//!   `azure-devices\.net\.$`, …) which
//!   [`iotmap_dregex::Regex::literal_suffix`] extracts. The tail becomes a
//!   [`SuffixQuery`] against a reversed-label [`SuffixIndex`] built over
//!   the corpus, returning a small candidate superset that is then
//!   *verified* with the provider's real regex — the index is a sound
//!   prefilter, never the final word.
//! * **A combined [`PatternSet`] fallback.** Patterns without a usable
//!   literal tail (none of the paper's sixteen, but user-supplied
//!   registries may have them) are compiled into one multi-pattern Pike
//!   VM that reports every matching pattern in a single scan per name.
//!
//! The output is a [`MatchTable`]: one provider-bitmask per record, from
//! which the discovery stage fans evidence back in per provider.

use crate::patterns::{PatternRegistry, ProviderPatterns};
use iotmap_dregex::{PatternSet, Regex};
use iotmap_nettypes::{SuffixIndex, SuffixQuery};

/// How one provider's pattern is evaluated by the engine.
#[derive(Debug)]
enum Plan {
    /// Literal tail extracted: candidates come from the suffix index and
    /// are verified individually.
    Indexed(SuffixQuery),
    /// No usable literal: the pattern rides in the combined fallback set,
    /// scanned once per name.
    Scan,
}

/// A compiled matching plan over one registry, for one name corpus shape
/// (DNSDB owner names or certificate SANs).
#[derive(Debug)]
pub struct MatchEngine {
    plans: Vec<Plan>,
    /// Provider indices riding in `fallback_set`, in registry order.
    fallback: Vec<usize>,
    fallback_set: Option<PatternSet>,
}

impl MatchEngine {
    /// Engine over the providers' DNSDB owner patterns (FQDN presentation,
    /// trailing dot).
    pub fn owners(registry: &PatternRegistry) -> Self {
        Self::build(registry, |p| &p.owner_regex)
    }

    /// Engine over the providers' certificate-name patterns (no trailing
    /// dot, `*.` wildcards allowed).
    pub fn sans(registry: &PatternRegistry) -> Self {
        Self::build(registry, |p| &p.san_regex)
    }

    fn build(registry: &PatternRegistry, select: impl Fn(&ProviderPatterns) -> &Regex) -> Self {
        let mut plans = Vec::with_capacity(registry.len());
        let mut fallback = Vec::new();
        let mut fallback_patterns: Vec<&str> = Vec::new();
        for (i, provider) in registry.providers().iter().enumerate() {
            let regex = select(provider);
            match regex.literal_suffix().and_then(SuffixQuery::parse) {
                Some(query) => plans.push(Plan::Indexed(query)),
                None => {
                    plans.push(Plan::Scan);
                    fallback.push(i);
                    fallback_patterns.push(regex.pattern());
                }
            }
        }
        // The providers' patterns are compiled case-insensitively
        // (`ProviderPatterns::try_new`); the combined set must agree.
        let fallback_set = if fallback_patterns.is_empty() {
            None
        } else {
            Some(
                PatternSet::with_options(&fallback_patterns, true)
                    .expect("patterns already compiled individually"),
            )
        };
        MatchEngine {
            plans,
            fallback,
            fallback_set,
        }
    }

    /// Number of providers.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when the registry was empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// How many providers resolved to index lookups (the rest scan).
    pub fn indexed_count(&self) -> usize {
        self.plans
            .iter()
            .filter(|p| matches!(p, Plan::Indexed(_)))
            .count()
    }

    /// True when every provider's pattern became an index lookup — the
    /// case for the paper registry, where the fallback VM never runs.
    pub fn is_fully_indexed(&self) -> bool {
        self.fallback.is_empty()
    }

    /// Classify `rows` records against every provider in one pass.
    ///
    /// * `index` — suffix index over the corpus names, postings = row ids.
    /// * `verify(provider, row)` — does the row *really* match the
    ///   provider's regex? Called only for index candidates; the closure
    ///   owns any row-validity rules (certificate validity windows,
    ///   passive-DNS observation windows) since the index may be built
    ///   over a superset of the eligible rows.
    /// * `for_each_name(row, f)` — yield each searchable name of a row to
    ///   `f`, for the fallback set. Only called when fallback patterns
    ///   exist; yield nothing for ineligible rows.
    ///
    /// Classification is deliberately serial: the work is proportional to
    /// candidates (near-matches), not the corpus, and a serial pass keeps
    /// every counter and table bit independent of the thread budget.
    pub fn classify(
        &self,
        index: &SuffixIndex,
        rows: usize,
        mut verify: impl FnMut(usize, u32) -> bool,
        mut for_each_name: impl FnMut(u32, &mut dyn FnMut(&str)),
    ) -> MatchTable {
        let mut table = MatchTable::new(rows, self.plans.len());
        let mut candidates = 0u64;
        let mut verified = 0u64;
        for (provider, plan) in self.plans.iter().enumerate() {
            if let Plan::Indexed(query) = plan {
                for row in index.lookup(query) {
                    candidates += 1;
                    if verify(provider, row) {
                        verified += 1;
                        table.set(row as usize, provider);
                    }
                }
            }
        }
        if let Some(set) = &self.fallback_set {
            let mut hits = vec![false; set.len()];
            for row in 0..rows as u32 {
                hits.iter_mut().for_each(|h| *h = false);
                for_each_name(row, &mut |name| set.matches_into(name, &mut hits));
                for (slot, hit) in hits.iter().enumerate() {
                    if *hit {
                        table.set(row as usize, self.fallback[slot]);
                    }
                }
            }
        }
        iotmap_obs::count!("discovery.engine.candidates", candidates);
        iotmap_obs::count!("discovery.engine.verified", verified);
        table
    }
}

/// Which providers matched which rows: a dense `rows × providers` bitmask
/// (one `u64` word per 64 providers — a single word for the paper's 16).
#[derive(Debug, Clone)]
pub struct MatchTable {
    words_per_row: usize,
    providers: usize,
    bits: Vec<u64>,
}

impl MatchTable {
    fn new(rows: usize, providers: usize) -> Self {
        let words_per_row = providers.div_ceil(64).max(1);
        MatchTable {
            words_per_row,
            providers,
            bits: vec![0; rows * words_per_row],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        // `words_per_row` is at least 1 by construction.
        self.bits.len() / self.words_per_row
    }

    fn set(&mut self, row: usize, provider: usize) {
        self.bits[row * self.words_per_row + provider / 64] |= 1 << (provider % 64);
    }

    /// Did `provider` match `row`?
    pub fn contains(&self, row: usize, provider: usize) -> bool {
        self.bits[row * self.words_per_row + provider / 64] & (1 << (provider % 64)) != 0
    }

    /// Did any provider match `row`?
    pub fn any(&self, row: usize) -> bool {
        let base = row * self.words_per_row;
        self.bits[base..base + self.words_per_row]
            .iter()
            .any(|w| *w != 0)
    }

    /// Providers matching `row`, ascending.
    pub fn providers(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let base = row * self.words_per_row;
        let words = &self.bits[base..base + self.words_per_row];
        words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Per-provider matched-row counts, registry order — feeds the
    /// `discovery.<source>.matches.<provider>` counters.
    pub fn matched_per_provider(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.providers];
        for row in 0..self.rows() {
            for provider in self.providers(row) {
                counts[provider] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::RegionHint;

    fn owner_index(names: &[&str]) -> SuffixIndex {
        let mut index = SuffixIndex::new();
        for (i, n) in names.iter().enumerate() {
            index.insert(n, i as u32);
        }
        index
    }

    #[test]
    fn paper_registry_is_fully_indexed() {
        let registry = PatternRegistry::paper_defaults();
        for engine in [MatchEngine::owners(&registry), MatchEngine::sans(&registry)] {
            assert_eq!(engine.len(), 16);
            assert_eq!(
                engine.indexed_count(),
                16,
                "all paper patterns have literal tails"
            );
            assert!(engine.is_fully_indexed());
        }
    }

    #[test]
    fn classify_agrees_with_per_provider_loop() {
        let registry = PatternRegistry::paper_defaults();
        let engine = MatchEngine::owners(&registry);
        let names = [
            "t0a1b2c3d.iot.us-east-1.amazonaws.com",
            "hub-112233.azure-devices.net",
            "www.example.com",
            "mqtt.googleapis.com",
            "azure-devices.net.evil.com", // lookalike: index may offer it, verify must reject
            "eu.airvantage.net",
            "hub-778899.iot.sap",
        ];
        let index = owner_index(&names);
        let mut fqdn = String::new();
        let table = engine.classify(
            &index,
            names.len(),
            |p, row| {
                fqdn.clear();
                fqdn.push_str(names[row as usize]);
                fqdn.push('.');
                registry.providers()[p].owner_regex.is_match(&fqdn)
            },
            |_row, _f| unreachable!("fully indexed: fallback never consulted"),
        );
        for (row, name) in names.iter().enumerate() {
            let domain: iotmap_nettypes::DomainName = name.parse().unwrap();
            for (p, provider) in registry.providers().iter().enumerate() {
                assert_eq!(
                    table.contains(row, p),
                    provider.matches_owner(&domain),
                    "{name} vs {}",
                    provider.name
                );
            }
        }
        assert!(!table.any(2), "www.example.com matches nobody");
        assert!(!table.any(4), "lookalike rejected by verification");
        let counts = table.matched_per_provider();
        assert_eq!(counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn fallback_set_handles_patterns_without_literal_tails() {
        // A pattern whose mandatory tail is a character class has no
        // literal suffix — the engine must route it through the combined
        // set and still agree with the individual regex.
        let custom = PatternRegistry::new(vec![
            ProviderPatterns::try_new(
                "numeric",
                "Numeric Tail",
                r"device-[0-9]+\.$",
                r"device-[0-9]+$",
                RegionHint::None,
                vec![],
                false,
            )
            .unwrap(),
            ProviderPatterns::try_new(
                "classic",
                "Classic",
                r"(.+\.|^)iotbackend\.example\.$",
                r"(.+\.|^)iotbackend\.example$",
                RegionHint::None,
                vec![],
                false,
            )
            .unwrap(),
        ]);
        let engine = MatchEngine::owners(&custom);
        assert_eq!(engine.indexed_count(), 1);
        assert!(!engine.is_fully_indexed());

        let names = ["device-42", "a.iotbackend.example", "device-x"];
        let index = owner_index(&names);
        let table = engine.classify(
            &index,
            names.len(),
            |p, row| {
                custom.providers()[p]
                    .owner_regex
                    .is_match(&format!("{}.", names[row as usize]))
            },
            |row, f| f(&format!("{}.", names[row as usize])),
        );
        assert!(table.contains(0, 0));
        assert!(table.contains(1, 1));
        assert!(!table.any(2));
    }

    #[test]
    fn match_table_bit_operations() {
        let mut table = MatchTable::new(3, 70); // forces two words per row
        table.set(0, 0);
        table.set(0, 69);
        table.set(2, 64);
        assert!(table.contains(0, 0) && table.contains(0, 69) && table.contains(2, 64));
        assert!(!table.contains(1, 0));
        assert_eq!(table.providers(0).collect::<Vec<_>>(), vec![0, 69]);
        assert_eq!(table.providers(2).collect::<Vec<_>>(), vec![64]);
        assert!(table.any(0) && !table.any(1));
        assert_eq!(table.rows(), 3);
        let counts = table.matched_per_provider();
        assert_eq!((counts[0], counts[64], counts[69]), (1, 1, 1));
    }
}
