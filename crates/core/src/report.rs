//! Plain-text / markdown / CSV rendering of analysis outputs.
//!
//! The experiment harness prints the same rows and series the paper's
//! tables and figures report; these helpers keep the formatting in one
//! place (and dependency-free).

use crate::characterize::CharacterizationRow;

/// A simple aligned text table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Render the full Table 1 from characterization rows.
pub fn table1(rows: &[CharacterizationRow]) -> TextTable {
    let mut t = TextTable::new(&[
        "Provider",
        "#AS",
        "#IPv4 /24",
        "(IPv6 /56)",
        "#Loc",
        "#Ctry",
        "Strategy",
        "Protocols (Ports)",
    ]);
    for r in rows {
        t.row(vec![
            r.display.clone(),
            r.asns.len().to_string(),
            r.v4_slash24.to_string(),
            r.v6_slash56.to_string(),
            r.locations.to_string(),
            format!(
                "{}{}",
                r.countries,
                if r.anycast { " +Anycast" } else { "" }
            ),
            r.strategy.label().to_string(),
            r.ports.clone(),
        ]);
    }
    t
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a byte count in human units.
pub fn bytes_h(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1000.0 && u < UNITS.len() - 1 {
        v /= 1000.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_counts() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(vec!["x".into(), "y".into()]);
        t.row(vec!["longer".into(), "z".into()]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("x"));
        // Columns aligned: 'y' and 'z' start at the same offset.
        let off_y = lines[2].find('y').unwrap();
        let off_z = lines[3].find('z').unwrap();
        assert_eq!(off_y, off_z);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.3456), "34.6%");
        assert_eq!(bytes_h(1234.0), "1.2 KB");
        assert_eq!(bytes_h(5.0e9), "5.0 GB");
        assert_eq!(bytes_h(12.0), "12.0 B");
    }
}
